#!/usr/bin/env python3
"""Mixed CV methods: classification and object detection at one edge.

Recreates the Fig. 4 walkthrough's task mix: an object-detection task
("Method: obj. detection, Rate: 4 Hz, Object class: cars, Min accuracy:
0.5 mAP, Max latency: 0.3 s") admitted alongside classification tasks.
Detection paths carry the detection head's extra compute/memory and
their accuracy lives on the mAP scale; the backbone trunk remains
shareable across methods (low-level features transfer).

Also demonstrates the detection substrate itself: decoding head outputs
into boxes and scoring them with real mean average precision.

Run:  python examples/mixed_methods.py
"""

import numpy as np

from repro.core import OffloaDNNSolver, check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.dnn.detection import (
    Detection,
    decode_predictions,
    make_detection_dataset,
    mean_average_precision,
)
from repro.workloads.generator import METHOD_PROFILES, ScenarioCatalogBuilder


def build_problem() -> DOTProblem:
    quality = QualityLevel("full", 350_000.0)
    tasks = (
        Task(task_id=1, name="cars-detection", method="detection", priority=0.9,
             request_rate=4.0, min_accuracy=0.5, max_latency_s=0.3,
             qualities=(quality,)),
        Task(task_id=2, name="animals-classification", method="classification",
             priority=0.8, request_rate=5.0, min_accuracy=0.8, max_latency_s=0.3,
             qualities=(quality,)),
        Task(task_id=3, name="household-classification", method="classification",
             priority=0.7, request_rate=5.0, min_accuracy=0.6, max_latency_s=0.5,
             qualities=(quality,)),
    )
    catalog = ScenarioCatalogBuilder(seed=0).build(tasks, quality)
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                        memory_gb=8.0, radio_blocks=50),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


def main() -> None:
    problem = build_problem()
    solution = OffloaDNNSolver().solve(problem)
    print("Admission decisions (mixed classification + detection):")
    for task in problem.tasks:
        a = solution.assignment(task)
        metric = METHOD_PROFILES[task.method].metric
        print(
            f"  {task.name:26s} [{task.method}] z={a.admission_ratio:.2f} "
            f"r={a.radio_blocks} RBs path={a.path.path_id.split(':', 1)[1]} "
            f"acc={a.path.effective_accuracy:.2f} {metric} "
            f"(needs {task.min_accuracy:.2f})"
        )
    print(f"  feasible: {check_constraints(problem, solution).feasible}, "
          f"memory {solution.total_memory_gb:.2f} GB (trunk shared across methods)")

    print("\nDetection substrate demo (synthetic rectangles):")
    dataset = make_detection_dataset(num_images=4, image_size=32, num_classes=3,
                                     seed=1)
    # oracle predictions with mild box noise, to exercise the mAP chain
    rng = np.random.default_rng(0)
    predictions = []
    for annotations in dataset.annotations:
        preds = []
        for obj in annotations:
            from dataclasses import replace

            jitter = rng.uniform(-1.5, 1.5, size=4)
            box = replace(
                obj.box,
                x_min=max(0.0, obj.box.x_min + jitter[0]),
                y_min=max(0.0, obj.box.y_min + jitter[1]),
                x_max=min(32.0, obj.box.x_max + jitter[2]),
                y_max=min(32.0, obj.box.y_max + jitter[3]),
            )
            preds.append(Detection(box=box, label=obj.label,
                                   score=float(rng.uniform(0.6, 0.99))))
        predictions.append(preds)
    map_score = mean_average_precision(predictions, dataset.annotations,
                                       num_classes=3)
    print(f"  noisy oracle detector: mAP@0.5 = {map_score:.3f} "
          f"over {sum(len(a) for a in dataset.annotations)} objects")

    raw = np.zeros((1, 5 + 3, 4, 4), dtype=np.float32)
    raw[0, 0, 1, 2] = 8.0  # one confident cell
    raw[0, 5 + 1, 1, 2] = 4.0  # class 1
    decoded = decode_predictions(raw, image_size=32)
    det = decoded[0][0]
    print(f"  decoded head output: class {det.label}, score {det.score:.2f}, "
          f"box ({det.box.x_min:.0f},{det.box.y_min:.0f})-"
          f"({det.box.x_max:.0f},{det.box.y_max:.0f})")


if __name__ == "__main__":
    main()
