#!/usr/bin/env python3
"""Quickstart: solve a DOT instance with OffloaDNN.

Builds the paper's small-scale scenario (Table IV), runs the OffloaDNN
heuristic, and prints the decisions: which DNN path serves each task,
the admission ratio, the radio slice size, and the resource totals.

Run:  python examples/quickstart.py
"""

from repro.core import OffloaDNNSolver, check_constraints, objective_value
from repro.core.objective import end_to_end_latency
from repro.workloads import small_scale_problem


def main() -> None:
    problem = small_scale_problem(num_tasks=5)
    solution = OffloaDNNSolver().solve(problem)

    print("OffloaDNN decisions (small-scale scenario, 5 tasks)")
    print("-" * 74)
    for task in problem.tasks:
        assignment = solution.assignment(task)
        if not assignment.admitted:
            print(f"task {task.task_id}: REJECTED")
            continue
        path = assignment.path
        latency = end_to_end_latency(
            path, assignment.radio_blocks, problem.radio.bits_per_rb(task)
        )
        print(
            f"task {task.task_id}: path={path.path_id:28s} "
            f"z={assignment.admission_ratio:4.2f} r={assignment.radio_blocks:2d} RBs "
            f"acc={path.effective_accuracy:.2f}/{task.min_accuracy:.2f} "
            f"lat={latency * 1e3:5.1f}/{task.max_latency_s * 1e3:.0f} ms"
        )
    print("-" * 74)
    print(f"objective (Eq. 1a):      {objective_value(problem, solution):.4f}")
    print(f"memory used:             {solution.total_memory_gb:.2f} / "
          f"{problem.budgets.memory_gb} GB")
    print(f"inference compute used:  {solution.total_inference_compute_s:.3f} / "
          f"{problem.budgets.compute_time_s} s")
    print(f"radio blocks used:       {solution.total_radio_blocks:.1f} / "
          f"{problem.budgets.radio_blocks}")
    print(f"solver runtime:          {solution.solve_time_s * 1e3:.2f} ms")
    report = check_constraints(problem, solution)
    print(f"all DOT constraints ok:  {report.feasible}")


if __name__ == "__main__":
    main()
