#!/usr/bin/env python3
"""Heterogeneous channels: per-task B(σ) from the radio substrate.

Table IV fixes every RB at 0.35 Mbps; here each task's per-RB capacity
comes from the full PHY chain — link budget at the device's distance →
SINR → CQI/MCS → bits per RB.  Far devices burn more RBs per admitted
task, so the radio pool binds earlier and low-priority distant tasks
are the first to be squeezed.

Run:  python examples/heterogeneous_channel.py
"""

from repro.core import OffloaDNNSolver, check_constraints
from repro.radio.phy import cqi_from_sinr
from repro.workloads import HeterogeneousParams, heterogeneous_problem


def main() -> None:
    for label, max_distance in (("compact cell", 100.0), ("stretched cell", 700.0)):
        params = HeterogeneousParams(num_tasks=12, max_distance_m=max_distance)
        problem = heterogeneous_problem(params, seed=1)
        solution = OffloaDNNSolver().solve(problem)
        print(f"\n=== {label} (devices up to {max_distance:.0f} m) ===")
        print(f"{'task':>4} {'dist SINR':>10} {'CQI':>4} {'B(σ) kbps':>10} "
              f"{'z':>5} {'RBs':>4}")
        for task in problem.tasks:
            assignment = solution.assignment(task)
            bits = problem.radio.bits_per_rb(task)
            cqi = cqi_from_sinr(task.sinr_db)
            print(
                f"{task.task_id:>4} {task.sinr_db:>7.1f} dB "
                f"{cqi.cqi if cqi else '-':>4} {bits / 1e3:>10.0f} "
                f"{assignment.admission_ratio:>5.2f} {assignment.radio_blocks:>4}"
            )
        print(
            f"admitted {solution.admitted_task_count}/{len(problem.tasks)}, "
            f"RBs used {solution.total_radio_blocks:.1f}/"
            f"{problem.budgets.radio_blocks}, "
            f"feasible: {check_constraints(problem, solution).feasible}"
        )


if __name__ == "__main__":
    main()
