"""Serving runtime demo: from DOT solution to served request streams.

Runs the serving scenario (shared-trunk catalog on a 100-RB cell) at
nominal and doubled offered load, prints per-task latency percentiles,
deadline misses and drop reasons, and shows the shared-block prefix
cache cutting simulated GPU time.  Ends with the tensor-level
counterpart: a :class:`~repro.serving.executor.BlockwiseRunner`
executing two real numpy paths that share a frozen trunk, computing
the trunk activations once.

Run with:  PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.catalog import Block, Path
from repro.core.heuristic import OffloaDNNSolver
from repro.core.task import QualityLevel
from repro.dnn.graph import NamedModule
from repro.dnn.layers import Linear, ReLU
from repro.serving import BlockwiseRunner, ServingRuntime
from repro.workloads.smallscale import serving_small_scale_problem


def main() -> None:
    problem = serving_small_scale_problem(5)
    runtime = ServingRuntime.from_problem(
        problem, solver=OffloaDNNSolver(slice_margin_rbs=2)
    )

    for load in (1.0, 2.0):
        metrics = runtime.with_config(
            duration_s=10.0, load_factor=load, seed=0
        ).run()
        print(f"\n=== offered load {load:g}x ===")
        print(format_table(list(metrics.SUMMARY_HEADER), metrics.summary_rows(), precision=1))
        print(
            f"throughput {metrics.throughput_rps:.1f} req/s, "
            f"miss rate {metrics.deadline_miss_rate:.3f}, "
            f"compute {metrics.total_compute_s:.3f} s "
            f"(cache saved {metrics.compute_saved_s:.3f} s in "
            f"{metrics.prefix_merges} merges)"
        )

    no_cache = runtime.with_config(
        duration_s=10.0, load_factor=2.0, seed=0, prefix_cache=False
    ).run()
    print(
        f"\nwithout the prefix cache the same run costs "
        f"{no_cache.total_compute_s:.3f} s of simulated GPU time"
    )

    # --- tensor-level: one input, two paths sharing a frozen trunk ----
    rng = np.random.default_rng(0)
    trunk = NamedModule(
        "trunk", Linear(8, 16, rng=np.random.default_rng(1)), ReLU()
    )
    head_a = NamedModule("head_a", Linear(16, 4, rng=np.random.default_rng(2)))
    head_b = NamedModule("head_b", Linear(16, 2, rng=np.random.default_rng(3)))
    blocks = {
        "trunk": Block("trunk", "demo", compute_time_s=0.01, memory_gb=0.1),
        "head_a": Block("head_a", "demo:a", compute_time_s=0.002, memory_gb=0.02),
        "head_b": Block("head_b", "demo:b", compute_time_s=0.002, memory_gb=0.02),
    }
    quality = QualityLevel(name="full", bits_per_image=350_000.0)
    path_a = Path("demo:a", "demo:a", 1, (blocks["trunk"], blocks["head_a"]), 0.9, quality)
    path_b = Path("demo:b", "demo:b", 2, (blocks["trunk"], blocks["head_b"]), 0.8, quality)
    runner = BlockwiseRunner(
        modules={"trunk": trunk, "head_a": head_a, "head_b": head_b},
        cacheable=frozenset({"trunk"}),
    )
    x = rng.normal(size=(1, 8))
    out_a = runner.run(path_a, x, input_key=42)
    out_b = runner.run(path_b, x, input_key=42)
    print(
        f"\nblockwise runner: outputs {out_a.shape} and {out_b.shape}, "
        f"trunk computed once ({runner.cache_hits} cache hit, "
        f"{runner.cache_misses} miss)"
    )


if __name__ == "__main__":
    main()
