#!/usr/bin/env python3
"""Dynamic admission: tasks arriving incrementally at the edge.

The paper notes the DOT formulation "can be trivially extended to deal
with a dynamic scenario": treat already-deployed blocks as free, and
discount the radio/compute/memory capacities.  The OffloaDNN controller
realizes exactly this — it pulls the *remaining* capacity from the VIM
and the slice manager before every solve, and the VIM's
reference-counted deployments make previously loaded shared blocks free
for newcomers.

This example admits two waves of tasks and then evicts one, showing the
capacity bookkeeping across the lifecycle.

Run:  python examples/dynamic_admission.py
"""

from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import RadioModel
from repro.core.task import QualityLevel, Task
from repro.edge.controller import OffloaDNNController
from repro.edge.resources import Gpu
from repro.edge.vim import VirtualInfrastructureManager
from repro.radio.slicing import SliceManager
from repro.workloads.generator import ScenarioCatalogBuilder


def make_tasks(ids, priorities):
    quality = QualityLevel("full", 350_000.0)
    return tuple(
        Task(
            task_id=i,
            name=f"task-{i}",
            method="classification",
            priority=p,
            request_rate=5.0,
            min_accuracy=0.75,
            max_latency_s=0.4,
            qualities=(quality,),
        )
        for i, p in zip(ids, priorities)
    )


def show(controller, label):
    status = controller.vim.computing_status()
    print(
        f"  [{label}] memory free {status['memory_free_gb']:.2f} GB, "
        f"compute free {status['compute_free_s']:.2f} s, "
        f"RBs free {controller.slice_manager.free_rbs}, "
        f"active blocks {int(status['active_blocks'])}"
    )


def main() -> None:
    vim = VirtualInfrastructureManager(gpus=(Gpu(0, vram_gb=8.0, compute_share=2.5),))
    controller = OffloaDNNController(
        vim=vim,
        slice_manager=SliceManager(capacity_rbs=50),
        radio=RadioModel(default_bits_per_rb=350_000.0),
        solver=OffloaDNNSolver(),
    )
    builder = ScenarioCatalogBuilder(seed=0)

    print("wave 1: tasks 1-3 arrive")
    wave1 = make_tasks([1, 2, 3], [0.9, 0.8, 0.7])
    catalog1 = builder.build(wave1, wave1[0].qualities[0])
    tickets = controller.handle_admission_requests(wave1, catalog1)
    for t in wave1:
        tk = tickets[t.task_id]
        print(f"  task {t.task_id}: admitted={tk.admitted} z={tk.admission_ratio:.2f} "
              f"r={tk.radio_blocks} path={tk.path_id}")
    show(controller, "after wave 1")

    print("wave 2: tasks 4-5 arrive (capacities already discounted)")
    wave2 = make_tasks([4, 5], [0.6, 0.5])
    catalog2 = builder.build(wave2, wave2[0].qualities[0])
    tickets = controller.handle_admission_requests(wave2, catalog2)
    for t in wave2:
        tk = tickets[t.task_id]
        print(f"  task {t.task_id}: admitted={tk.admitted} z={tk.admission_ratio:.2f} "
              f"r={tk.radio_blocks} path={tk.path_id}")
    show(controller, "after wave 2")

    print("task 2 leaves: its slice is released and orphaned blocks unload")
    controller.evict_task(2)
    show(controller, "after eviction")


if __name__ == "__main__":
    main()
