#!/usr/bin/env python3
"""Online edge operation: tasks arriving and departing over two hours.

Drives the OffloaDNN controller with a Poisson arrival process and
exponential task lifetimes at three offered loads, showing how the
edge breathes: deployed memory and slice usage rise and fall with the
active task population, shared trunk blocks stay warm across tasks,
and admission starts failing once the radio pool saturates.

Run:  python examples/online_edge.py
"""

import numpy as np

from repro.analysis.plots import sparkline as _sparkline
from repro.edge.online import OnlineStudy


def sparkline(values, maximum=None, width=60):
    """Downsample long traces so one line fits the terminal."""
    data = np.asarray(values, dtype=float)
    if len(data) > width:
        idx = np.linspace(0, len(data) - 1, width).astype(int)
        data = data[idx]
    return _sparkline(data, maximum=maximum)


def main() -> None:
    print("Online study: Poisson arrivals, exponential lifetimes, 50-RB cell\n")
    for label, arrival_rate, lifetime in (
        ("light", 0.1, 30.0),
        ("moderate", 0.4, 40.0),
        ("heavy", 1.5, 60.0),
    ):
        study = OnlineStudy(
            arrival_rate_per_s=arrival_rate,
            mean_lifetime_s=lifetime,
            horizon_s=240.0,
            seed=4,
        )
        trace = study.run()
        offered = arrival_rate * lifetime
        _, active = trace.series("active_tasks")
        _, memory = trace.series("deployed_memory_gb")
        _, rbs = trace.series("allocated_rbs")
        print(f"[{label}] offered load ~{offered:.0f} concurrent tasks")
        print(f"  arrivals {trace.arrivals}, admitted {trace.admissions} "
              f"({trace.admission_fraction:.0%}), departures {trace.departures}")
        print(f"  active tasks  {sparkline(active)}  peak {max(active):.0f}")
        print(f"  memory [GB]   {sparkline(memory, maximum=study.memory_gb)}  "
              f"peak {max(memory):.2f}/{study.memory_gb}")
        print(f"  slice RBs     {sparkline(rbs, maximum=study.radio_blocks)}  "
              f"peak {max(rbs):.0f}/{study.radio_blocks}")
        final = trace.snapshots[-1]
        print(f"  drained clean: active={final.active_tasks} "
              f"memory={final.deployed_memory_gb:.2f} GB "
              f"blocks={final.active_blocks}\n")


if __name__ == "__main__":
    main()
