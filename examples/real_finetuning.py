#!/usr/bin/env python3
"""Real gradient-based fine-tuning on the numpy engine.

Goes beyond the calibrated Fig. 2 surrogate: fine-tunes the trainable
suffix of two Table I configurations with *exact* backpropagation
(validated against finite differences in the test suite), on a small
synthetic image dataset, and contrasts their convergence — CONFIG B
(head only) trains fast with few parameters; CONFIG C (last stage +
head) adapts more capacity per step.

Run:  python examples/real_finetuning.py   (~1 minute on CPU)
"""

import numpy as np

from repro.dnn.configs import get_config
from repro.dnn.datasets import ImageDataset, make_image_dataset
from repro.dnn.finetune import FineTuner
from repro.dnn.resnet import build_resnet18


def split(dataset: ImageDataset, fraction: float, seed: int):
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset.labels))
    cut = int(fraction * len(order))
    make = lambda idx: ImageDataset(
        images=dataset.images[idx], labels=dataset.labels[idx],
        num_classes=dataset.num_classes,
    )
    return make(order[:cut]), make(order[cut:])


def main() -> None:
    full = make_image_dataset(num_classes=5, samples_per_class=20, image_size=12,
                              noise_std=0.3, seed=0)
    train, test = split(full, 0.75, seed=1)
    print(f"dataset: {len(train.labels)} train / {len(test.labels)} test images, "
          f"{full.num_classes} classes\n")

    for name, lr in (("CONFIG B", 0.05), ("CONFIG C", 0.01)):
        config = get_config(name)
        model = build_resnet18(num_classes=5, input_size=12, width=8, seed=0)
        tuner = FineTuner(model, config, lr=lr, batch_size=16, seed=0)
        trainable_params = sum(p.size for p in tuner.suffix.parameters())
        print(f"{name}: training {tuner.trainable_names} "
              f"({trainable_params:,} parameters), frozen {tuner.frozen_names}")
        run = tuner.fit(train, test, epochs=8)
        for epoch in range(0, 8, 2):
            print(f"  epoch {epoch + 1}: loss {run.train_loss[epoch]:7.3f}  "
                  f"train acc {run.train_accuracy[epoch]:.2f}  "
                  f"test acc {run.test_accuracy[epoch]:.2f}")
        print(f"  final: train {run.train_accuracy[-1]:.2f}, "
              f"test {run.test_accuracy[-1]:.2f}\n")

    print("Every gradient used above is exact (checked against finite")
    print("differences in tests/test_dnn_autograd.py); the long 250-epoch")
    print("runs of Fig. 2 use the calibrated surrogate instead.")


if __name__ == "__main__":
    main()
