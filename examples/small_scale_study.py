#!/usr/bin/env python3
"""Small-scale study: how close does OffloaDNN get to the optimum?

Reproduces the Figs. 6-8 experiment: for T = 1..4 tasks (T = 5 takes
~20 s for the exhaustive optimum; pass --full to include it), solve the
DOT problem both ways and compare runtime, objective, admission and
resource usage.

Run:  python examples/small_scale_study.py [--full]
"""

import sys

from repro.core import OffloaDNNSolver, OptimalSolver, objective_value
from repro.workloads import small_scale_problem


def main() -> None:
    max_tasks = 5 if "--full" in sys.argv else 4
    header = (
        f"{'T':>2} {'Off. time':>10} {'Opt. time':>10} {'Off. cost':>10} "
        f"{'Opt. cost':>10} {'w.adm (both)':>12} {'Off. mem':>9} {'Opt. mem':>9}"
    )
    print(header)
    print("-" * len(header))
    for num_tasks in range(1, max_tasks + 1):
        problem = small_scale_problem(num_tasks)
        heuristic = OffloaDNNSolver().solve(problem)
        optimal = OptimalSolver().solve(problem)
        assert abs(
            heuristic.weighted_admission_ratio - optimal.weighted_admission_ratio
        ) < 1e-6, "admission should match the optimum in this scenario"
        print(
            f"{num_tasks:>2} "
            f"{heuristic.solve_time_s * 1e3:>8.2f}ms "
            f"{optimal.solve_time_s:>9.3f}s "
            f"{objective_value(problem, heuristic):>10.4f} "
            f"{objective_value(problem, optimal):>10.4f} "
            f"{heuristic.weighted_admission_ratio:>12.2f} "
            f"{heuristic.total_memory_gb:>8.2f}G "
            f"{optimal.total_memory_gb:>8.2f}G"
        )
    print(
        "\nOffloaDNN explores a single branch (O(T^2)); the optimum walks all "
        "~15^T branches,\nwhich is what Fig. 6's exponential runtime gap shows."
    )


if __name__ == "__main__":
    main()
