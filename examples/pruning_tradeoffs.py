#!/usr/bin/env python3
"""DNN shaping demo: the Sec. II motivating experiments on the substrate.

Walks the numpy ResNet-18 through the paper's two motivating studies:

1. fine-tuning cost of the Table I configurations (accuracy curves +
   peak training memory, Fig. 2), plus a *real* numpy-Adam training run
   of the classifier head on synthetic Table II-style features;
2. the inference-time/accuracy trade-off of 80% structured pruning
   (Fig. 3), measured on dummy tensors.

Run:  python examples/pruning_tradeoffs.py
"""

from repro.dnn.configs import TABLE_I_CONFIGS, get_config
from repro.dnn.datasets import make_feature_dataset
from repro.dnn.profiler import profile_model
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18
from repro.dnn.training import (
    HeadTrainer,
    LearningCurveModel,
    TrainingMemoryModel,
    pruned_accuracy_drop,
)


def study_training() -> None:
    print("=== Experiment 1: training the Table I configurations (Fig. 2) ===")
    model = build_resnet18(num_classes=60, input_size=32, width=64)
    memory = TrainingMemoryModel(batch_size=256)
    print(f"{'config':10s} {'epochs to 80%':>14s} {'acc @250':>9s} {'peak MiB':>9s}")
    for letter in "ABCDE":
        config = get_config(f"CONFIG {letter}")
        curve = LearningCurveModel.for_config(config)
        print(
            f"CONFIG {letter:4s} {str(curve.epochs_to_reach(0.8)):>14s} "
            f"{curve.accuracy_at(250):>9.3f} {memory.peak_mib(model, config):>9.0f}"
        )

    print("\nreal numpy-Adam training of the classifier head (CONFIG B style):")
    data = make_feature_dataset(num_classes=10, samples_per_class=60,
                                feature_dim=512, separability=3.0)
    train, test = data.split(0.8, seed=0)
    trainer = HeadTrainer(feature_dim=512, num_classes=10, lr=0.02, batch_size=256)
    run = trainer.fit(train, test, epochs=12)
    for epoch in (0, 3, 7, 11):
        print(
            f"  epoch {epoch + 1:2d}: loss {run.train_loss[epoch]:.3f}  "
            f"test acc {run.test_accuracy[epoch]:.3f}"
        )


def study_pruning() -> None:
    print("\n=== Experiment 2: 80% structured pruning (Fig. 3) ===")
    print(f"{'config':18s} {'params':>10s} {'infer ms':>9s} {'acc @100ep':>10s}")
    for name in sorted(TABLE_I_CONFIGS):
        config = TABLE_I_CONFIGS[name]
        model = build_resnet18(num_classes=60, input_size=32, width=64)
        drop = pruned_accuracy_drop(config, model) if config.pruned else 0.0
        if config.pruned:
            prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
        profile = profile_model(model, repeats=3)
        accuracy = LearningCurveModel.for_config(config).accuracy_at(100) - drop
        print(
            f"{name:18s} {profile.total_params:>10,d} "
            f"{profile.total_compute_time_s * 1e3:>9.2f} {accuracy:>10.3f}"
        )
    print(
        "\ntakeaway: pruned configurations trade a few accuracy points for "
        "multi-x inference\nspeedups — the menu the DOT problem optimizes over."
    )


if __name__ == "__main__":
    study_training()
    study_pruning()
