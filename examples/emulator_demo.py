#!/usr/bin/env python3
"""Emulator demo: the Fig. 11 Colosseum-substitute experiment.

The OffloaDNN controller admits the five small-scale tasks on a
100-RB LTE cell; UEs then offload frames at the granted rates for 20
seconds through the discrete-event emulator.  The output is each task's
end-to-end latency trace (3-sample moving average), which must stay
within its constraint — the paper's operational validation.

Run:  python examples/emulator_demo.py
"""

import numpy as np

from repro.emulator import run_small_scale_emulation


def sparkline(values: np.ndarray, limit: float, width: int = 50) -> str:
    """Render a latency trace as a text sparkline scaled to the limit."""
    if len(values) == 0:
        return "(no samples)"
    idx = np.linspace(0, len(values) - 1, min(width, len(values))).astype(int)
    marks = "▁▂▃▄▅▆▇█"
    chars = []
    for v in values[idx]:
        level = min(1.0, v / limit)
        chars.append(marks[min(len(marks) - 1, int(level * len(marks)))])
    return "".join(chars)


def main() -> None:
    problem, result = run_small_scale_emulation(num_tasks=5, duration_s=20.0)
    print("Fig. 11 emulation: end-to-end latency over 20 s (100-RB cell)")
    print(f"DES events processed: {result.events_processed}\n")
    for task in problem.tasks:
        ticket = result.tickets[task.task_id]
        times, latency = result.timeline.series(task.task_id, window=3)
        print(
            f"task {task.task_id} (limit {task.max_latency_s * 1e3:.0f} ms, "
            f"slice {ticket.radio_blocks} RBs, rate {ticket.granted_rate:.1f} req/s)"
        )
        print(f"  {sparkline(latency, task.max_latency_s)}")
        print(
            f"  mean {latency.mean() * 1e3:6.1f} ms   max {latency.max() * 1e3:6.1f} ms  "
            f"samples {len(latency)}"
        )
    verdict = "PASS" if result.all_within_limits(problem) else "FAIL"
    print(f"\nall latencies within the task constraints: {verdict}")


if __name__ == "__main__":
    main()
