#!/usr/bin/env python3
"""Large-scale study: OffloaDNN vs SEM-O-RAN at three request loads.

Reproduces the Figs. 9-10 experiment: 20 tasks, low/medium/high request
rates, comparing admission ratios and resource consumption between the
OffloaDNN heuristic and the SEM-O-RAN baseline.

Run:  python examples/large_scale_study.py
"""

from repro.baselines import SemORANSolver
from repro.core import OffloaDNNSolver, objective_value
from repro.workloads import RequestRate, large_scale_problem


def bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    for rate in RequestRate:
        problem = large_scale_problem(rate)
        offloadnn = OffloaDNNSolver().solve(problem)
        semoran = SemORANSolver().solve(problem)

        print(f"\n=== {rate.label} request rate ({rate.value} req/s per task) ===")
        print("admission ratio per task (ids 1..20):")
        for name, sol in (("OffloaDNN", offloadnn), ("SEM-O-RAN", semoran)):
            ratios = " ".join(
                f"{sol.assignment(t).admission_ratio:4.2f}" for t in range(1, 21)
            )
            print(f"  {name:10s} {ratios}")

        budgets = problem.budgets
        print("resource usage (fraction of budget):")
        for label, off_val, sem_val in (
            ("radio RBs", offloadnn.total_radio_blocks / budgets.radio_blocks,
             semoran.total_radio_blocks / budgets.radio_blocks),
            ("memory", offloadnn.total_memory_gb / budgets.memory_gb,
             semoran.total_memory_gb / budgets.memory_gb),
            ("inference", offloadnn.total_inference_compute_s / budgets.compute_time_s,
             semoran.total_inference_compute_s / budgets.compute_time_s),
        ):
            print(f"  {label:10s} OffloaDNN [{bar(off_val)}] {off_val:5.1%}")
            print(f"  {'':10s} SEM-O-RAN [{bar(sem_val)}] {sem_val:5.1%}")
        print(
            f"admitted tasks: OffloaDNN {offloadnn.admitted_task_count} vs "
            f"SEM-O-RAN {semoran.admitted_task_count}; "
            f"DOT cost (OffloaDNN): {objective_value(problem, offloadnn):.2f}"
        )


if __name__ == "__main__":
    main()
