"""OffloaDNN reproduction — shaping DNNs for scalable offloading of
computer vision tasks at the edge (IEEE ICDCS 2024).

Public API tour:

* the DOT problem and solvers: :mod:`repro.core`
  (``DOTProblem``, ``OffloaDNNSolver``, ``OptimalSolver``)
* the DNN substrate: :mod:`repro.dnn`
  (numpy ResNet-18, structured pruning, profiling, training simulation)
* the evaluation scenarios: :mod:`repro.workloads`
  (``small_scale_problem``, ``large_scale_problem``)
* the SEM-O-RAN baseline: :mod:`repro.baselines`
* the edge platform and controller: :mod:`repro.edge`
* the radio substrate: :mod:`repro.radio`
* the Colosseum-substitute emulator: :mod:`repro.emulator`
* the serving runtime executing admitted streams: :mod:`repro.serving`
  (``ServingRuntime``, ``TokenBucket``, ``ServingMetrics``)
* the multi-node serving fabric: :mod:`repro.cluster`
  (``ClusterOrchestrator``, ``NodeSpec``, ``StreamRouter``)
* tracing/metrics/trace export: :mod:`repro.obs`
  (``ObsSession``, ``use_tracer``, ``MetricsRegistry``)
* figure/table reproduction: :mod:`repro.analysis`

Quickstart::

    from repro.workloads import small_scale_problem
    from repro.core import OffloaDNNSolver, objective_value

    problem = small_scale_problem(num_tasks=5)
    solution = OffloaDNNSolver().solve(problem)
    print(solution.admitted_task_count, objective_value(problem, solution))
"""

from repro.core import (
    Assignment,
    Block,
    Budgets,
    Catalog,
    DOTProblem,
    DOTSolution,
    OffloaDNNSolver,
    OptimalSolver,
    Path,
    QualityLevel,
    Task,
    check_constraints,
    objective_value,
)
from repro.baselines import SemORANSolver
from repro.cluster import ClusterOrchestrator, NodeSpec, StreamRouter
from repro.obs import ObsSession, use_tracer
from repro.serving import ServingConfig, ServingMetrics, ServingRuntime, TokenBucket
from repro.workloads import (
    RequestRate,
    large_scale_problem,
    serving_small_scale_problem,
    small_scale_problem,
)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "Block",
    "Budgets",
    "Catalog",
    "ClusterOrchestrator",
    "DOTProblem",
    "DOTSolution",
    "NodeSpec",
    "ObsSession",
    "OffloaDNNSolver",
    "OptimalSolver",
    "Path",
    "QualityLevel",
    "SemORANSolver",
    "ServingConfig",
    "ServingMetrics",
    "ServingRuntime",
    "StreamRouter",
    "Task",
    "TokenBucket",
    "RequestRate",
    "check_constraints",
    "objective_value",
    "large_scale_problem",
    "serving_small_scale_problem",
    "small_scale_problem",
    "use_tracer",
    "__version__",
]
