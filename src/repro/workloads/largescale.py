"""The large-scale scenario (Table IV, right column).

20 tasks; request rates of 2.5 (low), 5 (medium) or 7.5 (high) req/s;
accuracy requirement ``A_τ = 0.8 - 0.015 τ`` and latency limit
``L_τ = 200 + 20 τ`` ms; priorities 1, 0.95, ..., 0.05; |D| = 125 DNN
structures with |Π^d_τ| = 10 paths per task per structure (each path of
four blocks — realized here as the ten Table I configurations per task
on the shared base family, yielding 125+ distinct dynamic structures);
C = 10 s, Ct = 1000 s, M = 16 GB, R = 100 RBs, β = 350 Kb,
B = 0.35 Mbps, α = 0.5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.core.catalog import Catalog
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.workloads.generator import CostBasis, DNNFamily, ScenarioCatalogBuilder

__all__ = [
    "RequestRate",
    "LargeScaleParams",
    "LARGE_SCALE",
    "large_scale_tasks",
    "large_scale_problem",
    "replicated_large_scale_tasks",
    "replicated_large_scale_problem",
]


class RequestRate(enum.Enum):
    """The three task-request loads of the large-scale evaluation."""

    LOW = 2.5
    MEDIUM = 5.0
    HIGH = 7.5

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class LargeScaleParams:
    """Table IV large-scenario constants."""

    num_tasks: int = 20
    paths_per_task: int = 10
    compute_budget_s: float = 10.0
    training_budget_s: float = 1000.0
    memory_gb: float = 16.0
    bits_per_image: float = 350_000.0
    bits_per_rb: float = 350_000.0
    alpha: float = 0.5
    radio_blocks: int = 100

    def accuracy_for(self, task_index: int) -> float:
        """``A_τ = 0.8 - 0.015 τ`` (τ = 1..20)."""
        return 0.8 - 0.015 * task_index

    def latency_for(self, task_index: int) -> float:
        """``L_τ = (200 + 20 τ) ms`` (τ = 1..20)."""
        return (200.0 + 20.0 * task_index) / 1000.0

    def priority_for(self, task_index: int) -> float:
        """1, 0.95, ..., 0.05 for τ = 1..20."""
        return round(1.0 - 0.05 * (task_index - 1), 10)


LARGE_SCALE = LargeScaleParams()


def large_scale_tasks(
    rate: RequestRate, params: LargeScaleParams = LARGE_SCALE
) -> tuple[Task, ...]:
    """The 20 tasks of the large-scale scenario at the given load."""
    quality = QualityLevel(name="full", bits_per_image=params.bits_per_image)
    return tuple(
        Task(
            task_id=i,
            name=f"task-{i}",
            method="classification",
            priority=params.priority_for(i),
            request_rate=rate.value,
            min_accuracy=params.accuracy_for(i),
            max_latency_s=params.latency_for(i),
            qualities=(quality,),
        )
        for i in range(1, params.num_tasks + 1)
    )


def replicated_large_scale_tasks(
    rate: RequestRate,
    replicas: int,
    params: LargeScaleParams = LARGE_SCALE,
) -> tuple[Task, ...]:
    """The 20 large-scale tasks, each replicated ``replicas`` times.

    Replica ``k`` of base task ``i`` gets ``task_id = i + 20 k`` and is
    otherwise identical — the modeled-user population of the scaled
    control-plane studies, where a "task" is one device's request and
    thousands of devices share each of the 20 service classes.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    base = large_scale_tasks(rate, params)
    tasks = list(base)
    for k in range(1, replicas):
        offset = params.num_tasks * k
        tasks.extend(
            replace(t, task_id=t.task_id + offset, name=f"{t.name}-r{k}")
            for t in base
        )
    return tuple(tasks)


def replicated_large_scale_problem(
    rate: RequestRate,
    replicas: int,
    params: LargeScaleParams = LARGE_SCALE,
    basis: CostBasis | None = None,
    seed: int = 0,
) -> DOTProblem:
    """A ``20 x replicas``-task instance sharing the base catalog.

    Every replica of base task ``i`` references the *same* candidate
    path tuple (by identity, not copies), so the catalog stays
    O(base paths) in memory at any population size and the aggregation
    layer (:mod:`repro.core.aggregate`) can pool the replicas into 20
    meta-tasks.
    """
    small = large_scale_problem(rate, params=params, basis=basis, seed=seed)
    tasks = replicated_large_scale_tasks(rate, replicas, params)
    catalog = Catalog()
    catalog.paths_by_task = dict(small.catalog.paths_by_task)
    for task in tasks[params.num_tasks :]:
        base_id = (task.task_id - 1) % params.num_tasks + 1
        catalog.paths_by_task[task.task_id] = small.catalog.paths_by_task[base_id]
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=small.budgets,
        radio=small.radio,
        alpha=small.alpha,
    )


def large_scale_problem(
    rate: RequestRate,
    params: LargeScaleParams = LARGE_SCALE,
    basis: CostBasis | None = None,
    seed: int = 0,
) -> DOTProblem:
    """Build the large-scale DOT problem at the given request rate."""
    tasks = large_scale_tasks(rate, params)
    builder = ScenarioCatalogBuilder(
        basis=basis or CostBasis(),
        families=(DNNFamily("rn18"),),
        seed=seed,
    )
    quality = tasks[0].qualities[0]
    catalog = builder.build(tasks, quality)
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=params.compute_budget_s,
            training_budget_s=params.training_budget_s,
            memory_gb=params.memory_gb,
            radio_blocks=params.radio_blocks,
        ),
        radio=RadioModel(default_bits_per_rb=params.bits_per_rb),
        alpha=params.alpha,
    )
