"""Heterogeneous-channel scenario: per-task ``B(σ_τ)`` from the PHY.

Table IV fixes ``B = 0.35 Mbps`` for every task; in a real cell,
devices at different distances see different SINRs and hence different
per-RB capacities.  This scenario derives each task's ``B(σ_τ)`` from
the full radio substrate — link budget → SINR → CQI/MCS → bits per RB —
and feeds the per-task values into the DOT problem, exercising the
``RadioModel.per_task_bits_per_rb`` pathway end to end.

Far devices need more RBs per task, so the radio pool binds earlier
than in the homogeneous scenario — the effect the ``distance_spread``
knob controls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.radio.channel import ChannelModel
from repro.radio.phy import bits_per_rb_from_sinr
from repro.workloads.generator import CostBasis, ScenarioCatalogBuilder

__all__ = ["HeterogeneousParams", "heterogeneous_problem"]


@dataclass(frozen=True)
class HeterogeneousParams:
    """Scenario knobs."""

    num_tasks: int = 10
    request_rate: float = 2.5
    min_distance_m: float = 20.0
    max_distance_m: float = 400.0
    compute_budget_s: float = 10.0
    training_budget_s: float = 1000.0
    memory_gb: float = 16.0
    radio_blocks: int = 100
    bits_per_image: float = 350_000.0
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("need at least one task")
        if not 0 < self.min_distance_m <= self.max_distance_m:
            raise ValueError("distance range out of order")


def heterogeneous_problem(
    params: HeterogeneousParams = HeterogeneousParams(),
    channel: ChannelModel | None = None,
    seed: int = 0,
) -> DOTProblem:
    """Build a DOT problem with PHY-derived per-task RB capacities."""
    rng = np.random.default_rng(seed)
    channel = channel or ChannelModel()
    quality = QualityLevel("full", params.bits_per_image)

    tasks = []
    per_task_bits: dict[int, float] = {}
    distances = np.sort(
        rng.uniform(params.min_distance_m, params.max_distance_m, params.num_tasks)
    )
    for index, distance in enumerate(distances, start=1):
        sinr_db = channel.mean_snr_db(float(distance))
        bits = bits_per_rb_from_sinr(sinr_db)
        if bits <= 0:
            continue  # device out of coverage: no admissible task
        task = Task(
            task_id=index,
            name=f"task-{index}@{distance:.0f}m",
            method="classification",
            priority=round(1.0 - 0.05 * (index - 1), 10),
            request_rate=params.request_rate,
            min_accuracy=0.7,
            max_latency_s=0.5,
            qualities=(quality,),
            sinr_db=float(sinr_db),
        )
        tasks.append(task)
        per_task_bits[index] = float(bits)
    if not tasks:
        raise ValueError("every device is out of coverage")

    builder = ScenarioCatalogBuilder(basis=CostBasis(), seed=seed)
    catalog = builder.build(tuple(tasks), quality)
    return DOTProblem(
        tasks=tuple(tasks),
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=params.compute_budget_s,
            training_budget_s=params.training_budget_s,
            memory_gb=params.memory_gb,
            radio_blocks=params.radio_blocks,
        ),
        radio=RadioModel(
            default_bits_per_rb=350_000.0, per_task_bits_per_rb=per_task_bits
        ),
        alpha=params.alpha,
    )
