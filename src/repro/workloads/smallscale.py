"""The small-scale scenario (Table IV, left column).

1 to 5 tasks, ordered by decreasing priority; request rate 5 req/s for
every task; per-task accuracy requirements [0.9, 0.8, 0.7, 0.6, 0.5]
and latency limits [200, 300, 400, 500, 600] ms; |D| = 3 DNNs with
|Π^d_τ| = 5 paths each (every path composed of four blocks); C = 2.5 s,
Ct = 1000 s, M = 8 GB, R = 50 RBs, β = 350 Kb, B = 0.35 Mbps, α = 0.5,
priorities [0.8, 0.7, 0.6, 0.5, 0.4].
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as replace_params

from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.workloads.generator import CostBasis, DNNFamily, ScenarioCatalogBuilder

__all__ = [
    "SmallScaleParams",
    "SMALL_SCALE",
    "small_scale_tasks",
    "small_scale_problem",
    "serving_small_scale_problem",
]


@dataclass(frozen=True)
class SmallScaleParams:
    """Table IV small-scenario constants."""

    max_tasks: int = 5
    request_rate: float = 5.0
    accuracies: tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5)
    latencies_s: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6)
    priorities: tuple[float, ...] = (0.8, 0.7, 0.6, 0.5, 0.4)
    num_dnns: int = 3
    paths_per_dnn: int = 5
    compute_budget_s: float = 2.5
    training_budget_s: float = 1000.0
    memory_gb: float = 8.0
    bits_per_image: float = 350_000.0
    bits_per_rb: float = 350_000.0
    alpha: float = 0.5
    radio_blocks: int = 50


SMALL_SCALE = SmallScaleParams()

#: Five configurations spanning the accuracy/compute trade-off, offered
#: by each of the three DNN families (|Π^d_τ| = 5).
SMALL_SCALE_CONFIGS: tuple[str, ...] = (
    "CONFIG A",
    "CONFIG E",
    "CONFIG C",
    "CONFIG C-pruned",
    "CONFIG A-pruned",
)

#: The three DNN families (|D| = 3): the reference ResNet-18, a slim
#: variant and a wide variant.
SMALL_SCALE_FAMILIES: tuple[DNNFamily, ...] = (
    DNNFamily("rn18", compute_scale=1.0, memory_scale=1.0, accuracy_offset=0.0),
    DNNFamily("rn18s", compute_scale=0.8, memory_scale=0.8, accuracy_offset=-0.02),
    DNNFamily("rn18w", compute_scale=1.25, memory_scale=1.25, accuracy_offset=0.01),
)


def small_scale_tasks(
    num_tasks: int, params: SmallScaleParams = SMALL_SCALE
) -> tuple[Task, ...]:
    """The first ``num_tasks`` tasks of the scenario, priority-ordered."""
    if not 1 <= num_tasks <= params.max_tasks:
        raise ValueError(f"num_tasks must be in [1, {params.max_tasks}]")
    quality = QualityLevel(name="full", bits_per_image=params.bits_per_image)
    return tuple(
        Task(
            task_id=i + 1,
            name=f"task-{i + 1}",
            method="classification",
            priority=params.priorities[i],
            request_rate=params.request_rate,
            min_accuracy=params.accuracies[i],
            max_latency_s=params.latencies_s[i],
            qualities=(quality,),
        )
        for i in range(num_tasks)
    )


def small_scale_problem(
    num_tasks: int,
    params: SmallScaleParams = SMALL_SCALE,
    basis: CostBasis | None = None,
    seed: int = 0,
) -> DOTProblem:
    """Build the small-scale DOT problem with ``num_tasks`` tasks."""
    tasks = small_scale_tasks(num_tasks, params)
    builder = ScenarioCatalogBuilder(
        basis=basis or CostBasis(),
        families=SMALL_SCALE_FAMILIES,
        config_names=SMALL_SCALE_CONFIGS,
        seed=seed,
    )
    quality = tasks[0].qualities[0]
    catalog = builder.build(tasks, quality)
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=params.compute_budget_s,
            training_budget_s=params.training_budget_s,
            memory_gb=params.memory_gb,
            radio_blocks=params.radio_blocks,
        ),
        radio=RadioModel(default_bits_per_rb=params.bits_per_rb),
        alpha=params.alpha,
    )


#: Shared-trunk configurations for the serving scenario: both keep
#: layer1-3 frozen on the family base blocks and fine-tune only g4.
SERVING_CONFIGS: tuple[str, ...] = ("CONFIG C", "CONFIG C-pruned")


def serving_small_scale_problem(
    num_tasks: int = 5,
    radio_blocks: int = 100,
    seed: int = 0,
) -> DOTProblem:
    """The small-scale scenario shaped for the serving runtime.

    Same Table IV constants, with two deliberate deviations: the full
    100-RB cell of the Sec. V-B emulation, and a catalog restricted to
    the shared-trunk configurations (CONFIG C / C-pruned) with the top
    accuracy requirement relaxed to 0.84 so they stay feasible.  Every
    admitted path then shares the frozen ``base:g1..g3`` prefix and
    diverges at its fine-tuned ``g4`` — the coupling the executor's
    shared-block prefix cache exploits.
    """
    params = replace_params(
        SMALL_SCALE,
        radio_blocks=radio_blocks,
        accuracies=(0.84,) + SMALL_SCALE.accuracies[1:],
    )
    tasks = small_scale_tasks(num_tasks, params)
    builder = ScenarioCatalogBuilder(
        basis=CostBasis(),
        families=SMALL_SCALE_FAMILIES,
        config_names=SERVING_CONFIGS,
        seed=seed,
    )
    catalog = builder.build(tasks, tasks[0].qualities[0])
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=params.compute_budget_s,
            training_budget_s=params.training_budget_s,
            memory_gb=params.memory_gb,
            radio_blocks=params.radio_blocks,
        ),
        radio=RadioModel(default_bits_per_rb=params.bits_per_rb),
        alpha=params.alpha,
    )
