"""Scenario generators reproducing Table IV.

* :mod:`repro.workloads.generator` -- catalog builder: turns a cost
  basis (static reference values or live profiler output) into DOT
  blocks and paths with the paper's sharing structure
* :mod:`repro.workloads.smallscale` -- the T=1..5 small-scale scenario
* :mod:`repro.workloads.largescale` -- the T=20 large-scale scenario
"""

from repro.workloads.generator import CostBasis, ScenarioCatalogBuilder
from repro.workloads.smallscale import (
    small_scale_problem,
    serving_small_scale_problem,
    SMALL_SCALE,
)
from repro.workloads.largescale import large_scale_problem, LARGE_SCALE, RequestRate
from repro.workloads.heterogeneous import heterogeneous_problem, HeterogeneousParams

__all__ = [
    "CostBasis",
    "ScenarioCatalogBuilder",
    "small_scale_problem",
    "serving_small_scale_problem",
    "SMALL_SCALE",
    "large_scale_problem",
    "LARGE_SCALE",
    "RequestRate",
    "heterogeneous_problem",
    "HeterogeneousParams",
]
