"""Catalog generation for the evaluation scenarios.

The paper characterizes the DNN block costs "experimentally ... under
settings similar to those used in Sec. II" and feeds them to the DOT
solvers.  This module provides:

* :class:`CostBasis` — the per-group reference costs.  The default
  values are calibrated from profiling the numpy ResNet-18 substrate and
  scaled to edge-server magnitudes (a full 4-block path costs ~35 ms of
  GPU time and ~1 GB of serving memory; structured pruning at 80%
  reduces block compute by ~5x and memory by ~8x, the arithmetic the
  Sec. II experiments measure);
* :func:`cost_basis_from_profiler` — derives a basis live from
  :func:`repro.dnn.repository.profile_table_i` instead;
* :class:`ScenarioCatalogBuilder` — expands a basis into DOT blocks and
  paths for a task set, with the sharing structure of Table I: shared
  groups map to per-family global blocks, fine-tuned groups to per-task
  blocks, and per-task jitter models task difficulty spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.catalog import Block, Catalog, Path
from repro.core.task import QualityLevel, Task
from repro.dnn.configs import STAGE_NAMES, TABLE_I_CONFIGS, BlockConfig

__all__ = [
    "GROUP_NAMES",
    "DNNFamily",
    "CostBasis",
    "ScenarioCatalogBuilder",
    "MethodProfile",
    "METHOD_PROFILES",
    "cost_basis_from_profiler",
    "mobilenet_family_from_profiler",
]

#: 4-block partition of the ResNet stages (matches repro.dnn.repository).
GROUP_NAMES = ("g1", "g2", "g3", "g4")

#: Stages contained in each group (g1 also carries the stem, g4 the head).
GROUP_STAGES: dict[str, tuple[str, ...]] = {
    "g1": ("layer1",),
    "g2": ("layer2",),
    "g3": ("layer3",),
    "g4": ("layer4",),
}


@dataclass(frozen=True)
class MethodProfile:
    """How a CV method reshapes the reference (classification) costs.

    Object detection, for instance, adds a detection head on top of the
    backbone (more compute and memory on the last group) and its
    accuracy lives on the mAP scale, well below top-1 for the same
    backbone (the Fig. 4 example asks for 0.5 mAP where classification
    tasks ask for 0.5-0.9 top-1).
    """

    method: str
    compute_scale: float = 1.0
    memory_scale: float = 1.0
    #: additive shift applied to the configuration accuracy (e.g. the
    #: top-1 -> mAP gap)
    accuracy_offset: float = 0.0
    #: metric name, for reporting ("top-1", "mAP")
    metric: str = "top-1"


#: Built-in method profiles.  Detection costs are grounded on the
#: substrate: repro.dnn.detection's head adds ~15-20% backbone compute
#: and the mAP of a detector trails its backbone's top-1 substantially.
METHOD_PROFILES: dict[str, MethodProfile] = {
    "classification": MethodProfile(method="classification"),
    "detection": MethodProfile(
        method="detection",
        compute_scale=1.2,
        memory_scale=1.15,
        accuracy_offset=-0.25,
        metric="mAP",
    ),
}


@dataclass(frozen=True)
class DNNFamily:
    """One base DNN architecture available in the repository ``D``.

    Families scale the reference costs (e.g. a slim ResNet variant) and
    shift the attainable accuracy; blocks are shared within a family
    only (two architectures cannot share weights).
    """

    family_id: str
    compute_scale: float = 1.0
    memory_scale: float = 1.0
    accuracy_offset: float = 0.0


@dataclass(frozen=True)
class CostBasis:
    """Reference costs per 4-block group for the full (unpruned) model."""

    compute_s: dict[str, float] = field(
        default_factory=lambda: {"g1": 0.009, "g2": 0.008, "g3": 0.008, "g4": 0.010}
    )
    memory_gb: dict[str, float] = field(
        default_factory=lambda: {"g1": 0.22, "g2": 0.20, "g3": 0.25, "g4": 0.33}
    )
    #: converged accuracy per configuration (250-epoch fine-tuning,
    #: early-stopped before overfitting; see repro.dnn.training)
    accuracy: dict[str, float] = field(
        default_factory=lambda: {
            "CONFIG A": 0.930,
            "CONFIG B": 0.835,
            "CONFIG C": 0.865,
            "CONFIG D": 0.885,
            "CONFIG E": 0.905,
            "CONFIG A-pruned": 0.850,
            "CONFIG B-pruned": 0.820,
            "CONFIG C-pruned": 0.802,
            "CONFIG D-pruned": 0.810,
            "CONFIG E-pruned": 0.827,
        }
    )
    #: full-configuration training cost in device-seconds
    training_cost_s: dict[str, float] = field(
        default_factory=lambda: {
            "CONFIG A": 40.0,
            "CONFIG B": 4.0,
            "CONFIG C": 15.0,
            "CONFIG D": 22.0,
            "CONFIG E": 30.0,
            "CONFIG A-pruned": 44.0,
            "CONFIG B-pruned": 5.0,
            "CONFIG C-pruned": 17.0,
            "CONFIG D-pruned": 24.0,
            "CONFIG E-pruned": 33.0,
        }
    )
    #: compute of a pruned group relative to the full group (80% pruning)
    pruned_compute_factor: float = 0.2
    #: memory of a pruned group relative to the full group
    pruned_memory_factor: float = 0.12
    #: compute of an int8-quantized group relative to fp32 (measured
    #: ~1.38x geomean speedup of the quantized engine on Table I)
    int8_compute_factor: float = 0.72
    #: memory of an int8 group relative to fp32 (weights 4x smaller,
    #: int8 activation buffers; runtime overhead keeps it above 0.25)
    int8_memory_factor: float = 0.30
    #: top-1 accuracy cost of post-training int8 quantization
    int8_accuracy_drop: float = 0.005

    def group_compute(self, group: str, pruned: bool, int8: bool = False) -> float:
        base = self.compute_s[group]
        if pruned:
            base *= self.pruned_compute_factor
        if int8:
            base *= self.int8_compute_factor
        return base

    def group_memory(self, group: str, pruned: bool, int8: bool = False) -> float:
        base = self.memory_gb[group]
        if pruned:
            base *= self.pruned_memory_factor
        if int8:
            base *= self.int8_memory_factor
        return base


def cost_basis_from_profiler(
    width: int = 64,
    input_size: int = 32,
    repeats: int = 5,
    compute_scale: float = 1.0,
    memory_scale: float = 20.0,
    seed: int = 0,
    include_int8: bool = False,
) -> CostBasis:
    """Derive a :class:`CostBasis` from live profiling of the substrate.

    ``memory_scale`` maps profiled float32 parameter/activation bytes to
    serving memory (runtime, batching buffers, full-resolution
    activations), keeping the relative block sizes measured.

    ``include_int8=True`` additionally profiles the int8 engine and
    replaces the default int8 compute/memory factors with measured
    ratios (quantized vs fp32 CONFIG A).
    """
    from repro.dnn.repository import BLOCK_GROUPS, profile_table_i

    profiled = profile_table_i(
        width=width,
        input_size=input_size,
        repeats=repeats,
        seed=seed,
        compiled=include_int8,
        include_int8=include_int8,
    )
    full = profiled["CONFIG A"]
    pruned = profiled["CONFIG A-pruned"]
    compute = {}
    memory = {}
    pruned_compute = []
    pruned_memory = []
    for (group_name, _members), g_full, g_pruned in zip(
        BLOCK_GROUPS, full.groups, pruned.groups
    ):
        compute[group_name] = g_full.compute_time_s * compute_scale
        memory[group_name] = g_full.memory_gb * memory_scale
        if g_full.compute_time_s > 0:
            pruned_compute.append(g_pruned.compute_time_s / g_full.compute_time_s)
        if g_full.memory_gb > 0:
            pruned_memory.append(g_pruned.memory_gb / g_full.memory_gb)
    accuracy = {
        name: pc.accuracy
        for name, pc in profiled.items()
        if pc.precision == "fp32"
    }
    training = {
        name: sum(g.training_cost_s for g in pc.groups)
        for name, pc in profiled.items()
        if pc.precision == "fp32"
    }
    basis = CostBasis(
        compute_s=compute,
        memory_gb=memory,
        accuracy=accuracy,
        training_cost_s=training,
        pruned_compute_factor=float(np.mean(pruned_compute)) if pruned_compute else 0.2,
        pruned_memory_factor=float(np.mean(pruned_memory)) if pruned_memory else 0.12,
    )
    if include_int8:
        full_int8 = profiled["CONFIG A-int8"]
        c_ratio = full_int8.total_compute_time_s / full.total_compute_time_s
        m_ratio = full_int8.total_memory_gb / full.total_memory_gb
        from dataclasses import replace

        basis = replace(
            basis,
            int8_compute_factor=float(c_ratio),
            int8_memory_factor=float(m_ratio),
            int8_accuracy_drop=max(
                0.0, full.accuracy - full_int8.accuracy
            ),
        )
    return basis


def mobilenet_family_from_profiler(
    family_id: str = "mnv2",
    width_multiplier: float = 1.0,
    input_size: int = 32,
    repeats: int = 3,
    accuracy_offset: float = -0.03,
    seed: int = 0,
) -> DNNFamily:
    """Derive a MobileNetV2 :class:`DNNFamily` by measurement.

    Profiles MobileNetV2 and ResNet-18 on the same input and expresses
    the MobileNet family as compute/memory scales relative to the
    ResNet reference basis — the honest way to add a second
    architecture to the repository ``D`` without inventing numbers.
    ``accuracy_offset`` encodes MobileNetV2's small top-1 gap versus
    ResNet-18 at equal training (the paper's Sec. I comparison).
    """
    from repro.dnn.mobilenet import build_mobilenetv2
    from repro.dnn.profiler import profile_model
    from repro.dnn.resnet import build_resnet18

    mobile = profile_model(
        build_mobilenetv2(
            input_size=input_size, width_multiplier=width_multiplier, seed=seed
        ),
        repeats=repeats,
    )
    resnet = profile_model(
        build_resnet18(input_size=input_size, seed=seed), repeats=repeats
    )
    return DNNFamily(
        family_id=family_id,
        compute_scale=mobile.total_compute_time_s / resnet.total_compute_time_s,
        memory_scale=mobile.total_memory_bytes / resnet.total_memory_bytes,
        accuracy_offset=accuracy_offset,
    )


def _group_state(config: BlockConfig, group: str) -> tuple[bool, bool]:
    """(shared, pruned) status of ``group`` under ``config``."""
    stages = GROUP_STAGES[group]
    shared = (
        not config.from_scratch
        and all(s in config.shared_stages for s in stages)
        and group != "g4"  # the classifier rides with g4 and is never shared
    )
    pruned = config.pruned and all(s in config.prunable_blocks for s in stages)
    return shared, pruned


@dataclass
class ScenarioCatalogBuilder:
    """Expand a cost basis into a DOT catalog for a set of tasks."""

    basis: CostBasis = field(default_factory=CostBasis)
    families: tuple[DNNFamily, ...] = (DNNFamily("rn18"),)
    config_names: tuple[str, ...] = tuple(sorted(TABLE_I_CONFIGS))
    #: relative jitter applied to task-specific block compute times
    compute_jitter: float = 0.05
    #: absolute jitter applied to per-task path accuracy
    accuracy_jitter: float = 0.01
    #: per-CV-method cost/accuracy reshaping (keyed by Task.method);
    #: unknown methods fall back to the classification profile
    method_profiles: dict[str, MethodProfile] = field(
        default_factory=lambda: dict(METHOD_PROFILES)
    )
    #: also emit an int8-quantized variant of every path ("<name>-int8"):
    #: cheaper compute, 4x-ish smaller memory, small accuracy drop, and
    #: a *separate* shared-trunk namespace (int8 blocks only share with
    #: int8 blocks) — quantization as one more solver-visible dimension
    quantized_variants: bool = False
    seed: int = 0

    def _method_profile(self, task: Task) -> MethodProfile:
        return self.method_profiles.get(
            task.method, METHOD_PROFILES["classification"]
        )

    def build(self, tasks: tuple[Task, ...], quality: QualityLevel) -> Catalog:
        """Create the catalog: ``len(config_names)`` paths per family per task."""
        rng = np.random.default_rng(self.seed)
        catalog = Catalog()
        precisions = ("fp32", "int8") if self.quantized_variants else ("fp32",)
        # shared blocks are created once per family (and precision) and
        # reused verbatim
        shared_blocks: dict[tuple[str, str, str], Block] = {}
        for family in self.families:
            for precision in precisions:
                int8 = precision == "int8"
                base = f"{family.family_id}:base" + (":int8" if int8 else "")
                for group in GROUP_NAMES:
                    shared_blocks[(family.family_id, precision, group)] = Block(
                        block_id=f"{base}:{group}",
                        dnn_id=base,
                        compute_time_s=self.basis.group_compute(
                            group, pruned=False, int8=int8
                        )
                        * family.compute_scale,
                        memory_gb=self.basis.group_memory(
                            group, pruned=False, int8=int8
                        )
                        * family.memory_scale,
                        training_cost_s=0.0,
                    )
        for task in tasks:
            for family in self.families:
                for name in self.config_names:
                    config = TABLE_I_CONFIGS[name]
                    for precision in precisions:
                        path = self._build_path(
                            task,
                            family,
                            name,
                            config,
                            quality,
                            shared_blocks,
                            rng,
                            precision,
                        )
                        catalog.add_path(path)
        return catalog

    def _build_path(
        self,
        task: Task,
        family: DNNFamily,
        config_name: str,
        config: BlockConfig,
        quality: QualityLevel,
        shared_blocks: dict[tuple[str, str, str], Block],
        rng: np.random.Generator,
        precision: str = "fp32",
    ) -> Path:
        int8 = precision == "int8"
        variant = f"{config_name}-int8" if int8 else config_name
        dnn_id = f"{family.family_id}:task{task.task_id}:{variant}"
        method = self._method_profile(task)
        blocks: list[Block] = []
        # training happens in fp32 before post-training quantization, so
        # int8 variants pay the same fine-tuning cost
        total_training = self.basis.training_cost_s[config_name]
        # split the configuration's training cost across fine-tuned groups
        fine_groups = [
            g for g in GROUP_NAMES if not _group_state(config, g)[0]
        ]
        per_group_training = total_training / len(fine_groups) if fine_groups else 0.0
        for group in GROUP_NAMES:
            shared, pruned = _group_state(config, group)
            if shared:
                # shared backbone blocks are method agnostic (low-level
                # features transfer across CV methods), so they keep the
                # family cost and stay shareable across methods
                blocks.append(shared_blocks[(family.family_id, precision, group)])
                continue
            jitter = 1.0 + rng.uniform(-self.compute_jitter, self.compute_jitter)
            blocks.append(
                Block(
                    block_id=f"{dnn_id}:{group}",
                    dnn_id=dnn_id,
                    compute_time_s=self.basis.group_compute(group, pruned, int8=int8)
                    * family.compute_scale
                    * method.compute_scale
                    * jitter,
                    memory_gb=self.basis.group_memory(group, pruned, int8=int8)
                    * family.memory_scale
                    * method.memory_scale,
                    training_cost_s=per_group_training,
                )
            )
        accuracy = (
            self.basis.accuracy[config_name]
            + family.accuracy_offset
            + method.accuracy_offset
            + rng.uniform(-self.accuracy_jitter, self.accuracy_jitter)
        )
        if int8:
            accuracy -= self.basis.int8_accuracy_drop
        return Path(
            path_id=f"{dnn_id}",
            dnn_id=dnn_id,
            task_id=task.task_id,
            blocks=tuple(blocks),
            accuracy=float(np.clip(accuracy, 0.0, 1.0)),
            quality=quality,
        )
