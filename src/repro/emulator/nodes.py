"""Emulated network nodes: UEs and the edge server.

A :class:`UserEquipment` generates inference frames at the rate granted
by its admission ticket (step 7 of the Fig. 4 workflow) and records the
completion of each frame.  The :class:`EdgeServer` executes the
selected DNN path for each arriving frame on a FIFO GPU queue whose
service time is the path's measured compute time ``Σ c(s)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.catalog import Path
from repro.edge.controller import AdmissionTicket
from repro.emulator.lte import LteCell
from repro.emulator.simulator import Simulator
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["BusyTracker", "FrameRecord", "EdgeServer", "UserEquipment"]


@dataclass
class BusyTracker:
    """Merged busy-interval accounting, clamped to a query window.

    Service intervals on a FIFO resource are non-overlapping and start
    in nondecreasing order, so adjacent intervals coalesce into few
    contiguous busy periods.  ``within(duration_s)`` counts only the
    busy time inside ``[0, duration_s]`` — the fix for utilization
    reporting > 1.0 when the last service extends past the measured run
    horizon.  The cluster layer's per-node gauges
    (:mod:`repro.cluster.qos`) reuse this accounting.
    """

    #: merged (start, finish) busy periods, ascending and disjoint
    periods: list[tuple[float, float]] = field(default_factory=list)
    total_s: float = 0.0

    def add(self, start: float, finish: float) -> None:
        if finish < start:
            raise ValueError("finish must be >= start")
        self.total_s += finish - start
        if self.periods:
            last_start, last_finish = self.periods[-1]
            if start <= last_finish + 1e-12:  # contiguous service: coalesce
                self.periods[-1] = (last_start, max(last_finish, finish))
                return
        self.periods.append((start, finish))

    def within(self, duration_s: float) -> float:
        """Busy seconds that fall inside the window ``[0, duration_s]``."""
        return sum(
            max(0.0, min(finish, duration_s) - min(start, duration_s))
            for start, finish in self.periods
        )

    def clear(self) -> None:
        self.periods.clear()
        self.total_s = 0.0


@dataclass
class FrameRecord:
    """Lifecycle timestamps of one offloaded frame."""

    task_id: int
    frame_id: int
    created_at: float
    uplink_done_at: float = float("nan")
    #: when the GPU actually started serving (end of FIFO queue wait)
    service_started_at: float = float("nan")
    compute_done_at: float = float("nan")
    completed_at: float = float("nan")

    @property
    def end_to_end_latency(self) -> float:
        return self.completed_at - self.created_at


@dataclass
class EdgeServer:
    """FIFO GPU queue executing DNN paths for offloaded frames."""

    simulator: Simulator
    #: small fixed result-return time (tiny payload on the downlink)
    result_return_s: float = 0.002
    #: multiplicative jitter applied to each service time
    compute_jitter: float = 0.05
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    #: DES-clock tracer; one span set per completed frame when enabled
    tracer: Tracer | NullTracer = NULL_TRACER
    _busy_until: float = 0.0
    #: busy-interval accounting (clamped utilization, cluster gauges)
    busy: BusyTracker = field(default_factory=BusyTracker)
    completed: list[FrameRecord] = field(default_factory=list)

    def submit(self, record: FrameRecord, path: Path) -> None:
        """A frame arrived at the server; queue it on the GPU."""
        service = path.compute_time_s
        if self.compute_jitter > 0:
            service *= 1.0 + float(
                self.rng.uniform(-self.compute_jitter, self.compute_jitter)
            )
        start = max(self.simulator.now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self.busy.add(start, finish)
        record.service_started_at = start
        record.compute_done_at = finish
        record.completed_at = finish + self.result_return_s

        def complete() -> None:
            self.completed.append(record)
            if self.tracer.enabled:
                self._record_frame_spans(record)

        self.simulator.schedule_at(record.completed_at, complete)

    def _record_frame_spans(self, record: FrameRecord) -> None:
        """Emit the frame's stage spans (uplink slice → GPU queue →
        GPU execute → result return) nested under one parent span."""
        track = f"task{record.task_id}.frame{record.frame_id}"
        stages = (
            ("frame", record.created_at, record.completed_at),
            ("uplink", record.created_at, record.uplink_done_at),
            ("gpu_queue", record.uplink_done_at, record.service_started_at),
            ("gpu_execute", record.service_started_at, record.compute_done_at),
            ("return", record.compute_done_at, record.completed_at),
        )
        for name, begin, end in stages:
            self.tracer.record(
                name,
                begin,
                end - begin,
                cat="emulator",
                track=track,
                args=(
                    {"task": record.task_id, "frame": record.frame_id}
                    if name == "frame"
                    else None
                ),
            )

    @property
    def utilization_busy_until(self) -> float:
        return self._busy_until

    @property
    def busy_time_s(self) -> float:
        """Accumulated GPU service time (unclamped total)."""
        return self.busy.total_s

    def utilization(self, duration_s: float) -> float:
        """Fraction of ``duration_s`` the GPU spent serving frames.

        Busy time is clamped to the measured window: a service interval
        whose tail extends past the run horizon only contributes the
        part inside ``[0, duration_s]``, so the ratio never exceeds 1.0
        by construction (the ``min`` stays as a float-safety belt).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return min(1.0, self.busy.within(duration_s) / duration_s)


@dataclass
class UserEquipment:
    """One mobile device offloading a task at its granted rate."""

    simulator: Simulator
    cell: LteCell
    server: EdgeServer
    ticket: AdmissionTicket
    path: Path
    #: Poisson arrivals if True, deterministic spacing otherwise
    poisson: bool = False
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(1))
    frames_sent: int = 0

    def start(self, until: float, offset: float = 0.0) -> None:
        """Generate frames from t=``offset`` until ``until`` seconds.

        ``offset`` staggers the phases of multiple devices sharing a
        task's slice.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if not self.ticket.admitted or self.ticket.granted_rate <= 0:
            return
        self._schedule_next(offset, until)

    def _interarrival(self) -> float:
        mean = 1.0 / self.ticket.granted_rate
        if self.poisson:
            return float(self.rng.exponential(mean))
        return mean

    def _schedule_next(self, at: float, until: float) -> None:
        if at > until:
            return

        def generate() -> None:
            self._send_frame()
            self._schedule_next(self.simulator.now + self._interarrival(), until)

        self.simulator.schedule_at(at, generate)

    def _send_frame(self) -> None:
        record = FrameRecord(
            task_id=self.ticket.task_id,
            frame_id=self.frames_sent,
            created_at=self.simulator.now,
        )
        self.frames_sent += 1
        bits = self.path.bits_per_image
        delivery = self.cell.enqueue_frame(self.ticket.task_id, bits, self.simulator.now)
        record.uplink_done_at = delivery

        def arrive() -> None:
            self.server.submit(record, self.path)

        self.simulator.schedule_at(delivery, arrive)
