"""LTE cell model for the emulator.

The Colosseum configuration of Sec. V-B: 20 MHz FDD (100 RBs) fully
dedicated to the cell, static 0 dB path loss.  Uplink transmissions are
TTI-granular (1 ms subframes): a frame of ``β`` bits over a slice of
``r`` RBs occupies ``ceil(β / (B·r·TTI)) `` subframes.  Each slice is a
dedicated RB set (SCOPE-style slicing), so transmissions of different
tasks do not contend; frames of the *same* task queue FIFO on their
slice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.radio.slicing import Slice, SliceManager

__all__ = ["TTI_S", "BlockFading", "HarqConfig", "LteCell"]

#: LTE subframe (transmission time interval) in seconds.
TTI_S = 0.001


@dataclass
class BlockFading:
    """Slow block fading: a piecewise-constant per-task throughput factor.

    Every ``coherence_time_s`` the link draws a new log-normal shadowing
    realization (``sigma_db`` standard deviation, capped at the nominal
    rate), modelling the slow channel variations visible in the Fig. 11
    traces.  Deterministic given the seed.
    """

    coherence_time_s: float = 0.5
    sigma_db: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.coherence_time_s <= 0:
            raise ValueError("coherence_time_s must be positive")
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be >= 0")

    def factor(self, task_id: int, now: float) -> float:
        """Throughput multiplier in (0, 1] for the task's link at ``now``."""
        block = int(now / self.coherence_time_s)
        rng = np.random.default_rng((self.seed * 1_000_003 + task_id) * 65_537 + block)
        attenuation_db = abs(float(rng.normal(0.0, self.sigma_db)))
        return float(10.0 ** (-attenuation_db / 10.0))


@dataclass(frozen=True)
class HarqConfig:
    """Hybrid-ARQ retransmission model.

    Each TTI of a frame's transmission fails independently with
    ``tti_error_rate`` (the post-adaptation BLER; LTE link adaptation
    targets ~10%); failed TTIs are retransmitted up to
    ``max_retransmissions`` times each, inflating the airtime.  TTIs
    still failing after the retransmission budget are passed up anyway
    (residual errors are a higher-layer concern here).
    """

    tti_error_rate: float = 0.1
    max_retransmissions: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tti_error_rate < 1.0:
            raise ValueError("tti_error_rate must be in [0, 1)")
        if self.max_retransmissions < 0:
            raise ValueError("max_retransmissions must be >= 0")

    def transmissions_for(self, subframes: int, rng: np.random.Generator) -> int:
        """Total TTIs consumed to deliver ``subframes`` TTIs of data."""
        total = 0
        for _ in range(subframes):
            attempts = 1
            while (
                attempts <= self.max_retransmissions
                and rng.uniform() < self.tti_error_rate
            ):
                attempts += 1
            total += attempts
        return total

    def expected_overhead(self) -> float:
        """Expected airtime inflation factor (>= 1)."""
        p = self.tti_error_rate
        expected = sum(p**k for k in range(self.max_retransmissions + 1))
        return expected


@dataclass
class LteCell:
    """Uplink of an LTE cell with per-task dedicated slices."""

    slice_manager: SliceManager
    #: optional slow-fading process modulating per-slice throughput
    fading: BlockFading | None = None
    #: optional HARQ retransmission model (None = error-free TTIs)
    harq: HarqConfig | None = None
    #: virtual time at which each slice is next free (FIFO per slice)
    _slice_busy_until: dict[int, float] = field(default_factory=dict)
    _harq_rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.harq is not None:
            self._harq_rng = np.random.default_rng(self.harq.seed)

    def transmission_duration(self, task_id: int, bits: float, now: float = 0.0) -> float:
        """Airtime of one frame on the task's slice, TTI-granular."""
        slc: Slice = self.slice_manager.slice_for(task_id)
        throughput = slc.throughput_bps
        if self.fading is not None:
            throughput *= self.fading.factor(task_id, now)
        if throughput <= 0:
            return float("inf")
        subframes = max(1, math.ceil(bits / (throughput * TTI_S) - 1e-12))
        if self.harq is not None:
            assert self._harq_rng is not None
            subframes = self.harq.transmissions_for(subframes, self._harq_rng)
        return subframes * TTI_S

    def enqueue_frame(self, task_id: int, bits: float, now: float) -> float:
        """Admit a frame into the slice queue; returns its delivery time.

        Models FIFO queueing on the slice: a frame starts after the
        previous frame of the same task finishes (frames from multiple
        devices of the same task share the slice).
        """
        start = max(now, self._slice_busy_until.get(task_id, 0.0))
        duration = self.transmission_duration(task_id, bits, now=start)
        finish = start + duration
        self._slice_busy_until[task_id] = finish
        return finish

    def reset(self) -> None:
        self._slice_busy_until.clear()
