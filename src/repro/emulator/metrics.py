"""Latency metrics extracted from emulation runs (Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.emulator.nodes import FrameRecord
from repro.obs.metrics import MetricsRegistry

__all__ = ["moving_average", "LatencyTimeline", "TaskStatistics"]


@dataclass(frozen=True)
class TaskStatistics:
    """Per-task summary of an emulation run.

    Decomposes the end-to-end latency into its uplink (transmission +
    slice queueing) and compute (service + GPU queueing) components,
    and reports goodput and deadline compliance.
    """

    task_id: int
    frames: int
    mean_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    mean_uplink_s: float
    mean_compute_s: float
    goodput_fps: float
    deadline_miss_fraction: float

    @classmethod
    def from_records(
        cls,
        task_id: int,
        records: list[FrameRecord],
        duration_s: float,
        deadline_s: float,
        registry: MetricsRegistry | None = None,
    ) -> "TaskStatistics":
        """Summarize ``records``, feeding a metrics registry on the way.

        The summary is *derived from* registry instruments (histograms
        of the latency decomposition, frame/miss counters), so the
        numbers are bit-identical whether or not a shared ``registry``
        is attached — attaching one just makes the instruments outlive
        this call.
        """
        if registry is None:
            registry = MetricsRegistry()
        prefix = f"emu.task{task_id}"
        latency = registry.histogram(f"{prefix}.latency_s")
        uplink = registry.histogram(f"{prefix}.uplink_s")
        compute = registry.histogram(f"{prefix}.compute_s")
        frames = registry.counter(f"{prefix}.frames")
        misses = registry.counter(f"{prefix}.deadline_misses")
        for r in records:
            e2e = r.end_to_end_latency
            latency.observe(e2e)
            uplink.observe(r.uplink_done_at - r.created_at)
            compute.observe(r.compute_done_at - r.uplink_done_at)
            frames.inc()
            if e2e > deadline_s:
                misses.inc()
        if not records:
            return cls(
                task_id=task_id, frames=0,
                mean_latency_s=float("nan"), p95_latency_s=float("nan"),
                max_latency_s=float("nan"), mean_uplink_s=float("nan"),
                mean_compute_s=float("nan"), goodput_fps=0.0,
                deadline_miss_fraction=float("nan"),
            )
        return cls(
            task_id=task_id,
            frames=latency.count,
            mean_latency_s=latency.mean,
            p95_latency_s=latency.percentile(95),
            max_latency_s=latency.max,
            mean_uplink_s=uplink.mean,
            mean_compute_s=compute.mean,
            goodput_fps=latency.count / duration_s if duration_s > 0 else 0.0,
            deadline_miss_fraction=misses.value / frames.value,
        )


def moving_average(values: np.ndarray, window: int = 3) -> np.ndarray:
    """Trailing moving average (the Fig. 11 smoothing, window 3)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return values
    out = np.empty_like(values)
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        out[i] = values[lo : i + 1].mean()
    return out


@dataclass
class LatencyTimeline:
    """Per-task (time, latency) series from completed frames."""

    records_by_task: dict[int, list[FrameRecord]] = field(default_factory=dict)

    @classmethod
    def from_records(cls, records: list[FrameRecord]) -> "LatencyTimeline":
        timeline = cls()
        for record in sorted(records, key=lambda r: r.completed_at):
            timeline.records_by_task.setdefault(record.task_id, []).append(record)
        return timeline

    def series(self, task_id: int, window: int = 3) -> tuple[np.ndarray, np.ndarray]:
        """(completion times, smoothed end-to-end latencies) for a task."""
        records = self.records_by_task.get(task_id, [])
        times = np.array([r.completed_at for r in records])
        latencies = np.array([r.end_to_end_latency for r in records])
        return times, moving_average(latencies, window)

    def max_latency(self, task_id: int) -> float:
        records = self.records_by_task.get(task_id, [])
        if not records:
            return float("nan")
        return max(r.end_to_end_latency for r in records)

    def mean_latency(self, task_id: int) -> float:
        records = self.records_by_task.get(task_id, [])
        if not records:
            return float("nan")
        return float(np.mean([r.end_to_end_latency for r in records]))

    def violation_fraction(self, task_id: int, limit_s: float, window: int = 3) -> float:
        """Fraction of (smoothed) samples above the latency target."""
        _, smoothed = self.series(task_id, window)
        if len(smoothed) == 0:
            return float("nan")
        return float((smoothed > limit_s).mean())
