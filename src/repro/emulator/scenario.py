"""End-to-end emulation scenarios (the Sec. V-B experiment).

Wires the full stack together: the OffloaDNN controller admits the
small-scale tasks, configures the slices and deployments, and then the
DES runs UEs offloading frames through the LTE cell to the edge GPU —
the software equivalent of the Colosseum run behind Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import DOTProblem, RadioModel
from repro.edge.controller import AdmissionTicket, OffloaDNNController
from repro.edge.resources import Gpu
from repro.edge.vim import VirtualInfrastructureManager
from repro.emulator.lte import LteCell
from repro.emulator.metrics import LatencyTimeline
from repro.emulator.nodes import EdgeServer, UserEquipment
from repro.emulator.simulator import Simulator
from repro.obs import ObsSession, use_tracer
from repro.obs.metrics import MetricsRegistry
from repro.radio.slicing import SliceManager
from repro.workloads.smallscale import SMALL_SCALE, small_scale_problem

__all__ = ["EmulationScenario", "EmulationResult", "run_small_scale_emulation"]


@dataclass
class EmulationResult:
    """Outcome of one emulation run."""

    tickets: dict[int, AdmissionTicket]
    timeline: LatencyTimeline
    duration_s: float
    events_processed: int
    #: fraction of the run the edge GPU spent serving frames
    gpu_utilization: float = 0.0

    def statistics(
        self, problem: DOTProblem, registry: MetricsRegistry | None = None
    ) -> dict[int, "TaskStatistics"]:
        """Per-task summaries (latency decomposition, goodput, misses)."""
        from repro.emulator.metrics import TaskStatistics

        stats = {}
        for task in problem.tasks:
            records = self.timeline.records_by_task.get(task.task_id, [])
            stats[task.task_id] = TaskStatistics.from_records(
                task.task_id,
                records,
                self.duration_s,
                task.max_latency_s,
                registry=registry,
            )
        return stats

    def all_within_limits(self, problem: DOTProblem, window: int = 3) -> bool:
        """Every task's smoothed latency within its ``L_τ`` target."""
        for task in problem.tasks:
            ticket = self.tickets[task.task_id]
            if not ticket.admitted:
                continue
            violations = self.timeline.violation_fraction(
                task.task_id, task.max_latency_s, window
            )
            if not np.isnan(violations) and violations > 0.0:
                return False
        return True


@dataclass
class EmulationScenario:
    """A DOT problem driven through the controller and the DES."""

    problem: DOTProblem
    duration_s: float = 20.0
    poisson_arrivals: bool = False
    compute_jitter: float = 0.05
    #: mobile devices offloading each task (they split the granted rate
    #: and share the task's slice, like the paper's multiple UE SRNs)
    devices_per_task: int = 1
    #: optional slow-fading process on the uplink
    fading: object | None = None
    seed: int = 0
    #: observability session; when set, frame-stage spans land on its
    #: virtual tracer and queue/GPU gauges are sampled on the DES clock
    obs: ObsSession | None = None

    def run(self, solver: object | None = None) -> EmulationResult:
        budgets = self.problem.budgets
        vim = VirtualInfrastructureManager(
            gpus=(
                Gpu(gpu_id=0, vram_gb=budgets.memory_gb, compute_share=budgets.compute_time_s),
            )
        )
        slice_manager = SliceManager(capacity_rbs=budgets.radio_blocks)
        controller = OffloaDNNController(
            vim=vim,
            slice_manager=slice_manager,
            radio=self.problem.radio,
            solver=solver or OffloaDNNSolver(),
            alpha=self.problem.alpha,
            training_budget_s=budgets.training_budget_s,
        )
        if self.obs is not None:
            # solver phases are wall-clock spans read off the
            # thread-local tracer
            with use_tracer(self.obs.wall):
                tickets = controller.handle_admission_requests(
                    self.problem.tasks, self.problem.catalog
                )
        else:
            tickets = controller.handle_admission_requests(
                self.problem.tasks, self.problem.catalog
            )

        if self.devices_per_task < 1:
            raise ValueError("devices_per_task must be >= 1")
        simulator = Simulator()
        obs = self.obs
        if obs is not None:
            obs.bind_virtual_clock(lambda: simulator.now)
        cell = LteCell(slice_manager=slice_manager, fading=self.fading)
        rng = np.random.default_rng(self.seed)
        server = EdgeServer(
            simulator=simulator,
            compute_jitter=self.compute_jitter,
            rng=np.random.default_rng(self.seed + 1),
        )
        if obs is not None:
            server.tracer = obs.virtual
        assert controller.last_solution is not None
        for task in self.problem.tasks:
            ticket = tickets[task.task_id]
            if not ticket.admitted:
                continue
            assignment = controller.last_solution.assignment(task)
            assert assignment.path is not None
            from dataclasses import replace as dc_replace

            for device in range(self.devices_per_task):
                device_ticket = dc_replace(
                    ticket, granted_rate=ticket.granted_rate / self.devices_per_task
                )
                ue = UserEquipment(
                    simulator=simulator,
                    cell=cell,
                    server=server,
                    ticket=device_ticket,
                    path=assignment.path,
                    poisson=self.poisson_arrivals,
                    rng=np.random.default_rng(int(rng.integers(1 << 31)) + device),
                )
                # stagger device start phases so frames interleave on
                # the shared slice rather than arriving in bursts
                offset = (
                    device / (device_ticket.granted_rate * self.devices_per_task)
                    if device_ticket.granted_rate > 0
                    else 0.0
                )
                ue.start(until=self.duration_s, offset=offset)
        if obs is not None:
            sampler = obs.sampler()
            sampler.add_probe("emulator.pending_events", lambda: simulator.pending)
            sampler.add_probe(
                "emulator.gpu_backlog_s",
                lambda: max(0.0, server.utilization_busy_until - simulator.now),
            )
            # stop once only the sampler's own churn would remain
            sampler.attach(simulator, while_fn=lambda: simulator.pending > 0)
        simulator.run()
        timeline = LatencyTimeline.from_records(server.completed)
        return EmulationResult(
            tickets=tickets,
            timeline=timeline,
            duration_s=self.duration_s,
            events_processed=simulator.events_processed,
            gpu_utilization=server.utilization(max(self.duration_s, simulator.now)),
        )


def run_small_scale_emulation(
    num_tasks: int = 5,
    duration_s: float = 20.0,
    radio_blocks: int = 100,
    seed: int = 0,
    obs: ObsSession | None = None,
) -> tuple[DOTProblem, EmulationResult]:
    """The Sec. V-B experiment: small-scale tasks on a 100-RB cell.

    Colosseum dedicates the whole 20 MHz cell (100 RBs) to the
    experiment, so the radio budget is widened accordingly relative to
    the numerical small-scale scenario.
    """
    from dataclasses import replace

    params = replace(SMALL_SCALE, radio_blocks=radio_blocks)
    problem = small_scale_problem(num_tasks, params=params, seed=seed)
    scenario = EmulationScenario(
        problem=problem, duration_s=duration_s, seed=seed, obs=obs
    )
    return problem, scenario.run()
