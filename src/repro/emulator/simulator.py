"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence)
ordered in a heap; callbacks schedule further events.  Determinism
matters because the emulation benches assert reproducible latency
traces.

Cancelled events are purged lazily: :meth:`Event.cancel` notifies the
owning simulator, and once more than half the heap is dead the queue is
compacted in one filter + heapify pass.  Workloads that churn timers
(deadline guards, sampler reschedules) therefore keep the heap bounded
by the *live* event count instead of growing with every cancellation.
Because events are totally ordered by ``(time, sequence)``, compaction
never changes the pop order of the surviving events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """One scheduled callback; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning simulator while the event sits in its heap; cleared on pop
    #: so a late cancel() cannot skew the dead-event counter
    _owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class Simulator:
    """Event loop with virtual time."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = 0
        self._cancelled = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        event = Event(
            time=self.now + delay,
            sequence=self._sequence,
            callback=callback,
            _owner=self,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def _note_cancelled(self) -> None:
        """A queued event died; compact once the heap is mostly dead."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _pop(self) -> Event:
        event = heapq.heappop(self._queue)
        if event.cancelled:
            self._cancelled -= 1
        event._owner = None
        return event

    def run_until(self, end_time: float) -> None:
        """Process events with ``time <= end_time`` in order.

        The virtual clock always advances to ``end_time``, even when
        the queue is empty (or drains early) — callers like the serving
        runtime rely on this to measure a fixed horizon regardless of
        how quiet the run was.  A past ``end_time`` leaves ``now``
        untouched.
        """
        while self._queue and self._queue[0].time <= end_time:
            event = self._pop()
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1
        self.now = max(self.now, end_time)

    def run(self) -> None:
        """Run until the event queue drains."""
        while self._queue:
            event = self._pop()
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1

    @property
    def pending(self) -> int:
        """Live (non-cancelled) scheduled events, in O(1)."""
        return len(self._queue) - self._cancelled
