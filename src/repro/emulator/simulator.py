"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence)
ordered in a heap; callbacks schedule further events.  Determinism
matters because the emulation benches assert reproducible latency
traces.

The heap holds plain ``(time, sequence, event)`` tuples: sequence
numbers are unique, so comparisons resolve on the first two float/int
fields and never fall through to the event object.  That keeps the hot
``heappush``/``heappop`` path free of dataclass rich comparisons, which
matters once the serving data plane pushes 10⁵–10⁶ events per run.

Cancelled events are purged lazily: :meth:`Event.cancel` notifies the
owning simulator, and once more than half the heap is dead the queue is
compacted in one filter + heapify pass.  Workloads that churn timers
(deadline guards, sampler reschedules) therefore keep the heap bounded
by the *live* event count instead of growing with every cancellation.
Because events are totally ordered by ``(time, sequence)``, compaction
never changes the pop order of the surviving events.

With ``recycle_events=True`` the simulator keeps a freelist of fired
:class:`Event` objects and reuses them for subsequent ``schedule``
calls, so a million-event run stops thrashing the allocator.  Only opt
in when no caller retains event handles past their firing (a stale
handle would alias the recycled slot's next occupant); the serving wave
engine qualifies, generic emulation code may not.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


def _noop() -> None:  # pragma: no cover - placeholder for pooled slots
    raise RuntimeError("recycled event fired without a callback")


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning simulator while the event sits in its heap; cleared on pop
    #: so a late cancel() cannot skew the dead-event counter
    _owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class Simulator:
    """Event loop with virtual time."""

    def __init__(self, recycle_events: bool = False) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        self.now = 0.0
        self.events_processed = 0
        self.recycle_events = recycle_events
        self._freelist: list[Event] = []

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        time = self.now + delay
        sequence = self._sequence
        self._sequence += 1
        if self._freelist:
            event = self._freelist.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
            event._owner = self
        else:
            event = Event(
                time=time, sequence=sequence, callback=callback, _owner=self
            )
        heapq.heappush(self._queue, (time, sequence, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def _note_cancelled(self) -> None:
        """A queued event died; compact once the heap is mostly dead."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._queue = [
                entry for entry in self._queue if not entry[2].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _pop(self) -> Event:
        event = heapq.heappop(self._queue)[2]
        if event.cancelled:
            self._cancelled -= 1
        event._owner = None
        return event

    def _recycle(self, event: Event) -> None:
        event.callback = _noop
        self._freelist.append(event)

    def run_until(self, end_time: float) -> None:
        """Process events with ``time <= end_time`` in order.

        The virtual clock always advances to ``end_time``, even when
        the queue is empty (or drains early) — callers like the serving
        runtime rely on this to measure a fixed horizon regardless of
        how quiet the run was.  A past ``end_time`` leaves ``now``
        untouched.
        """
        recycle = self.recycle_events
        while self._queue and self._queue[0][0] <= end_time:
            event = self._pop()
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1
            if recycle:
                self._recycle(event)
        self.now = max(self.now, end_time)

    def run(self) -> None:
        """Run until the event queue drains."""
        recycle = self.recycle_events
        while self._queue:
            event = self._pop()
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1
            if recycle:
                self._recycle(event)

    @property
    def pending(self) -> int:
        """Live (non-cancelled) scheduled events, in O(1)."""
        return len(self._queue) - self._cancelled
