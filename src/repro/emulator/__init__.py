"""Discrete-event network emulator — the Colosseum substitute.

The paper validates OffloaDNN on the Colosseum hardware-in-the-loop
emulator (Sec. V-B): an SRN hosts the vRAN base station, the computing
platform and the controller, while 5 SRNs act as UEs offloading tasks
over an emulated 20 MHz LTE cell (100 RBs, 0 dB path loss).

This package reproduces the experiment in software: a discrete-event
simulator drives UE frame generation at the admitted rates, TTI-granular
uplink transmission over the allocated slices, a FIFO GPU queue
executing the selected DNN paths, and the downlink of results —
producing the Fig. 11 end-to-end-latency-versus-time series.
"""

from repro.emulator.simulator import Simulator, Event
from repro.emulator.lte import LteCell, TTI_S
from repro.emulator.nodes import UserEquipment, EdgeServer, FrameRecord
from repro.emulator.scenario import EmulationScenario, EmulationResult, run_small_scale_emulation
from repro.emulator.metrics import LatencyTimeline, moving_average

__all__ = [
    "Simulator",
    "Event",
    "LteCell",
    "TTI_S",
    "UserEquipment",
    "EdgeServer",
    "FrameRecord",
    "EmulationScenario",
    "EmulationResult",
    "run_small_scale_emulation",
    "LatencyTimeline",
    "moving_average",
]
