"""repro.cluster — multi-node serving fabric.

Node roles and registry, placement of solved DOT allocations onto
nodes, a deterministic activation wire protocol with simulated and real
(asyncio TCP) transports, a cluster-wide batching executor, and per-hop
QoS monitoring through :mod:`repro.obs`.
"""

from repro.cluster.executor import ClusterDeployment, ClusterExecutor
from repro.cluster.node import ClusterNode, NodeSpec
from repro.cluster.orchestrator import ClusterOrchestrator, PlacementPlan, Segment
from repro.cluster.qos import Hop, QosMonitor, record_hop_spans
from repro.cluster.registry import ClusterTopology, NodeRegistry, default_topology
from repro.cluster.stream import LinkSpec, SimulatedLink, StreamRouter
from repro.cluster.wire import (
    WIRE_VERSION,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
    decode_frame,
    encode_frame,
    frame_nbytes,
    header_nbytes,
)

__all__ = [
    "WIRE_VERSION",
    "ClusterDeployment",
    "ClusterExecutor",
    "ClusterNode",
    "ClusterOrchestrator",
    "ClusterTopology",
    "Hop",
    "LinkSpec",
    "NodeRegistry",
    "NodeSpec",
    "PlacementPlan",
    "QosMonitor",
    "Segment",
    "SimulatedLink",
    "StreamRouter",
    "TruncatedFrameError",
    "VersionMismatchError",
    "WireError",
    "decode_frame",
    "default_topology",
    "encode_frame",
    "frame_nbytes",
    "header_nbytes",
    "record_hop_spans",
]
