"""Node registry and cluster topologies.

The :class:`NodeRegistry` is the fabric's membership view: every node's
advertised spec plus its live serving state, and the
:class:`~repro.cluster.stream.StreamRouter` carrying activations
between them.  A :class:`ClusterTopology` is the serializable
description (``nodes.json``) the CLI loads — node specs, explicit
links, and defaults for everything unspecified — with
:func:`default_topology` generating the homogeneous N-node meshes the
benchmarks sweep.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.cluster.node import ClusterNode, NodeSpec
from repro.cluster.stream import LinkSpec, StreamRouter
from repro.core.catalog import Catalog

__all__ = ["ClusterTopology", "NodeRegistry", "default_topology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Serializable cluster description (what ``nodes.json`` holds)."""

    nodes: tuple[NodeSpec, ...]
    links: tuple[LinkSpec, ...] = ()
    default_link: LinkSpec = LinkSpec(src="*", dst="*")
    fp16_activations: bool = False
    #: ship activations as int8 + scale frames (exclusive with fp16)
    int8_activations: bool = False

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a topology needs at least one node")
        if self.fp16_activations and self.int8_activations:
            raise ValueError(
                "fp16_activations and int8_activations are mutually exclusive"
            )
        ids = [spec.node_id for spec in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in topology: {ids}")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ClusterTopology":
        """Read a topology from a ``nodes.json`` file."""
        data = json.loads(pathlib.Path(path).read_text())
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterTopology":
        nodes = tuple(
            NodeSpec(
                node_id=entry["node_id"],
                tier=entry.get("tier", "edge"),
                cpu_scale=float(entry.get("cpu_scale", 1.0)),
                memory_gb=float(entry.get("memory_gb", 8.0)),
                num_workers=int(entry.get("num_workers", 1)),
                resident_blocks=(
                    frozenset(entry["resident_blocks"])
                    if entry.get("resident_blocks") is not None
                    else None
                ),
                failure_rate=float(entry.get("failure_rate", 0.0)),
            )
            for entry in data.get("nodes", [])
        )
        default = dict(data.get("default_link", {}))
        default_link = LinkSpec(src="*", dst="*", **default)
        links = tuple(
            LinkSpec(
                src=entry["src"],
                dst=entry["dst"],
                bandwidth_bps=float(
                    entry.get("bandwidth_bps", default_link.bandwidth_bps)
                ),
                latency_s=float(entry.get("latency_s", default_link.latency_s)),
                stall_rate=float(entry.get("stall_rate", default_link.stall_rate)),
                stall_factor=float(
                    entry.get("stall_factor", default_link.stall_factor)
                ),
            )
            for entry in data.get("links", [])
        )
        return cls(
            nodes=nodes,
            links=links,
            default_link=default_link,
            fp16_activations=bool(data.get("fp16_activations", False)),
            int8_activations=bool(data.get("int8_activations", False)),
        )

    def to_dict(self) -> dict:
        return {
            "nodes": [
                {
                    "node_id": spec.node_id,
                    "tier": spec.tier,
                    "cpu_scale": spec.cpu_scale,
                    "memory_gb": spec.memory_gb,
                    "num_workers": spec.num_workers,
                    "resident_blocks": (
                        sorted(spec.resident_blocks)
                        if spec.resident_blocks is not None
                        else None
                    ),
                    "failure_rate": spec.failure_rate,
                }
                for spec in self.nodes
            ],
            "links": [
                {
                    "src": link.src,
                    "dst": link.dst,
                    "bandwidth_bps": link.bandwidth_bps,
                    "latency_s": link.latency_s,
                    "stall_rate": link.stall_rate,
                    "stall_factor": link.stall_factor,
                }
                for link in self.links
            ],
            "default_link": {
                "bandwidth_bps": self.default_link.bandwidth_bps,
                "latency_s": self.default_link.latency_s,
                "stall_rate": self.default_link.stall_rate,
                "stall_factor": self.default_link.stall_factor,
            },
            "fp16_activations": self.fp16_activations,
            "int8_activations": self.int8_activations,
        }

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def default_topology(
    num_nodes: int,
    cloud: bool = False,
    cpu_scale: float = 1.0,
    num_workers: int = 1,
    bandwidth_bps: float = 1e9,
    latency_s: float = 0.0005,
    fp16_activations: bool = False,
    int8_activations: bool = False,
) -> ClusterTopology:
    """A homogeneous ``num_nodes``-edge mesh, optionally plus a cloud tier.

    The cloud node (``cloud=True``) is faster (4× CPU scale) but
    farther: its links carry 20 ms of latency, the classic edge/cloud
    trade the placement scoring has to weigh.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    specs = [
        NodeSpec(
            node_id=f"edge{i}",
            tier="edge",
            cpu_scale=cpu_scale,
            num_workers=num_workers,
        )
        for i in range(num_nodes)
    ]
    links: list[LinkSpec] = []
    if cloud:
        specs.append(
            NodeSpec(
                node_id="cloud0",
                tier="cloud",
                cpu_scale=4.0 * cpu_scale,
                num_workers=num_workers,
            )
        )
        for i in range(num_nodes):
            for src, dst in ((f"edge{i}", "cloud0"), ("cloud0", f"edge{i}")):
                links.append(
                    LinkSpec(
                        src=src, dst=dst,
                        bandwidth_bps=bandwidth_bps, latency_s=0.020,
                    )
                )
    return ClusterTopology(
        nodes=tuple(specs),
        links=tuple(links),
        default_link=LinkSpec(
            src="*", dst="*", bandwidth_bps=bandwidth_bps, latency_s=latency_s
        ),
        fp16_activations=fp16_activations,
        int8_activations=int8_activations,
    )


@dataclass
class NodeRegistry:
    """Membership + live state of every node in the fabric."""

    nodes: dict[str, ClusterNode] = field(default_factory=dict)
    router: StreamRouter = field(default_factory=StreamRouter)

    @classmethod
    def from_topology(cls, topology: ClusterTopology) -> "NodeRegistry":
        registry = cls()
        for spec in topology.nodes:
            registry.register(spec)
        registry.router.default_spec = topology.default_link
        registry.router.fp16_activations = topology.fp16_activations
        registry.router.int8_activations = topology.int8_activations
        for link in topology.links:
            registry.router.add_link(link)
        return registry

    def register(self, spec: NodeSpec) -> ClusterNode:
        if spec.node_id in self.nodes:
            raise ValueError(f"node {spec.node_id!r} already registered")
        node = ClusterNode(spec=spec)
        self.nodes[spec.node_id] = node
        return node

    def node(self, node_id: str) -> ClusterNode:
        return self.nodes[node_id]

    def ordered_nodes(self) -> list[ClusterNode]:
        """Deterministic placement order: edge tier first, then by id."""
        return sorted(
            self.nodes.values(), key=lambda n: (n.spec.tier != "edge", n.node_id)
        )

    def eligible_nodes(self, block_ids) -> list[ClusterNode]:
        """Nodes hosting every block in ``block_ids`` (placement targets)."""
        block_ids = tuple(block_ids)
        return [n for n in self.ordered_nodes() if n.spec.hosts(block_ids)]

    def least_loaded(
        self, block_ids, exclude: str | None = None
    ) -> ClusterNode | None:
        """The eligible node whose earliest worker frees first.

        This is the retry target for a failed segment dispatch: ties
        break on node id so re-dispatch is deterministic.
        """
        candidates = [
            n
            for n in self.eligible_nodes(block_ids)
            if n.node_id != exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (n.earliest_free_at, n.node_id))

    def validate_residency(self, catalog: Catalog) -> None:
        """Check advertised blocks exist and fit each node's memory."""
        blocks = catalog.all_blocks()
        for node in self.nodes.values():
            resident = node.spec.resident_blocks
            if resident is None:
                continue
            unknown = sorted(bid for bid in resident if bid not in blocks)
            if unknown:
                raise ValueError(
                    f"node {node.node_id!r} advertises unknown blocks {unknown}"
                )
            required = sum(blocks[bid].memory_gb for bid in resident)
            if required > node.spec.memory_gb + 1e-9:
                raise ValueError(
                    f"node {node.node_id!r} advertises {required:.2f} GB of "
                    f"resident blocks but has {node.spec.memory_gb:.2f} GB"
                )

    def advertisements(self, now: float = 0.0) -> list[dict]:
        """What each node currently advertises (capacity, blocks, queue)."""
        return [
            {
                "node_id": node.node_id,
                "tier": node.spec.tier,
                "cpu_scale": node.spec.cpu_scale,
                "num_workers": node.spec.num_workers,
                "resident_blocks": (
                    sorted(node.spec.resident_blocks)
                    if node.spec.resident_blocks is not None
                    else "all"
                ),
                "queue_depth": node.busy_workers(now),
                "busy_until": node.busy_until,
            }
            for node in self.ordered_nodes()
        ]

    def reset(self) -> None:
        """Clear all serving-time state (called at the top of each run)."""
        for node in self.nodes.values():
            node.reset()
        self.router.reset()
