"""Cluster executor: batching windows across placed segments.

Drop-in replacement for the single-node
:class:`~repro.serving.executor.BatchExecutor` inside
:class:`~repro.serving.runtime.ServingRuntime`: same
``dispatch(window, now) -> WindowReport`` contract, but each window is
driven through the :class:`~repro.cluster.orchestrator.PlacementPlan`:

1. **Hop 0** — requests whose first segments are co-placed on one node
   execute as a single fused batch through the shared-prefix trie (the
   same sub-linear cost model and trie as the single-node executor, so
   a one-node cluster reproduces ``BatchExecutor`` timing exactly).
2. **Streaming** — each task batch's boundary activation travels as one
   wire frame (batch on the leading axis) over the simulated link; link
   occupancy is FIFO and deterministic.
3. **Later hops** — per-task batches queue on their segment's node
   (earliest-free worker) and execute at that node's CPU scale.

**Failure semantics** (fault injection, seeded and deterministic):
every segment dispatch draws against the target node's
``failure_rate``; a failed dispatch is retried once on the
next-least-loaded node hosting the segment's blocks, and a second
failure drops the batch with ``DropReason.REMOTE_ERROR``.  A transfer
that stalls past ``transfer_timeout_s`` is retried once on the same
link; a second stall drops the batch with
``DropReason.TRANSFER_TIMEOUT``.  Draws model per-dispatch RPC
outcomes, not node crashes — the same node may serve another window in
the same tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.orchestrator import ClusterOrchestrator, PlacementPlan, Segment
from repro.cluster.qos import Hop, QosMonitor
from repro.cluster.registry import ClusterTopology, NodeRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.serving.executor import WindowReport, _window_costs
from repro.serving.queueing import DropReason, ServingRequest

__all__ = ["ClusterDeployment", "ClusterExecutor"]


@dataclass
class ClusterDeployment:
    """A placed allocation: registry + plan + fabric-level knobs."""

    registry: NodeRegistry
    plan: PlacementPlan
    #: sender-side stall detection threshold for one transfer
    transfer_timeout_s: float = 0.05
    #: fixed latency of re-dispatching a failed segment
    retry_penalty_s: float = 0.002

    @classmethod
    def place(
        cls,
        problem,
        solution,
        tickets: dict[int, object],
        topology: ClusterTopology,
        orchestrator: ClusterOrchestrator | None = None,
        **knobs,
    ) -> "ClusterDeployment":
        """Build a registry from ``topology`` and place the allocation."""
        registry = NodeRegistry.from_topology(topology)
        registry.validate_residency(problem.catalog)
        orchestrator = orchestrator or ClusterOrchestrator(registry=registry)
        orchestrator.registry = registry
        plan = orchestrator.place(problem, solution, tickets)
        return cls(registry=registry, plan=plan, **knobs)

    def reset(self) -> None:
        self.registry.reset()


@dataclass
class ClusterExecutor:
    """Executes batching windows across the deployment's nodes."""

    deployment: ClusterDeployment
    batch_efficiency: float = 0.5
    prefix_cache: bool = True
    seed: int = 0
    tracer: Tracer | NullTracer = NULL_TRACER
    qos: QosMonitor = field(init=False)
    windows: list[WindowReport] = field(default_factory=list)
    total_compute_s: float = 0.0
    compute_saved_s: float = 0.0
    prefix_merges: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.batch_efficiency <= 1.0:
            raise ValueError("batch_efficiency must be in [0, 1]")
        self.qos = QosMonitor(registry=self.deployment.registry)
        self._rng = np.random.default_rng(self.seed * 9176 + 13)

    # -- node/link helpers -------------------------------------------------

    def _draw_fails(self, rate: float) -> bool:
        return rate > 0.0 and bool(self._rng.random() < rate)

    def _resolve_node(self, segment: Segment, now: float):
        """Pick the executing node for one segment dispatch.

        Returns ``(node, start_delay)`` or ``(None, drop_time_delay)``
        when both the placed node and its retry target fail.
        """
        registry = self.deployment.registry
        node = registry.node(segment.node_id)
        if not self._draw_fails(node.spec.failure_rate):
            return node, 0.0
        node.dispatch_failures += 1
        fallback = registry.least_loaded(
            segment.block_ids(), exclude=segment.node_id
        )
        penalty = self.deployment.retry_penalty_s
        if fallback is not None and not self._draw_fails(
            fallback.spec.failure_rate
        ):
            return fallback, penalty
        if fallback is not None:
            fallback.dispatch_failures += 1
        return None, penalty

    def _transfer(
        self, src: str, dst: str, payload_bits: float, now: float
    ) -> tuple[float | None, int, list[Hop]]:
        """One (possibly retried) activation stream over a link.

        Returns ``(delivery_or_None, nbytes, hops)``; ``None`` delivery
        means both attempts stalled past the timeout and the batch is
        dropped with ``TRANSFER_TIMEOUT``.
        """
        router = self.deployment.registry.router
        timeout = self.deployment.transfer_timeout_s
        hops: list[Hop] = []
        at = now
        for attempt in range(2):
            delivery, stalled, nbytes = router.transfer_bits(
                src, dst, payload_bits, at, rng=self._rng
            )
            if not stalled or delivery - at <= timeout:
                hops.append(Hop("transfer", f"{src}->{dst}", at, delivery, nbytes))
                return delivery, nbytes, hops
            # sender notices the stall at its timeout and (once) retries
            hops.append(Hop("retry", f"{src}->{dst}", at, at + timeout, nbytes))
            at = at + timeout
        return None, 0, hops

    def _drop_batch(
        self, batch: list[ServingRequest], reason: DropReason, at: float
    ) -> None:
        for request in batch:
            request.drop_reason = reason
            if self.tracer.enabled:
                self.tracer.event_at(
                    f"drop.{reason.value}",
                    at,
                    cat="cluster",
                    track=f"task{request.task_id}",
                    args={"request": request.request_id},
                )

    # -- the window pipeline ----------------------------------------------

    def dispatch(self, requests: list[ServingRequest], now: float) -> WindowReport:
        """Run one batching window through the placed segments."""
        if not requests:
            raise ValueError("cannot dispatch an empty window")
        plan = self.deployment.plan
        groups: dict[int, list[ServingRequest]] = {}
        for request in requests:
            groups.setdefault(request.task_id, []).append(request)

        # resolve hop-0 nodes first (failure draws in task order), then
        # fuse co-placed first segments into one batch per node
        resolved: dict[int, tuple] = {}
        window_start = None
        window_end = now
        compute = 0.0
        unshared = 0.0
        merges = 0
        for task_id in sorted(groups):
            segments = plan.segments(task_id)
            node, delay = self._resolve_node(segments[0], now)
            if node is None:
                drop_at = now + delay
                self._drop_batch(groups[task_id], DropReason.REMOTE_ERROR, drop_at)
                window_end = max(window_end, drop_at)
                continue
            resolved[task_id] = (node, delay, segments)

        by_node: dict[str, list[int]] = {}
        for task_id, (node, _delay, _segments) in resolved.items():
            by_node.setdefault(node.node_id, []).append(task_id)

        cursor: dict[int, float] = {}  # task -> time its batch reaches hop 1
        for node_id in sorted(by_node):
            node = self.deployment.registry.node(node_id)
            batch = [r for tid in by_node[node_id] for r in groups[tid]]
            segment_of = {
                tid: resolved[tid][2][0] for tid in by_node[node_id]
            }
            blocks_for = lambda r, seg=segment_of: seg[r.task_id].blocks  # noqa: E731
            merged, unmerged, node_merges = _window_costs(
                batch, self.batch_efficiency, blocks_for=blocks_for
            )
            merged, unmerged = node.scaled_cost(merged), node.scaled_cost(unmerged)
            cost = merged if self.prefix_cache else unmerged
            ready = now + max(resolved[tid][1] for tid in by_node[node_id])
            start, finish = node.execute(cost, ready)
            compute += cost
            unshared += unmerged
            if self.prefix_cache:
                merges += node_merges
            window_start = start if window_start is None else min(window_start, start)
            share = cost / len(batch)
            for request in batch:
                request.started_at = start
                request.compute_time_s = share
                hops = [Hop("queue", node_id, now, start), Hop("exec", node_id, start, finish)]
                request.hops = hops
            for tid in by_node[node_id]:
                cursor[tid] = finish

        # later hops: per-task batches stream and execute independently
        for task_id in sorted(resolved):
            node, _delay, segments = resolved[task_id]
            batch = groups[task_id]
            at = cursor[task_id]
            prev_node_id = node.node_id
            dropped = False
            for seg_index, segment in enumerate(segments[1:], start=1):
                # batch travels as one frame: batch axis on the payload
                payload_bits = segments[seg_index - 1].egress_bits * len(batch)
                delivery, _nbytes, hops = self._transfer(
                    prev_node_id, segment.node_id, payload_bits, at
                )
                for request in batch:
                    request.hops.extend(hops)
                if delivery is None:
                    drop_at = at + 2 * self.deployment.transfer_timeout_s
                    self._drop_batch(batch, DropReason.TRANSFER_TIMEOUT, drop_at)
                    window_end = max(window_end, drop_at)
                    dropped = True
                    break
                exec_node, delay = self._resolve_node(segment, delivery)
                if exec_node is None:
                    drop_at = delivery + delay
                    self._drop_batch(batch, DropReason.REMOTE_ERROR, drop_at)
                    window_end = max(window_end, drop_at)
                    dropped = True
                    break
                cost = exec_node.scaled_cost(
                    sum(
                        b.compute_time_s
                        * (1.0 + (len(batch) - 1) * self.batch_efficiency)
                        for b in segment.blocks
                    )
                )
                start, finish = exec_node.execute(cost, delivery + delay)
                compute += cost
                unshared += cost
                share = cost / len(batch)
                for request in batch:
                    request.compute_time_s += share
                    if start > delivery + delay:
                        request.hops.append(
                            Hop("queue", exec_node.node_id, delivery + delay, start)
                        )
                    request.hops.append(
                        Hop("exec", exec_node.node_id, start, finish)
                    )
                prev_node_id = exec_node.node_id
                at = finish
            if not dropped:
                for request in batch:
                    request.service_done_at = at
                window_end = max(window_end, at)
            self.qos.observe_hops(batch[0].hops if batch else [])

        report = WindowReport(
            requests=len(requests),
            compute_s=compute,
            unshared_compute_s=unshared,
            prefix_merges=merges if self.prefix_cache else 0,
            started_at=window_start if window_start is not None else now,
            finished_at=window_end,
        )
        self.windows.append(report)
        self.total_compute_s += compute
        if self.prefix_cache:
            self.compute_saved_s += report.saved_s
            self.prefix_merges += merges
        if self.tracer.enabled:
            self.tracer.record(
                "window",
                report.started_at,
                report.finished_at - report.started_at,
                cat="executor",
                track="cluster",
                args={
                    "requests": len(requests),
                    "merges": report.prefix_merges,
                    "saved_s": report.saved_s,
                },
            )
        return report

    def busy_workers(self, now: float) -> int:
        """Workers mid-segment across all nodes (sampler probe)."""
        return sum(
            node.busy_workers(now)
            for node in self.deployment.registry.nodes.values()
        )

    @property
    def busy_until(self) -> float:
        return max(
            (n.busy_until for n in self.deployment.registry.nodes.values()),
            default=0.0,
        )
