"""Placement orchestrator: mapping a solved DOT allocation onto nodes.

The DOT solver decides *what* serves each task (path, admission ratio,
radio blocks); the orchestrator decides *where*.  For every admitted
task it splits the path's block sequence into contiguous per-node
segments — the split point is a placement decision, not a property of
the path — and scores candidate placements on:

* **execution time** — ``Σ c(s) / cpu_scale`` per segment;
* **transfer time** — wire-encoded activation bytes over the link
  between consecutive segments (plus link latency);
* **congestion** — the projected per-worker load each involved node
  would carry after taking the segment (offered rate × scaled compute);
* **sharing** — a bonus for co-placing a task's leading blocks on a
  node that already hosts those block ids, preserving the shared-trunk
  prefix fusion the single-node executor exploits.

The activation shipped across a split after block ``i`` is modeled as
``bits_per_image · decay^(i+1)`` (activations shrink as the network
downsamples; ``decay`` is a topology-level knob), floored at
``MIN_ACTIVATION_BITS``.  Splitting after block 0 therefore lays the
exact groundwork for a future *device-side* prefix: the boundary
tensor a device would upload instead of the raw image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.registry import NodeRegistry
from repro.core.catalog import Block, Path
from repro.core.problem import DOTProblem
from repro.core.solution import DOTSolution

__all__ = ["Segment", "PlacementPlan", "ClusterOrchestrator"]

#: floor on the modeled activation size at any split boundary
MIN_ACTIVATION_BITS = 8_000.0


@dataclass(frozen=True)
class Segment:
    """A contiguous run of one path's blocks executing on one node."""

    node_id: str
    blocks: tuple[Block, ...]
    #: bits of activation streamed to the next segment (0 for the last)
    egress_bits: float = 0.0

    @property
    def compute_time_s(self) -> float:
        """Profiled (unscaled) compute of the segment's blocks."""
        return sum(b.compute_time_s for b in self.blocks)

    def block_ids(self) -> tuple[str, ...]:
        return tuple(b.block_id for b in self.blocks)


@dataclass
class PlacementPlan:
    """Where every admitted task's path executes."""

    segments_by_task: dict[int, tuple[Segment, ...]] = field(default_factory=dict)

    def segments(self, task_id: int) -> tuple[Segment, ...]:
        return self.segments_by_task[task_id]

    def nodes_used(self) -> frozenset[str]:
        return frozenset(
            seg.node_id
            for segments in self.segments_by_task.values()
            for seg in segments
        )

    @property
    def split_tasks(self) -> int:
        """Tasks whose path crosses at least one link."""
        return sum(
            1 for segs in self.segments_by_task.values() if len(segs) > 1
        )

    def describe(self) -> list[dict]:
        return [
            {
                "task": task_id,
                "segments": [
                    {
                        "node": seg.node_id,
                        "blocks": list(seg.block_ids()),
                        "egress_bits": seg.egress_bits,
                    }
                    for seg in segments
                ],
            }
            for task_id, segments in sorted(self.segments_by_task.items())
        ]


def activation_bits_after(path: Path, index: int, decay: float) -> float:
    """Modeled activation size at the boundary after block ``index``."""
    bits = path.bits_per_image * decay ** (index + 1)
    return max(MIN_ACTIVATION_BITS, bits)


@dataclass
class ClusterOrchestrator:
    """Places a solved allocation's paths onto the registered nodes."""

    registry: NodeRegistry
    #: maximum segments one path may be split into (1 = never split)
    max_segments: int = 2
    #: per-boundary activation shrink factor (see module docstring)
    activation_decay: float = 0.5
    #: weight of projected per-worker congestion in the placement score
    congestion_weight: float = 0.5
    #: bonus per profiled second of leading blocks already co-placed
    sharing_weight: float = 0.25

    def __post_init__(self) -> None:
        if self.max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if not 0.0 < self.activation_decay <= 1.0:
            raise ValueError("activation_decay must be in (0, 1]")

    def place(
        self,
        problem: DOTProblem,
        solution: DOTSolution,
        tickets: dict[int, object],
    ) -> PlacementPlan:
        """Greedy load-aware placement of every admitted task.

        Tasks are placed in task-id order (deterministic); each
        placement updates the projected per-node load the next task is
        scored against.
        """
        plan = PlacementPlan()
        #: projected busy seconds per second of wall time, per node
        loads: dict[str, float] = {n: 0.0 for n in self.registry.nodes}
        #: block ids already placed per node (for the sharing bonus)
        placed_blocks: dict[str, set[str]] = {n: set() for n in self.registry.nodes}
        for task in sorted(problem.tasks, key=lambda t: t.task_id):
            ticket = tickets.get(task.task_id)
            if ticket is None or not ticket.admitted:
                continue
            assignment = solution.assignment(task)
            if assignment.path is None:
                continue
            rate = max(0.0, ticket.granted_rate)
            segments = self._place_one(assignment.path, rate, loads, placed_blocks)
            plan.segments_by_task[task.task_id] = segments
        return plan

    # -- internals ---------------------------------------------------------

    def _candidates(self, path: Path) -> list[tuple[Segment, ...]]:
        """Every placement considered for one path.

        Single-node placements on each eligible node, plus (when the
        fabric has more than one node and ``max_segments >= 2``) every
        two-segment split at every block boundary across eligible node
        pairs.  Paths are short (Table I configs have ~4 blocks) and
        fabrics small, so exhaustive scoring stays cheap.
        """
        blocks = path.blocks
        candidates: list[tuple[Segment, ...]] = []
        for node in self.registry.eligible_nodes(b.block_id for b in blocks):
            candidates.append((Segment(node_id=node.node_id, blocks=blocks),))
        if self.max_segments < 2 or len(self.registry.nodes) < 2:
            return candidates
        for split in range(1, len(blocks)):
            head, tail = blocks[:split], blocks[split:]
            egress = activation_bits_after(path, split - 1, self.activation_decay)
            heads = self.registry.eligible_nodes(b.block_id for b in head)
            tails = self.registry.eligible_nodes(b.block_id for b in tail)
            for head_node in heads:
                for tail_node in tails:
                    if head_node.node_id == tail_node.node_id:
                        continue
                    candidates.append(
                        (
                            Segment(
                                node_id=head_node.node_id,
                                blocks=head,
                                egress_bits=egress,
                            ),
                            Segment(node_id=tail_node.node_id, blocks=tail),
                        )
                    )
        return candidates

    def _score(
        self,
        segments: tuple[Segment, ...],
        rate: float,
        loads: dict[str, float],
        placed_blocks: dict[str, set[str]],
    ) -> float:
        """Estimated per-request latency plus congestion penalty."""
        latency = 0.0
        congestion = 0.0
        for i, seg in enumerate(segments):
            node = self.registry.node(seg.node_id)
            exec_s = node.scaled_cost(seg.compute_time_s)
            latency += exec_s
            projected = loads[seg.node_id] + rate * exec_s
            congestion = max(
                congestion, projected / node.spec.num_workers
            )
            if i + 1 < len(segments):
                link = self.registry.router.link(
                    seg.node_id, segments[i + 1].node_id
                )
                # payload-only estimate; header bytes are negligible here
                latency += link.duration(int(seg.egress_bits / 8.0))
        sharing = 0.0
        first = segments[0]
        already = placed_blocks[first.node_id]
        for block in first.blocks:
            if block.block_id not in already:
                break
            sharing += block.compute_time_s
        return (
            latency
            + self.congestion_weight * congestion
            - self.sharing_weight * sharing
        )

    def _place_one(
        self,
        path: Path,
        rate: float,
        loads: dict[str, float],
        placed_blocks: dict[str, set[str]],
    ) -> tuple[Segment, ...]:
        candidates = self._candidates(path)
        if not candidates:
            raise ValueError(
                f"no node hosts the blocks of path {path.path_id!r}; "
                "check resident_blocks in the topology"
            )
        best = min(
            candidates,
            key=lambda segs: (
                self._score(segs, rate, loads, placed_blocks),
                len(segs),
                tuple(seg.node_id for seg in segs),
            ),
        )
        for seg in best:
            node = self.registry.node(seg.node_id)
            loads[seg.node_id] += rate * node.scaled_cost(seg.compute_time_s)
            placed_blocks[seg.node_id].update(seg.block_ids())
        return best
