"""Activation streams: simulated links and a real asyncio transport.

The :class:`StreamRouter` moves encoded activation frames between
nodes.  Two carriers implement the same framing (:mod:`repro.cluster.
wire`):

* :class:`SimulatedLink` — the default.  DES-timed and deterministic:
  a transfer occupies the link FIFO for ``latency + bytes·8/bandwidth``
  seconds, with an optional seeded stall process for fault-injection
  (a stalled transfer takes ``stall_factor×`` longer, which is how the
  runtime's ``transfer_timeout`` drop reason gets exercised).  Nothing
  here touches a socket; virtual time comes from the caller.

* asyncio TCP (:func:`serve_tensors` / :func:`send_tensor`) — a real
  transport speaking the identical length-prefixed frames, for running
  a segment host out-of-process.  The serving simulation never uses it
  (the DES cannot wait on real sockets), but the codec and framing are
  shared, so bytes measured on a simulated link are exactly the bytes
  a TCP hop would carry.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

import numpy as np

from repro.cluster import wire

__all__ = [
    "LinkSpec",
    "SimulatedLink",
    "StreamRouter",
    "serve_tensors",
    "send_tensor",
]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one directed node-to-node link."""

    src: str
    dst: str
    bandwidth_bps: float = 1e9
    latency_s: float = 0.0005
    #: probability one transfer stalls (fault injection; 0 = never)
    stall_rate: float = 0.0
    #: duration multiplier applied to a stalled transfer
    stall_factor: float = 50.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if not 0.0 <= self.stall_rate < 1.0:
            raise ValueError("stall_rate must be in [0, 1)")
        if self.stall_factor < 1.0:
            raise ValueError("stall_factor must be >= 1")


@dataclass
class SimulatedLink:
    """FIFO link with DES-timed transfers and seeded stall injection."""

    spec: LinkSpec
    _busy_until: float = 0.0
    #: bytes carried (headers included), for per-hop accounting
    bytes_transferred: int = 0
    transfers: int = 0
    stalls: int = 0

    def duration(self, nbytes: int) -> float:
        """Nominal (unstalled) occupancy of one ``nbytes`` transfer."""
        return self.spec.latency_s + nbytes * 8.0 / self.spec.bandwidth_bps

    def transfer(
        self, nbytes: int, now: float, rng: np.random.Generator | None = None
    ) -> tuple[float, bool]:
        """Carry ``nbytes`` starting no earlier than ``now``.

        Returns ``(delivery_time, stalled)``.  Transfers of the same
        link queue FIFO; a stall (drawn from ``rng`` against the spec's
        ``stall_rate``) inflates this transfer's duration by
        ``stall_factor`` — the caller decides whether that breaches its
        timeout.
        """
        start = max(now, self._busy_until)
        duration = self.duration(nbytes)
        stalled = False
        if self.spec.stall_rate > 0.0 and rng is not None:
            stalled = bool(rng.random() < self.spec.stall_rate)
            if stalled:
                duration *= self.spec.stall_factor
                self.stalls += 1
        delivery = start + duration
        self._busy_until = delivery
        self.bytes_transferred += nbytes
        self.transfers += 1
        return delivery, stalled

    def reset(self) -> None:
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.transfers = 0
        self.stalls = 0


@dataclass
class StreamRouter:
    """Routes activation frames between registered nodes.

    Holds one :class:`SimulatedLink` per directed ``(src, dst)`` pair.
    Missing pairs fall back to ``default_spec`` (a homogeneous mesh),
    created lazily — in deterministic insertion order, since routing is
    driven by the sorted dispatch loop.  A self-hop is free: segment
    boundaries placed on the same node exchange activations in memory.
    """

    links: dict[tuple[str, str], SimulatedLink] = field(default_factory=dict)
    default_spec: LinkSpec | None = None
    #: ship activations as fp16 frames (halves payload bytes)
    fp16_activations: bool = False
    #: ship activations as int8 + scale frames (quarters payload bytes;
    #: exclusive with ``fp16_activations``) — int8 tensors produced by
    #: the quantized engine travel losslessly on this setting
    int8_activations: bool = False

    def __post_init__(self) -> None:
        if self.fp16_activations and self.int8_activations:
            raise ValueError(
                "fp16_activations and int8_activations are mutually exclusive"
            )

    def add_link(self, spec: LinkSpec) -> SimulatedLink:
        link = SimulatedLink(spec=spec)
        self.links[(spec.src, spec.dst)] = link
        return link

    def link(self, src: str, dst: str) -> SimulatedLink:
        key = (src, dst)
        existing = self.links.get(key)
        if existing is not None:
            return existing
        if self.default_spec is None:
            raise KeyError(f"no link {src} -> {dst} and no default spec")
        spec = LinkSpec(
            src=src,
            dst=dst,
            bandwidth_bps=self.default_spec.bandwidth_bps,
            latency_s=self.default_spec.latency_s,
            stall_rate=self.default_spec.stall_rate,
            stall_factor=self.default_spec.stall_factor,
        )
        return self.add_link(spec)

    def transfer_bits(
        self,
        src: str,
        dst: str,
        payload_bits: float,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> tuple[float, bool, int]:
        """Move an abstract activation of ``payload_bits`` from src to dst.

        Returns ``(delivery_time, stalled, frame_bytes)``.  The byte
        count charged is the *encoded* frame size — wire header plus
        payload, with the router's fp16 knob applied — so the DES pays
        for exactly what :func:`repro.cluster.wire.encode_frame` would
        put on a socket (4-D activations: N×C×H×W).
        """
        if src == dst:
            return now, False, 0
        payload_bytes = int(np.ceil(payload_bits / 8.0))
        if self.int8_activations:
            payload_bytes = (payload_bytes + 3) // 4
        elif self.fp16_activations:
            payload_bytes = (payload_bytes + 1) // 2
        nbytes = (
            wire.header_nbytes(ndim=4, quantize_int8=self.int8_activations)
            + payload_bytes
        )
        delivery, stalled = self.link(src, dst).transfer(nbytes, now, rng)
        return delivery, stalled, nbytes

    def send_tensor(
        self,
        src: str,
        dst: str,
        tensor: np.ndarray,
        now: float,
        scale: float | None = None,
    ) -> tuple[float, bytes]:
        """Encode a real tensor and time its simulated transfer.

        Returns ``(delivery_time, frame)`` — the frame is the actual
        wire encoding, so tests can assert byte-level determinism on
        what the link carried.  ``scale`` is the producing plan's
        activation scale for int8 tensors (rides in the frame header).
        """
        frame = wire.encode_frame(
            tensor,
            downcast_fp16=self.fp16_activations,
            quantize_int8=self.int8_activations,
            scale=scale,
        )
        if src == dst:
            return now, frame
        delivery, _stalled = self.link(src, dst).transfer(len(frame), now)
        return delivery, frame

    def reset(self) -> None:
        for link in self.links.values():
            link.reset()


# -- real asyncio transport ------------------------------------------------

_LEN = 8  # u64 length prefix, little-endian


async def _read_frame(reader: asyncio.StreamReader) -> np.ndarray:
    header = await reader.readexactly(_LEN)
    length = int.from_bytes(header, "little")
    payload = await reader.readexactly(length)
    tensor, _consumed = wire.decode_frame(payload)
    return tensor


def _write_frame(writer: asyncio.StreamWriter, tensor: np.ndarray, fp16: bool) -> None:
    frame = wire.encode_frame(tensor, downcast_fp16=fp16)
    writer.write(len(frame).to_bytes(_LEN, "little") + frame)


async def serve_tensors(
    handler: Callable[[np.ndarray], np.ndarray | Awaitable[np.ndarray]],
    host: str = "127.0.0.1",
    port: int = 0,
    fp16: bool = False,
) -> asyncio.AbstractServer:
    """Serve activation frames over TCP: each request tensor is passed
    to ``handler`` (sync or async) and the result streamed back.

    Returns the started server; the bound port is
    ``server.sockets[0].getsockname()[1]`` when ``port=0``.
    """

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    tensor = await _read_frame(reader)
                except asyncio.IncompleteReadError:
                    break
                result = handler(tensor)
                if asyncio.iscoroutine(result):
                    result = await result
                _write_frame(writer, result, fp16)
                await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(on_connection, host, port)


async def send_tensor(
    tensor: np.ndarray, host: str, port: int, fp16: bool = False
) -> np.ndarray:
    """Ship one tensor to a :func:`serve_tensors` host; returns the reply."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        _write_frame(writer, tensor, fp16)
        await writer.drain()
        return await _read_frame(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
