"""Versioned wire protocol for activation tensors.

Cross-node hops ship intermediate activations as *frames*: a fixed
header (magic, version, flags, logical dtype, shape) followed by a
length-prefixed contiguous payload.  The format is deliberately boring
— little-endian integers, C-order payload bytes — so that encoding is
a pure function of the array's values: two identical DES runs that
stream the same tensors produce byte-identical frames, which is what
the cluster determinism tests assert.

Layout (all integers little-endian)::

    0    2   magic  b"RC"
    2    1   version (WIRE_VERSION)
    3    1   flags   (bit 0: payload downcast to float16,
                      bit 1: payload quantized to int8 + scale)
    4    8   dtype   numpy dtype.str, ascii, NUL-padded (logical dtype)
    12   1   ndim
    13   4n  shape   one u32 per dimension
    +    4   scale   f32 quantization scale (only when bit 1 set; v2+)
    +    8   payload length in bytes (u64)
    +    …   payload (C-order)

**fp16 downcast.**  With ``downcast_fp16=True`` a floating payload is
shipped as float16 and restored to the logical dtype on decode — a 2×
(float32) or 4× (float64) uplink saving at a bounded precision cost
(|x − roundtrip| ≤ max(2⁻¹¹·|x|, 2⁻²⁴) for values in float16 range).
Integer and bool payloads ignore the knob.

**int8 + scale (version 2).**  With ``quantize_int8=True`` a floating
payload is shipped as symmetric int8 (``round(x/scale)`` clipped to
±127, ``scale = amax/127``) plus one f32 scale in the header — a 4×
saving over float32 at quantization precision.  An array that is
*already* int8 (an activation produced by the quantized engine) is
shipped verbatim with the caller's ``scale`` riding in the header:
that round-trip is lossless, bit for bit.  The flag did not exist in
version 1, so decoders reject v1 frames carrying it.

Version 1 frames (no int8 flag, no scale field) still decode; frames
produced by this codec carry ``WIRE_VERSION`` = 2.

Error paths raise :class:`TruncatedFrameError` (buffer shorter than its
own header/length claims) or :class:`VersionMismatchError` (peer speaks
an unknown protocol revision); both subclass :class:`WireError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WIRE_VERSION",
    "COMPAT_VERSIONS",
    "WireError",
    "TruncatedFrameError",
    "VersionMismatchError",
    "FrameInfo",
    "encode_frame",
    "decode_frame",
    "decode_frame_info",
    "frame_nbytes",
    "header_nbytes",
]

#: protocol revision; bump on any layout change
WIRE_VERSION = 2
#: revisions this codec decodes (v1 lacks the int8 flag + scale field)
COMPAT_VERSIONS = (1, 2)

_MAGIC = b"RC"
_FLAG_FP16 = 0x01
_FLAG_INT8 = 0x02
#: magic + version + flags + dtype[8] + ndim
_PREFIX = struct.Struct("<2sBB8sB")
_DIM = struct.Struct("<I")
_SCALE = struct.Struct("<f")
_PAYLOAD_LEN = struct.Struct("<Q")
_MAX_DIMS = 255


class WireError(ValueError):
    """Base class for activation-frame codec failures."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame it announces is complete."""


class VersionMismatchError(WireError):
    """The frame was encoded by an incompatible protocol revision."""


@dataclass(frozen=True)
class FrameInfo:
    """Decoded frame metadata (version, flags, quantization scale)."""

    version: int
    flags: int
    #: f32 quantization scale (1.0 unless the int8 flag is set)
    scale: float

    @property
    def fp16(self) -> bool:
        return bool(self.flags & _FLAG_FP16)

    @property
    def int8(self) -> bool:
        return bool(self.flags & _FLAG_INT8)


def header_nbytes(ndim: int, quantize_int8: bool = False) -> int:
    """Size of a frame header for an ``ndim``-dimensional tensor."""
    if not 0 <= ndim <= _MAX_DIMS:
        raise WireError(f"ndim must be in [0, {_MAX_DIMS}], got {ndim}")
    scale = _SCALE.size if quantize_int8 else 0
    return _PREFIX.size + ndim * _DIM.size + scale + _PAYLOAD_LEN.size


def frame_nbytes(
    shape: tuple[int, ...],
    itemsize: int,
    downcast_fp16: bool = False,
    quantize_int8: bool = False,
) -> int:
    """Encoded size of a frame without materializing it.

    The simulated links use this to charge transfer time for abstract
    activations: ``itemsize`` is the logical element size and the
    fp16/int8 flags shrink the payload exactly like
    :func:`encode_frame` (int8 also adds the 4-byte scale field).
    """
    if downcast_fp16 and quantize_int8:
        raise WireError("downcast_fp16 and quantize_int8 are mutually exclusive")
    elements = 1
    for dim in shape:
        elements *= int(dim)
    payload_itemsize = itemsize
    if quantize_int8:
        payload_itemsize = 1
    elif downcast_fp16 and itemsize > 2:
        payload_itemsize = 2
    return header_nbytes(len(shape), quantize_int8) + elements * payload_itemsize


def encode_frame(
    array: np.ndarray,
    downcast_fp16: bool = False,
    quantize_int8: bool = False,
    scale: float | None = None,
) -> bytes:
    """Encode one activation tensor as a self-delimiting frame.

    ``quantize_int8`` ships floating payloads as symmetric int8 with
    the f32 ``scale`` in the header.  An int8 input array is shipped
    verbatim (losslessly) with ``scale`` defaulting to 1.0 — pass the
    producing plan's activation scale so the receiver can dequantize.
    """
    array = np.asarray(array)
    if array.ndim > _MAX_DIMS:
        raise WireError(f"tensors with > {_MAX_DIMS} dims are not supported")
    if downcast_fp16 and quantize_int8:
        raise WireError("downcast_fp16 and quantize_int8 are mutually exclusive")
    logical = array.dtype
    dtype_tag = logical.str.encode("ascii")
    if len(dtype_tag) > 8:
        raise WireError(f"dtype tag {logical.str!r} exceeds the 8-byte field")
    flags = 0
    frame_scale = 1.0
    payload_array = np.ascontiguousarray(array)
    if logical == np.int8 and (quantize_int8 or scale is not None):
        # already-quantized activation: verbatim int8 payload + scale
        flags |= _FLAG_INT8
        frame_scale = 1.0 if scale is None else float(scale)
    elif quantize_int8:
        if logical.kind != "f":
            raise WireError(
                f"cannot int8-quantize a payload of dtype {logical}"
            )
        if scale is None:
            amax = float(np.max(np.abs(payload_array))) if array.size else 0.0
            frame_scale = amax / 127.0 if amax > 0.0 else 1.0
        else:
            frame_scale = float(scale)
        flags |= _FLAG_INT8
        q = np.rint(payload_array.astype(np.float64) / frame_scale)
        payload_array = np.clip(q, -127, 127).astype(np.int8)
    elif downcast_fp16 and logical.kind == "f" and logical.itemsize > 2:
        payload_array = payload_array.astype(np.float16)
        flags |= _FLAG_FP16
    payload = payload_array.tobytes()
    parts = [_PREFIX.pack(_MAGIC, WIRE_VERSION, flags, dtype_tag, array.ndim)]
    parts.extend(_DIM.pack(dim) for dim in array.shape)
    if flags & _FLAG_INT8:
        parts.append(_SCALE.pack(frame_scale))
    parts.append(_PAYLOAD_LEN.pack(len(payload)))
    parts.append(payload)
    return b"".join(parts)


def decode_frame_info(
    buffer: bytes | memoryview,
) -> tuple[np.ndarray, int, FrameInfo]:
    """Decode one frame; returns ``(tensor, bytes_consumed, info)``.

    The logical dtype is always restored: an fp16-downcast frame comes
    back as its original floating dtype (fp16 precision) and an
    int8-quantized floating frame is dequantized with the header scale.
    A frame whose *logical* dtype is int8 comes back verbatim, with the
    scale reported in ``info`` — that path is lossless.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size:
        raise TruncatedFrameError(
            f"buffer of {len(view)} bytes is shorter than the fixed header"
        )
    magic, version, flags, dtype_tag, ndim = _PREFIX.unpack_from(view, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic {magic!r}; not an activation frame")
    if version not in COMPAT_VERSIONS:
        raise VersionMismatchError(
            f"frame version {version}, this codec speaks {COMPAT_VERSIONS}"
        )
    if version < 2 and flags & _FLAG_INT8:
        raise WireError("int8 flag on a version-1 frame (flag added in v2)")
    offset = _PREFIX.size
    scale_size = _SCALE.size if flags & _FLAG_INT8 else 0
    if len(view) < offset + ndim * _DIM.size + scale_size + _PAYLOAD_LEN.size:
        raise TruncatedFrameError("buffer ends inside the shape header")
    shape = tuple(
        _DIM.unpack_from(view, offset + i * _DIM.size)[0] for i in range(ndim)
    )
    offset += ndim * _DIM.size
    scale = 1.0
    if flags & _FLAG_INT8:
        (scale,) = _SCALE.unpack_from(view, offset)
        offset += _SCALE.size
    (payload_len,) = _PAYLOAD_LEN.unpack_from(view, offset)
    offset += _PAYLOAD_LEN.size
    if len(view) < offset + payload_len:
        raise TruncatedFrameError(
            f"payload of {payload_len} bytes announced, "
            f"{len(view) - offset} available"
        )
    logical = np.dtype(dtype_tag.rstrip(b"\x00").decode("ascii"))
    if flags & _FLAG_INT8:
        wire_dtype = np.dtype(np.int8)
    elif flags & _FLAG_FP16:
        wire_dtype = np.dtype(np.float16)
    else:
        wire_dtype = logical
    elements = 1
    for dim in shape:
        elements *= dim
    if payload_len != elements * wire_dtype.itemsize:
        raise WireError(
            f"payload length {payload_len} inconsistent with shape {shape} "
            f"and dtype {wire_dtype}"
        )
    payload = np.frombuffer(view, dtype=wire_dtype, count=elements, offset=offset)
    tensor = payload.reshape(shape)
    if wire_dtype != logical:
        if flags & _FLAG_INT8:
            # dequantize back to the logical floating dtype
            tensor = (tensor.astype(np.float32) * np.float32(scale)).astype(
                logical
            )
        else:
            tensor = tensor.astype(logical)
    else:
        tensor = tensor.copy()  # decouple from the caller's buffer
    info = FrameInfo(version=version, flags=flags, scale=float(scale))
    return tensor, offset + payload_len, info


def decode_frame(buffer: bytes | memoryview) -> tuple[np.ndarray, int]:
    """Decode one frame; returns ``(tensor, bytes_consumed)``."""
    tensor, consumed, _info = decode_frame_info(buffer)
    return tensor, consumed
