"""Versioned wire protocol for activation tensors.

Cross-node hops ship intermediate activations as *frames*: a fixed
header (magic, version, flags, logical dtype, shape) followed by a
length-prefixed contiguous payload.  The format is deliberately boring
— little-endian integers, C-order payload bytes — so that encoding is
a pure function of the array's values: two identical DES runs that
stream the same tensors produce byte-identical frames, which is what
the cluster determinism tests assert.

Layout (all integers little-endian)::

    0    2   magic  b"RC"
    2    1   version (WIRE_VERSION)
    3    1   flags   (bit 0: payload downcast to float16)
    4    8   dtype   numpy dtype.str, ascii, NUL-padded (logical dtype)
    12   1   ndim
    13   4n  shape   one u32 per dimension
    +    8   payload length in bytes (u64)
    +    …   payload (C-order)

**fp16 downcast.**  With ``downcast_fp16=True`` a floating payload is
shipped as float16 and restored to the logical dtype on decode — a 2×
(float32) or 4× (float64) uplink saving at a bounded precision cost
(|x − roundtrip| ≤ max(2⁻¹¹·|x|, 2⁻²⁴) for values in float16 range).
Integer and bool payloads ignore the knob.

Error paths raise :class:`TruncatedFrameError` (buffer shorter than its
own header/length claims) or :class:`VersionMismatchError` (peer speaks
a different protocol revision); both subclass :class:`WireError`.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "TruncatedFrameError",
    "VersionMismatchError",
    "encode_frame",
    "decode_frame",
    "frame_nbytes",
    "header_nbytes",
]

#: protocol revision; bump on any layout change
WIRE_VERSION = 1

_MAGIC = b"RC"
_FLAG_FP16 = 0x01
#: magic + version + flags + dtype[8] + ndim
_PREFIX = struct.Struct("<2sBB8sB")
_DIM = struct.Struct("<I")
_PAYLOAD_LEN = struct.Struct("<Q")
_MAX_DIMS = 255


class WireError(ValueError):
    """Base class for activation-frame codec failures."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame it announces is complete."""


class VersionMismatchError(WireError):
    """The frame was encoded by an incompatible protocol revision."""


def header_nbytes(ndim: int) -> int:
    """Size of a frame header for an ``ndim``-dimensional tensor."""
    if not 0 <= ndim <= _MAX_DIMS:
        raise WireError(f"ndim must be in [0, {_MAX_DIMS}], got {ndim}")
    return _PREFIX.size + ndim * _DIM.size + _PAYLOAD_LEN.size


def frame_nbytes(shape: tuple[int, ...], itemsize: int, downcast_fp16: bool = False) -> int:
    """Encoded size of a frame without materializing it.

    The simulated links use this to charge transfer time for abstract
    activations: ``itemsize`` is the logical element size and the fp16
    flag halves/quarters the payload exactly like :func:`encode_frame`.
    """
    elements = 1
    for dim in shape:
        elements *= int(dim)
    payload_itemsize = 2 if downcast_fp16 and itemsize > 2 else itemsize
    return header_nbytes(len(shape)) + elements * payload_itemsize


def encode_frame(array: np.ndarray, downcast_fp16: bool = False) -> bytes:
    """Encode one activation tensor as a self-delimiting frame."""
    array = np.asarray(array)
    if array.ndim > _MAX_DIMS:
        raise WireError(f"tensors with > {_MAX_DIMS} dims are not supported")
    logical = array.dtype
    dtype_tag = logical.str.encode("ascii")
    if len(dtype_tag) > 8:
        raise WireError(f"dtype tag {logical.str!r} exceeds the 8-byte field")
    flags = 0
    payload_array = np.ascontiguousarray(array)
    if downcast_fp16 and logical.kind == "f" and logical.itemsize > 2:
        payload_array = payload_array.astype(np.float16)
        flags |= _FLAG_FP16
    payload = payload_array.tobytes()
    parts = [_PREFIX.pack(_MAGIC, WIRE_VERSION, flags, dtype_tag, array.ndim)]
    parts.extend(_DIM.pack(dim) for dim in array.shape)
    parts.append(_PAYLOAD_LEN.pack(len(payload)))
    parts.append(payload)
    return b"".join(parts)


def decode_frame(buffer: bytes | memoryview) -> tuple[np.ndarray, int]:
    """Decode one frame; returns ``(tensor, bytes_consumed)``.

    The logical dtype is always restored, so an fp16-downcast frame
    comes back as its original floating dtype (with fp16 precision).
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size:
        raise TruncatedFrameError(
            f"buffer of {len(view)} bytes is shorter than the fixed header"
        )
    magic, version, flags, dtype_tag, ndim = _PREFIX.unpack_from(view, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic {magic!r}; not an activation frame")
    if version != WIRE_VERSION:
        raise VersionMismatchError(
            f"frame version {version}, this codec speaks {WIRE_VERSION}"
        )
    offset = _PREFIX.size
    if len(view) < offset + ndim * _DIM.size + _PAYLOAD_LEN.size:
        raise TruncatedFrameError("buffer ends inside the shape header")
    shape = tuple(
        _DIM.unpack_from(view, offset + i * _DIM.size)[0] for i in range(ndim)
    )
    offset += ndim * _DIM.size
    (payload_len,) = _PAYLOAD_LEN.unpack_from(view, offset)
    offset += _PAYLOAD_LEN.size
    if len(view) < offset + payload_len:
        raise TruncatedFrameError(
            f"payload of {payload_len} bytes announced, "
            f"{len(view) - offset} available"
        )
    logical = np.dtype(dtype_tag.rstrip(b"\x00").decode("ascii"))
    wire_dtype = np.dtype(np.float16) if flags & _FLAG_FP16 else logical
    elements = 1
    for dim in shape:
        elements *= dim
    if payload_len != elements * wire_dtype.itemsize:
        raise WireError(
            f"payload length {payload_len} inconsistent with shape {shape} "
            f"and dtype {wire_dtype}"
        )
    payload = np.frombuffer(view, dtype=wire_dtype, count=elements, offset=offset)
    tensor = payload.reshape(shape)
    if wire_dtype != logical:
        tensor = tensor.astype(logical)
    else:
        tensor = tensor.copy()  # decouple from the caller's buffer
    return tensor, offset + payload_len
