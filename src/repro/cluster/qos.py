"""QoS monitoring for cross-node requests.

Every hop a request takes through the fabric — queueing on a node,
executing a segment, streaming its activation over a link, retrying
after a failure — is recorded as a :class:`Hop` on the request and, when
an :mod:`repro.obs` session is attached, emitted as nested spans on the
request's own track: one ``request`` parent with ``hop.*`` children, so
a cross-node request reads as a single trace in Perfetto exactly like a
single-node one.

Per-node gauges reuse the clamped busy-window accounting of
:class:`repro.emulator.nodes.BusyTracker` (via
:meth:`repro.cluster.node.ClusterNode.utilization`), so a service tail
crossing the sampling instant never reports utilization above 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.registry import NodeRegistry
from repro.obs.metrics import DesSampler
from repro.obs.trace import NullTracer, Tracer

__all__ = ["Hop", "QosMonitor", "record_hop_spans"]


@dataclass(frozen=True)
class Hop:
    """One stage of a request's journey through the fabric."""

    #: ``queue`` | ``exec`` | ``transfer`` | ``retry``
    kind: str
    #: node id, or ``"src->dst"`` for transfers
    where: str
    start_s: float
    end_s: float
    #: payload bytes for transfers, 0 otherwise
    nbytes: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def record_hop_spans(
    tracer: Tracer | NullTracer, task_id: int, request_id: int, hops: list[Hop]
) -> None:
    """Emit one request's per-hop spans on its serving track.

    The spans nest inside the runtime's ``execute`` phase (they cover
    sub-intervals of it), so the cross-node pipeline shows up as one
    nested trace per request.
    """
    track = f"task{task_id}.req{request_id}"
    for hop in hops:
        tracer.record(
            f"hop.{hop.kind}",
            hop.start_s,
            hop.duration_s,
            cat="cluster",
            track=track,
            args=(
                {"where": hop.where, "bytes": hop.nbytes}
                if hop.nbytes
                else {"where": hop.where}
            ),
        )


@dataclass
class QosMonitor:
    """Per-node / per-link gauges for one cluster serving run."""

    registry: NodeRegistry
    #: hop counts by kind, aggregated across all requests
    hop_counts: dict[str, int] = field(default_factory=dict)
    #: total bytes streamed across links (wire frames, headers included)
    bytes_streamed: int = 0

    def observe_hops(self, hops: list[Hop]) -> None:
        for hop in hops:
            self.hop_counts[hop.kind] = self.hop_counts.get(hop.kind, 0) + 1
            self.bytes_streamed += hop.nbytes

    def add_probes(self, sampler: DesSampler, now_fn) -> None:
        """Register per-node gauges on the run's DES sampler.

        ``cluster.node.<id>.busy_workers`` counts workers mid-segment;
        ``cluster.node.<id>.util`` is the clamped busy fraction of the
        virtual time elapsed so far.
        """
        for node in self.registry.ordered_nodes():
            sampler.add_probe(
                f"cluster.node.{node.node_id}.busy_workers",
                lambda n=node: n.busy_workers(now_fn()),
            )
            sampler.add_probe(
                f"cluster.node.{node.node_id}.util",
                lambda n=node: (
                    n.utilization(now_fn()) if now_fn() > 0.0 else 0.0
                ),
            )

    def node_rows(self, duration_s: float) -> list[list]:
        """Per-node summary rows (CLI table / benchmark report)."""
        return [
            [
                node.node_id,
                node.spec.tier,
                node.spec.cpu_scale,
                node.segments_executed,
                node.dispatch_failures,
                100.0 * node.utilization(duration_s),
            ]
            for node in self.registry.ordered_nodes()
        ]

    NODE_HEADER = ["node", "tier", "cpu", "segments", "failures", "util %"]

    def link_rows(self) -> list[list]:
        rows = []
        for (src, dst), link in sorted(self.registry.router.links.items()):
            if link.transfers == 0:
                continue
            rows.append(
                [f"{src}->{dst}", link.transfers, link.bytes_transferred, link.stalls]
            )
        return rows

    LINK_HEADER = ["link", "transfers", "bytes", "stalls"]
