"""Cluster node roles: specs (what a node advertises) and live state.

A :class:`NodeSpec` is the static description a node publishes to the
registry when it joins the fabric — its tier (edge or cloud), relative
CPU capacity, memory, worker count, which block configs of the Table I
repository it holds resident, and a per-dispatch failure rate for
fault-injection studies.  A :class:`ClusterNode` wraps one spec with
the mutable serving-time state: per-worker free times (the same
earliest-free-worker discipline as the single-node
:class:`~repro.serving.executor.BatchExecutor`) and clamped busy-time
accounting reused from the emulator's :class:`~repro.emulator.nodes.
BusyTracker` so per-node utilization gauges never report > 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emulator.nodes import BusyTracker

__all__ = ["NodeSpec", "ClusterNode"]

#: recognised node tiers, in placement preference order
TIERS = ("edge", "cloud")


@dataclass(frozen=True)
class NodeSpec:
    """What one node advertises when registering with the fabric."""

    node_id: str
    #: ``"edge"`` (low-latency, near the cell) or ``"cloud"`` (far tier)
    tier: str = "edge"
    #: relative CPU speed: a block costing ``c(s)`` profiled seconds
    #: executes in ``c(s) / cpu_scale`` on this node
    cpu_scale: float = 1.0
    memory_gb: float = 8.0
    #: concurrent batching windows the node can execute
    num_workers: int = 1
    #: block ids of the Table I repository resident on this node;
    #: ``None`` advertises the full repository (replicated deployment)
    resident_blocks: frozenset[str] | None = None
    #: probability one segment dispatch to this node fails (fault injection)
    failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        if self.tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {self.tier!r}")
        if self.cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")

    def hosts(self, block_ids) -> bool:
        """Whether every block in ``block_ids`` is resident here."""
        if self.resident_blocks is None:
            return True
        return all(bid in self.resident_blocks for bid in block_ids)


@dataclass
class ClusterNode:
    """One registered node's serving-time state."""

    spec: NodeSpec
    _worker_free_at: list[float] = field(default_factory=list)
    #: one clamped busy tracker per worker (per-worker service intervals
    #: are FIFO and non-overlapping, which is what BusyTracker assumes)
    busy: list[BusyTracker] = field(default_factory=list)
    #: segment executions completed (including retried dispatches)
    segments_executed: int = 0
    #: dispatches that failed on this node (fault injection draws)
    dispatch_failures: int = 0

    def __post_init__(self) -> None:
        if not self._worker_free_at:
            self._worker_free_at = [0.0] * self.spec.num_workers
        if not self.busy:
            self.busy = [BusyTracker() for _ in range(self.spec.num_workers)]

    @property
    def node_id(self) -> str:
        return self.spec.node_id

    @property
    def busy_until(self) -> float:
        return max(self._worker_free_at)

    @property
    def earliest_free_at(self) -> float:
        return min(self._worker_free_at)

    def busy_workers(self, now: float) -> int:
        return sum(1 for free_at in self._worker_free_at if free_at > now)

    def scaled_cost(self, compute_s: float) -> float:
        """Execution time of ``compute_s`` profiled seconds on this CPU."""
        return compute_s / self.spec.cpu_scale

    def execute(self, compute_s: float, now: float) -> tuple[float, float]:
        """Queue ``compute_s`` of (already scaled) work; returns (start, finish).

        The earliest-free worker takes the job, exactly like the
        single-node executor's pool, so a one-node cluster reproduces
        the plain :class:`~repro.serving.executor.BatchExecutor` timing.
        """
        worker = min(
            range(len(self._worker_free_at)), key=lambda w: self._worker_free_at[w]
        )
        start = max(now, self._worker_free_at[worker])
        finish = start + compute_s
        self._worker_free_at[worker] = finish
        self.busy[worker].add(start, finish)
        self.segments_executed += 1
        return start, finish

    @property
    def busy_time_s(self) -> float:
        """Total worker-seconds of service (unclamped)."""
        return sum(tracker.total_s for tracker in self.busy)

    def utilization(self, duration_s: float) -> float:
        """Mean worker busy fraction over ``[0, duration_s]``, clamped.

        Uses the same clamped-window accounting as
        :meth:`repro.emulator.nodes.EdgeServer.utilization`, so service
        tails past the horizon never push the gauge above 1.0.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        busy_within = sum(tracker.within(duration_s) for tracker in self.busy)
        return min(1.0, busy_within / (self.spec.num_workers * duration_s))

    def reset(self) -> None:
        self._worker_free_at = [0.0] * self.spec.num_workers
        for tracker in self.busy:
            tracker.clear()
        self.segments_executed = 0
        self.dispatch_failures = 0
