"""DepGraph-style structured channel pruning for the numpy ResNet.

The paper applies *magnitude pruning from DepGraph* [21] with a ratio of
80% to the fine-tuned layer-blocks only (shared blocks are left intact
because other tasks use them).  DepGraph's key idea is that structurally
coupled channels — e.g. a conv's output channels, the following batch
norm, the next conv's input channels, and every tensor tied to them
through a residual addition — must be pruned *together*.

This module reproduces that idea:

1. build a channel *dependency graph* (a :mod:`networkx` graph whose
   nodes are (tensor, axis) slots and whose edges couple slots that share
   a channel space),
2. derive *pruning groups* from its connected components,
3. rank channels in each group by aggregated L2 magnitude and remove the
   lowest-magnitude fraction, slicing every coupled tensor consistently
   so the pruned network still runs.

Residual additions couple the output channels of every basic block in a
stage with the stage's projection shortcut and with the next stage's
input.  A group that touches a tensor outside the prunable set (e.g. a
pruned stage feeding an unpruned one) is *frozen* and left intact — the
same conservatism DepGraph applies to externally constrained tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.dnn.graph import NamedModule, Residual
from repro.dnn.layers import BatchNorm2d, Conv2d, Linear
from repro.dnn.resnet import BLOCK_NAMES, ResNet18

__all__ = [
    "PruningGroup",
    "build_dependency_graph",
    "collect_groups",
    "prune_resnet",
    "prune_module",
    "pruned_channels",
]


@dataclass
class PruningGroup:
    """A set of coupled channel slots pruned together."""

    name: str
    size: int
    #: (layer, role) pairs; layer is a Conv2d / BatchNorm2d / Linear object
    members: list[tuple[object, str]] = field(default_factory=list)

    def importance(self) -> np.ndarray:
        """Aggregated L2 magnitude per channel across member weights."""
        scores = np.zeros(self.size, dtype=np.float64)
        found = False
        for layer, role in self.members:
            if isinstance(layer, Conv2d) and role == "out":
                scores += np.sqrt((layer.weight.astype(np.float64) ** 2).sum(axis=(1, 2, 3)))
                found = True
            elif isinstance(layer, Conv2d) and role == "in":
                scores += np.sqrt((layer.weight.astype(np.float64) ** 2).sum(axis=(0, 2, 3)))
                found = True
            elif isinstance(layer, Linear) and role == "in":
                scores += np.sqrt((layer.weight.astype(np.float64) ** 2).sum(axis=0))
                found = True
        if not found:
            raise ValueError(f"group {self.name} has no weight to rank")
        return scores

    def apply(self, keep: np.ndarray) -> None:
        """Slice every member tensor down to the ``keep`` channel indices."""
        for layer, role in self.members:
            if isinstance(layer, Conv2d):
                if role == "out":
                    layer.weight = np.ascontiguousarray(layer.weight[keep])
                    if layer.bias is not None:
                        layer.bias = np.ascontiguousarray(layer.bias[keep])
                    layer.out_channels = len(keep)
                else:
                    layer.weight = np.ascontiguousarray(layer.weight[:, keep])
                    layer.in_channels = len(keep)
            elif isinstance(layer, BatchNorm2d):
                layer.gamma = np.ascontiguousarray(layer.gamma[keep])
                layer.beta = np.ascontiguousarray(layer.beta[keep])
                layer.running_mean = np.ascontiguousarray(layer.running_mean[keep])
                layer.running_var = np.ascontiguousarray(layer.running_var[keep])
                layer.channels = len(keep)
            elif isinstance(layer, Linear):
                if role != "in":
                    raise ValueError("linear layers are pruned on the input axis only")
                layer.weight = np.ascontiguousarray(layer.weight[:, keep])
                layer.in_features = len(keep)
            else:
                raise TypeError(f"cannot prune layer of type {type(layer)!r}")


def _stage_residuals(stage: NamedModule) -> list[Residual]:
    residuals = [layer for layer in stage.layers if isinstance(layer, Residual)]
    if not residuals:
        raise ValueError(f"stage {stage.name} has no residual blocks")
    return residuals


class _GraphBuilder:
    """Accumulates channel slots and coupling edges."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.members: dict[str, list[tuple[object, str]]] = {}
        self._next = 0

    def slot(self, layer: object, role: str) -> str:
        label = f"s{self._next}:{role}"
        self._next += 1
        self.graph.add_node(label)
        self.members[label] = [(layer, role)]
        return label

    def tie(self, a: str, b: str) -> None:
        self.graph.add_edge(a, b)

    def freeze(self, label: str) -> None:
        self.graph.nodes[label]["frozen"] = True


def build_dependency_graph(
    model: ResNet18, prunable: set[str]
) -> tuple[nx.Graph, dict[str, list[tuple[object, str]]]]:
    """Build the channel dependency graph of the prunable stages.

    Returns the graph and a mapping node-label -> (layer, role) members.
    Connected components are pruning groups; components containing a
    ``frozen`` node may not be pruned.
    """
    builder = _GraphBuilder()
    stage_names = [n for n in BLOCK_NAMES if n.startswith("layer")]

    # ``prev_out``: output slot of the previous *pruned* stage, or None
    # when the previous producer keeps full width.
    prev_out: str | None = None
    prev_pruned = False
    for name in stage_names:
        stage = model.blocks[name]
        if name not in prunable:
            # This stage consumes the previous output at fixed width, so a
            # pruned predecessor's output group must stay intact.
            if prev_pruned and prev_out is not None:
                builder.freeze(prev_out)
            prev_out = None
            prev_pruned = False
            continue

        residuals = _stage_residuals(stage)
        block_out: str | None = None  # output slot of the previous residual
        for position, res in enumerate(residuals):
            conv1 = res.body.layers[0]
            bn1 = res.body.layers[1]
            conv2 = res.body.layers[3]
            bn2 = res.body.layers[4]

            s_c1in = builder.slot(conv1, "in")
            s_c1out = builder.slot(conv1, "out")
            s_bn1 = builder.slot(bn1, "out")
            s_c2in = builder.slot(conv2, "in")
            s_c2out = builder.slot(conv2, "out")
            s_bn2 = builder.slot(bn2, "out")

            # internal group: conv1 out <-> bn1 <-> conv2 in
            builder.tie(s_c1out, s_bn1)
            builder.tie(s_bn1, s_c2in)
            # block output group: conv2 out <-> bn2
            builder.tie(s_c2out, s_bn2)

            if res.shortcut is not None:
                sc_conv = res.shortcut.layers[0]
                sc_bn = res.shortcut.layers[1]
                s_sc_in = builder.slot(sc_conv, "in")
                s_sc_out = builder.slot(sc_conv, "out")
                s_sc_bn = builder.slot(sc_bn, "out")
                builder.tie(s_sc_out, s_sc_bn)
                builder.tie(s_sc_out, s_c2out)  # residual addition
                builder.tie(s_sc_in, s_c1in)  # both consume block input
            else:
                # identity shortcut: block input and output share channels
                builder.tie(s_c1in, s_c2out)

            # wire the block input to its producer
            if position == 0:
                if prev_out is not None:
                    builder.tie(s_c1in, prev_out)
                else:
                    builder.freeze(s_c1in)
            else:
                assert block_out is not None
                builder.tie(s_c1in, block_out)
            block_out = s_c2out

        prev_out = block_out
        prev_pruned = True

    # layer4 output feeds the classifier head, whose linear input axis can
    # always be sliced alongside (the head is task specific).
    if prev_pruned and prev_out is not None:
        if "layer4" in prunable:
            head = model.blocks["head"]
            linear = next(l for l in head.layers if isinstance(l, Linear))
            s_lin = builder.slot(linear, "in")
            builder.tie(s_lin, prev_out)
        else:
            builder.freeze(prev_out)

    return builder.graph, builder.members


def collect_groups(
    graph: nx.Graph, slot_members: dict[str, list[tuple[object, str]]]
) -> list[PruningGroup]:
    """Turn connected components of the dependency graph into groups.

    Components containing a frozen node are skipped.
    """
    groups: list[PruningGroup] = []
    for index, component in enumerate(sorted(nx.connected_components(graph), key=min)):
        members: list[tuple[object, str]] = []
        frozen = False
        for label in component:
            if graph.nodes[label].get("frozen"):
                frozen = True
            members.extend(slot_members[label])
        if frozen:
            continue
        sizes = set()
        for layer, role in members:
            if isinstance(layer, Conv2d):
                sizes.add(layer.out_channels if role == "out" else layer.in_channels)
            elif isinstance(layer, BatchNorm2d):
                sizes.add(layer.channels)
            elif isinstance(layer, Linear):
                sizes.add(layer.in_features)
        if len(sizes) != 1:
            raise ValueError(f"inconsistent channel sizes in group {index}: {sizes}")
        groups.append(PruningGroup(name=f"group{index}", size=sizes.pop(), members=members))
    return groups


def pruned_channels(size: int, ratio: float) -> int:
    """Channels remaining after pruning ``size`` channels at ``ratio``.

    At least one channel is always kept.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError("pruning ratio must be in [0, 1)")
    return max(1, int(round(size * (1.0 - ratio))))


def prune_resnet(model: ResNet18, stages: set[str] | list[str], ratio: float) -> int:
    """Prune the given ResNet stages in place at ``ratio``.

    ``stages`` is a subset of ``{"layer1", ..., "layer4"}``.  Channels are
    removed per dependency group by aggregated L2 magnitude, the criterion
    of magnitude DepGraph pruning.  Returns the number of channel groups
    actually pruned.
    """
    prunable = set(stages)
    unknown = prunable - {n for n in BLOCK_NAMES if n.startswith("layer")}
    if unknown:
        raise ValueError(f"unknown or unprunable stages: {sorted(unknown)}")
    if not prunable:
        return 0
    graph, slot_members = build_dependency_graph(model, prunable)
    groups = collect_groups(graph, slot_members)
    for group in groups:
        keep_count = pruned_channels(group.size, ratio)
        scores = group.importance()
        keep = np.sort(np.argsort(scores)[::-1][:keep_count])
        group.apply(keep)
    return len(groups)


def prune_module(model: ResNet18, fine_tuned_blocks: list[str], ratio: float = 0.8) -> int:
    """Paper-level entry point: prune only the fine-tuned layer-blocks.

    ``fine_tuned_blocks`` may include ``"head"``; the classifier itself is
    never pruned (its output size is the class count), but its input is
    sliced automatically when ``layer4`` is pruned.
    """
    stages = [b for b in fine_tuned_blocks if b.startswith("layer")]
    return prune_resnet(model, set(stages), ratio)
