"""Synthetic datasets reproducing the structure of Table II.

The paper pre-trains ResNet-18 on a 60-class ImageNet subset (Table II)
and fine-tunes on new-task classes ("mushroom" for grocery detection,
"electric guitar" for musical instruments).  ImageNet is not available
offline, so this module provides class-conditional synthetic data with
the same class structure and *controllable separability*, which is what
the Fig. 2 / Fig. 3 experiments actually exercise (accuracy orderings
across training configurations, not absolute ImageNet numbers).

Two granularities are offered:

* :class:`FeatureDataset` — Gaussian class clusters in the ResNet
  feature space (512-d), used to train the classifier head with real
  numpy SGD;
* :class:`ImageDataset` — per-class template images plus noise, used for
  end-to-end forward-pass tests of full models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ClassGroup",
    "TABLE_II_GROUPS",
    "BASE_NUM_CLASSES",
    "NEW_TASK_CLASSES",
    "FeatureDataset",
    "ImageDataset",
    "make_feature_dataset",
    "make_image_dataset",
]


@dataclass(frozen=True)
class ClassGroup:
    """One row of Table II."""

    name: str
    description: str
    num_classes: int
    example: str


#: The base dataset description (Table II): 60 categories in 5 groups.
TABLE_II_GROUPS: tuple[ClassGroup, ...] = (
    ClassGroup("Vehicle", "12 vehicle categories", 12, "Bus"),
    ClassGroup("Wild animals", "18 wild animal categories", 18, "koala"),
    ClassGroup("Snakes", "10 snake categories", 10, "green snake"),
    ClassGroup("Cats", "6 cat categories", 6, "Persian cat"),
    ClassGroup("Household Objects", "14 household objects", 14, "toaster"),
)

BASE_NUM_CLASSES = sum(g.num_classes for g in TABLE_II_GROUPS)

#: New-task classes used by the paper's motivating experiments.
NEW_TASK_CLASSES = ("mushroom", "electric guitar")


@dataclass(frozen=True)
class FeatureDataset:
    """Class-conditional Gaussian clusters in feature space.

    ``features`` has shape (N, F); ``labels`` (N,) integer classes.
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    prototypes: np.ndarray  # (K, F) class means

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")

    def split(self, train_fraction: float, seed: int = 0) -> tuple["FeatureDataset", "FeatureDataset"]:
        """Shuffle and split into (train, test)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.labels))
        cut = int(round(train_fraction * len(order)))
        train_idx, test_idx = order[:cut], order[cut:]

        def subset(idx: np.ndarray) -> FeatureDataset:
            return FeatureDataset(
                features=self.features[idx],
                labels=self.labels[idx],
                num_classes=self.num_classes,
                prototypes=self.prototypes,
            )

        return subset(train_idx), subset(test_idx)


def make_feature_dataset(
    num_classes: int = BASE_NUM_CLASSES,
    samples_per_class: int = 40,
    feature_dim: int = 512,
    separability: float = 2.5,
    seed: int = 0,
) -> FeatureDataset:
    """Generate Gaussian class clusters.

    ``separability`` is the ratio of inter-class prototype distance to
    the within-class standard deviation; higher values make the task
    easier.  The asymptotically reachable accuracy of a linear classifier
    grows monotonically with it, which lets tests and benchmarks dial in
    target accuracy regimes.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if separability <= 0:
        raise ValueError("separability must be positive")
    rng = np.random.default_rng(seed)
    prototypes = rng.normal(0.0, 1.0, (num_classes, feature_dim))
    prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
    prototypes *= separability
    labels = np.repeat(np.arange(num_classes), samples_per_class)
    noise = rng.normal(0.0, 1.0, (len(labels), feature_dim))
    features = prototypes[labels] + noise
    return FeatureDataset(
        features=features.astype(np.float32),
        labels=labels.astype(np.int64),
        num_classes=num_classes,
        prototypes=prototypes.astype(np.float32),
    )


@dataclass(frozen=True)
class ImageDataset:
    """Per-class template images plus additive noise."""

    images: np.ndarray  # (N, C, H, W)
    labels: np.ndarray  # (N,)
    num_classes: int


def make_image_dataset(
    num_classes: int = 10,
    samples_per_class: int = 4,
    image_size: int = 32,
    noise_std: float = 0.3,
    seed: int = 0,
) -> ImageDataset:
    """Generate template-plus-noise images for end-to-end tests."""
    if num_classes < 1:
        raise ValueError("need at least one class")
    rng = np.random.default_rng(seed)
    templates = rng.normal(0.0, 1.0, (num_classes, 3, image_size, image_size))
    labels = np.repeat(np.arange(num_classes), samples_per_class)
    noise = rng.normal(0.0, noise_std, (len(labels), 3, image_size, image_size))
    images = templates[labels] + noise
    return ImageDataset(
        images=images.astype(np.float32),
        labels=labels.astype(np.int64),
        num_classes=num_classes,
    )
