"""Measurement of per-block inference cost — the DOT inputs.

The paper derives ``c(s)`` (inference compute time) and ``mu(s)``
(memory) for every DNN block "experimentally".  This module performs the
same measurement on the numpy engine: each layer-block is timed on a
dummy input tensor (the paper's "standard procedure to estimate DNN model
inference compute time in a system", Fig. 3 caption), and its memory
footprint is computed from the parameter tensors plus the peak
intermediate activation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dnn.layers import BYTES_PER_PARAM
from repro.dnn.resnet import BLOCK_NAMES, ResNet18

__all__ = ["BlockProfile", "ModelProfile", "profile_model", "time_forward"]


@dataclass(frozen=True)
class BlockProfile:
    """Measured cost of a single layer-block."""

    name: str
    #: median wall-clock seconds for one forward pass, batch size 1
    compute_time_s: float
    #: analytic FLOPs for one sample
    flops: int
    #: number of parameters
    params: int
    #: bytes held by parameters (dtype-aware: int8 plans count their
    #: int8 weights + f32 scale/bias vectors, not the fp32 tensors)
    param_bytes: int
    #: bytes of the largest intermediate activation (batch size 1)
    activation_bytes: int
    #: numeric format the block was profiled at ("fp32" or "int8")
    precision: str = "fp32"

    @property
    def memory_bytes(self) -> int:
        """Serving memory: parameters + the peak activation buffer."""
        return self.param_bytes + self.activation_bytes

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / 1e9


@dataclass(frozen=True)
class ModelProfile:
    """Per-block profiles for a full model, in execution order."""

    blocks: tuple[BlockProfile, ...]
    input_shape: tuple[int, int, int]

    @property
    def total_compute_time_s(self) -> float:
        return sum(b.compute_time_s for b in self.blocks)

    @property
    def total_flops(self) -> int:
        return sum(b.flops for b in self.blocks)

    @property
    def total_params(self) -> int:
        return sum(b.params for b in self.blocks)

    @property
    def total_memory_bytes(self) -> int:
        return sum(b.memory_bytes for b in self.blocks)

    def block(self, name: str) -> BlockProfile:
        for profile in self.blocks:
            if profile.name == name:
                return profile
        raise KeyError(name)


def time_forward(
    fn,
    x: np.ndarray,
    repeats: int = 5,
    warmup: int = 1,
    clock: Callable[[], float] = time.perf_counter,
) -> float:
    """Median wall-clock seconds of ``fn(x)`` over ``repeats`` runs.

    ``clock`` is the timestamp source; tests inject a fake clock to pin
    the measured values exactly.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn(x)
    samples = []
    for _ in range(repeats):
        start = clock()
        fn(x)
        samples.append(clock() - start)
    return float(np.median(samples))


def profile_model(
    model: ResNet18,
    repeats: int = 5,
    warmup: int = 1,
    compiled: bool = False,
    quantize: str | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ModelProfile:
    """Profile each layer-block of ``model`` on a dummy tensor.

    Timing uses batch size 1 (per-inference cost, as consumed by the DOT
    compute constraint which scales cost by the task request rate).

    With ``compiled=True`` each block is compiled into a fused execution
    plan (:mod:`repro.dnn.compile`) and the plan's forward is timed —
    the cost the serving runtime sees when it opts into compiled blocks.
    FLOPs figures stay analytic (identical either way); the eager block
    still propagates the activation so downstream shapes match.

    ``quantize="int8"`` (implies ``compiled``) times the int8 plan and
    reports the *dtype-aware* memory footprint: ``param_bytes`` are the
    deployed int8 weights + f32 scale/bias vectors (4x smaller than
    fp32), and ``activation_bytes`` count 1 byte per element for blocks
    whose plan actually quantized (int8 activations dominate the
    buffers).  Blocks with no quantizable prefix keep fp32 accounting.
    """
    if quantize is not None:
        compiled = True
    dummy = np.zeros((1, *model.input_shape), dtype=np.float32)
    profiles: list[BlockProfile] = []
    x = dummy
    shape: tuple[int, ...] = model.input_shape
    for name in BLOCK_NAMES:
        block = model.blocks[name]
        timed = block.forward
        params = block.param_count()
        param_bytes = params * BYTES_PER_PARAM
        act_elem_bytes = BYTES_PER_PARAM
        precision = "fp32"
        if compiled:
            from repro.dnn.compile import compile_module

            plan = compile_module(block, shape, quantize=quantize)
            timed = plan.forward
            if quantize is not None and getattr(plan, "quantized_steps", 0) > 0:
                param_bytes = plan.param_bytes()
                act_elem_bytes = 1  # int8 activations
                precision = plan.precision
        elapsed = time_forward(timed, x, repeats=repeats, warmup=warmup, clock=clock)
        profiles.append(
            BlockProfile(
                name=name,
                compute_time_s=elapsed,
                flops=block.flops(shape),
                params=params,
                param_bytes=param_bytes,
                activation_bytes=block.activation_size(shape) * act_elem_bytes,
                precision=precision,
            )
        )
        x = block(x)
        shape = block.output_shape(shape)
    return ModelProfile(blocks=tuple(profiles), input_shape=model.input_shape)
