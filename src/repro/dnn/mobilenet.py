"""MobileNetV2 built from the numpy engine.

The paper's introduction motivates the accuracy/footprint trade-off with
MobileNetV2 (6.9M parameters) against larger ResNets, and the reference
model lists both as examples of DNNs implementing a CV method.  This
module provides MobileNetV2 as a second architecture *family* for the
DNN repository ``D``: inverted residual bottlenecks (1x1 expansion,
3x3 depthwise, 1x1 linear projection, ReLU6 activations) grouped into
the same shareable layer-blocks as the ResNet (stem, four stages, head)
so that the profiler, training simulator and catalog builders apply
unchanged.

The canonical ImageNet configuration (width multiplier 1.0, 224 px,
~3.4M backbone parameters) is scaled down by default so tests and
benches run quickly on CPU, preserving the architecture arithmetic
(expansion factor 6, stride placement, last 1x1 channel lift).
"""

from __future__ import annotations

import numpy as np

from repro.dnn.graph import NamedModule, Residual, Sequential
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    ReLU6,
)
from repro.dnn.resnet import BlockwiseModel

__all__ = ["inverted_residual", "build_mobilenetv2", "MOBILENET_STAGES"]

#: (expansion t, output channels c at width 1.0, repeats n, first stride s)
#: per stage, following the MobileNetV2 bottleneck table, grouped into
#: the four shareable layer-blocks.
MOBILENET_STAGES: dict[str, tuple[tuple[int, int, int, int], ...]] = {
    "layer1": ((1, 16, 1, 1), (6, 24, 2, 1)),
    "layer2": ((6, 32, 3, 2),),
    "layer3": ((6, 64, 4, 2), (6, 96, 3, 1)),
    "layer4": ((6, 160, 3, 2), (6, 320, 1, 1)),
}


def inverted_residual(
    in_channels: int,
    out_channels: int,
    stride: int,
    expansion: int,
    rng: np.random.Generator,
) -> Residual | Sequential:
    """A MobileNetV2 bottleneck block.

    Expand with a 1x1 conv (skipped when ``expansion == 1``), filter with
    a 3x3 depthwise conv, project linearly with a 1x1 conv.  A residual
    shortcut (linear addition) applies only when the block preserves
    shape; otherwise the body runs plain.
    """
    hidden = in_channels * expansion
    layers = []
    if expansion != 1:
        layers += [
            Conv2d(in_channels, hidden, kernel=1, rng=rng),
            BatchNorm2d(hidden),
            ReLU6(),
        ]
    layers += [
        DepthwiseConv2d(hidden, kernel=3, stride=stride, padding=1, rng=rng),
        BatchNorm2d(hidden),
        ReLU6(),
        Conv2d(hidden, out_channels, kernel=1, rng=rng),
        BatchNorm2d(out_channels),
    ]
    body = Sequential(*layers)
    if stride == 1 and in_channels == out_channels:
        return Residual(body, activation="linear")
    return body


def _scaled(channels: int, width_multiplier: float) -> int:
    return max(4, int(round(channels * width_multiplier)))


def build_mobilenetv2(
    num_classes: int = 60,
    input_size: int = 32,
    width_multiplier: float = 0.25,
    seed: int = 0,
) -> BlockwiseModel:
    """Construct a MobileNetV2 grouped into the shareable layer-blocks.

    Parameters
    ----------
    num_classes:
        Classifier output size.
    input_size:
        Square input resolution (the stem stride adapts like the ResNet
        builder: stride 2 for >= 64 px inputs, stride 1 otherwise).
    width_multiplier:
        MobileNet's channel scaling knob; 1.0 is the published model,
        the 0.25 default keeps CPU profiling fast.
    seed:
        Seed for weight initialization.
    """
    if input_size < 8:
        raise ValueError("input_size must be >= 8")
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    rng = np.random.default_rng(seed)
    stem_channels = _scaled(32, width_multiplier)
    stem_stride = 2 if input_size >= 64 else 1
    stem = NamedModule(
        "stem",
        Conv2d(3, stem_channels, kernel=3, stride=stem_stride, padding=1, rng=rng),
        BatchNorm2d(stem_channels),
        ReLU6(),
    )

    blocks: dict[str, NamedModule] = {"stem": stem}
    in_channels = stem_channels
    for stage_name, settings in MOBILENET_STAGES.items():
        stage_layers = []
        for expansion, channels, repeats, first_stride in settings:
            out_channels = _scaled(channels, width_multiplier)
            for repeat in range(repeats):
                stride = first_stride if repeat == 0 else 1
                stage_layers.append(
                    inverted_residual(in_channels, out_channels, stride, expansion, rng)
                )
                in_channels = out_channels
        blocks[stage_name] = NamedModule(stage_name, *stage_layers)

    last_channels = _scaled(1280, width_multiplier)
    blocks["head"] = NamedModule(
        "head",
        Conv2d(in_channels, last_channels, kernel=1, rng=rng),
        BatchNorm2d(last_channels),
        ReLU6(),
        GlobalAvgPool(),
        Flatten(),
        Linear(last_channels, num_classes, rng=rng),
    )
    return BlockwiseModel(
        blocks=blocks,
        input_shape=(3, input_size, input_size),
        num_classes=num_classes,
        width=stem_channels,
    )
