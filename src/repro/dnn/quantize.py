"""Int8 quantized execution plans for the compiled engine.

Builds on :mod:`repro.dnn.compile`: the fp32 plan is compiled first
(BN folding, fusion, shape propagation all reused), a calibration batch
is pushed through it to record per-step activation ranges, and the
longest quantizable prefix of the plan is then rewritten into int8
steps.  The result — :class:`QuantizedModule` — is a drop-in
``CompiledModule``: fp32 in, fp32 out, int8 inside.

Quantization scheme
-------------------

* **Weights** — per-output-channel symmetric: ``scale[o] =
  amax(|W[o]|) / 127`` (all-zero channels get scale 1.0), stored as
  int8 alongside the float32 scale vector.  Folded BN is quantized
  *after* folding, so the int8 weights already absorb the BN scale.
* **Activations** — per-tensor symmetric, calibrated: ``scale =
  amax(|x|) / 127`` over the calibration batch run through the fp32
  plan.  Between quantized steps activations stay int8 in a
  channel-spatial-major ``(C, H, N, W)`` layout (see below).
* **Requantization** — each conv computes the integer-valued GEMM in
  float32 (this host's BLAS has no int8 SIMD kernels; fp32 accumulation
  of integer operands is exact up to |acc| < 2^24, far above any
  127*127*C*K*K reachable here), then applies one fused
  multiply-by-``r``/clip/cast pass where ``r[o] = w_scale[o] * s_in /
  s_out``.  For ReLU steps the rounding is folded into the bias as a
  ``+0.5`` offset so the truncating int8 cast *is* round-to-nearest on
  the non-negative clipped range — no separate rounding pass.

Where the speed comes from
--------------------------

The fp32 sgemm already runs at machine peak, so int8 cannot reduce the
GEMM's arithmetic cost; the wins are layout and fusion co-design:

* **Collapsed GEMMs per conv** — channel-major activations make the
  batch axis part of the GEMM's N dimension, so a conv is one (or, on
  the stride-1 path, K accumulated) ``(C_out, *) @ (*, OH*N*OW)``
  sgemm over the whole batch instead of the fp32 plan's N small
  per-sample GEMMs.  For deep layers (large C, small H*W) the
  per-sample GEMMs are too skinny for BLAS to block well and
  collapsing them is worth 1.3-1.6x.
* **K-tap gather for stride-1 convs** — the ``(C, H, N, W)`` layout
  lets a stride-1 KxK conv gather only the K *width* taps; the K
  height taps become height-shifted strided views of the gathered
  buffer, fed to K accumulated GEMMs (BLAS consumes the row stride as
  lda at full speed).  3x less gather traffic than K*K-tap im2col —
  this is what rescues the gather-bound early/pruned layers.
* **Bias as a GEMM row** — the gathered matrix gets one constant
  ``1.0`` row and the weight matrix one extra column holding
  ``(b/s_out + 0.5)/r``, so bias add (and ReLU rounding) ride along
  with the GEMM.
* **Fused cast-gather** — the int8->f32 cast happens inside the
  gather (``np.copyto`` with dtype conversion), reading 1 byte where
  the fp32 gather reads 4.
* **Int8 memory traffic** — activations, pad buffers and weights move
  4x fewer bytes between steps.

Implementation note: because the GEMM runs on BLAS, each quantized step
keeps an integer-valued *float32 shadow* of its int8 weights.  The int8
tensors are the deployment artifact (and what
:func:`plan_param_bytes` / the repository's memory accounting count);
the shadow is an emulation cost of this numpy substrate, not of int8
inference in general.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.compile import (
    CompiledModule,
    _FusedConv,
    _FusedDepthwise,
    _LinearStep,
    _MaxPool,
    _ResidualStep,
    _Scratch,
    _Step,
    _iter_steps,
)

__all__ = [
    "QMAX",
    "INT8_ACCURACY_DROP",
    "weight_scales",
    "quantize_per_channel",
    "dequantize_per_channel",
    "activation_scale",
    "quantize_tensor",
    "dequantize_tensor",
    "default_calibration_batch",
    "plan_param_bytes",
    "QuantizedModule",
]

#: symmetric int8 range [-QMAX, QMAX]; -128 is never produced
QMAX = 127

#: clip ceiling that truncates to exactly QMAX after the +0.5 fold
_HI = np.float32(127.49997)

#: documented top-1 accuracy penalty charged to int8 catalog variants
#: (post-training symmetric quantization on these depths loses well
#: under a point; the catalog prices it conservatively)
INT8_ACCURACY_DROP = 0.005


# ----------------------------------------------------------------------
# pure quantize/dequantize primitives (float64 internal math)


def weight_scales(weight: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-channel symmetric scales along ``axis``: ``amax/127``.

    All-zero channels get scale 1.0 so quantization is well defined
    (their int8 values are exactly 0 either way).
    """
    w = np.asarray(weight, dtype=np.float64)
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    amax = np.max(np.abs(w), axis=reduce_axes) if reduce_axes else np.abs(w)
    scales = amax / QMAX
    return np.where(amax > 0.0, scales, 1.0)


def _expand(scales: np.ndarray, ndim: int, axis: int) -> np.ndarray:
    shape = [1] * ndim
    shape[axis] = -1
    return np.asarray(scales, dtype=np.float64).reshape(shape)


def quantize_per_channel(
    weight: np.ndarray, scales: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Symmetric int8 quantization with per-channel ``scales``."""
    w = np.asarray(weight, dtype=np.float64)
    q = np.rint(w / _expand(scales, w.ndim, axis))
    np.clip(q, -QMAX, QMAX, out=q)
    return q.astype(np.int8)


def dequantize_per_channel(
    q: np.ndarray, scales: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Reconstruct float32 values from int8 ``q`` and per-channel scales."""
    w = np.asarray(q, dtype=np.float64) * _expand(scales, q.ndim, axis)
    return w.astype(np.float32)


def activation_scale(x: np.ndarray) -> float:
    """Per-tensor symmetric scale for an activation: ``amax/127``.

    An all-zero (or empty) tensor gets scale 1.0.
    """
    amax = float(np.max(np.abs(x))) if x.size else 0.0
    return amax / QMAX if amax > 0.0 else 1.0


def quantize_tensor(x: np.ndarray, scale: float) -> np.ndarray:
    """Symmetric per-tensor int8 quantization."""
    q = np.rint(np.asarray(x, dtype=np.float64) / float(scale))
    np.clip(q, -QMAX, QMAX, out=q)
    return q.astype(np.int8)


def dequantize_tensor(q: np.ndarray, scale: float) -> np.ndarray:
    """Reconstruct float32 values from per-tensor int8."""
    return (np.asarray(q, dtype=np.float64) * float(scale)).astype(np.float32)


def default_calibration_batch(
    input_shape: tuple[int, ...], n: int = 8, seed: int = 0
) -> np.ndarray:
    """Deterministic standard-normal calibration batch.

    Real deployments calibrate on held-out data; the substrate's models
    are randomly initialized, so a seeded N(0,1) batch is the matching
    input distribution (He-init keeps activation variance stable).
    """
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, *input_shape)).astype(np.float32)


# ----------------------------------------------------------------------
# quantized plan steps
#
# Internal activation format: int8, channel-spatial-major (C, H, N, W)
# for 4-D activations, (N, F) for 2-D.  Every step records the
# per-tensor scale of its int8 output in ``out_scale``.
#
# Why (C, H, N, W): a conv GEMM over this layout emits its output with
# columns ordered (OH, N, OW) — already the next layer's layout — and a
# stride-1 KxK conv needs only K *width* gather taps: the K height taps
# become free strided views of the gathered buffer, consumed by K
# accumulated GEMMs (BLAS takes the row stride as lda, no copy).  That
# cuts im2col traffic 3x for 3x3 convs, which is what dominates the
# early / heavily-pruned layers where the GEMM itself is tiny.


def _requant_params(
    activation: str | None, out_scale: float
) -> tuple[float, np.float32, np.float32]:
    """(half, lo, hi) of the fused requant clip for one step."""
    if activation == "relu":
        return 0.5, np.float32(0.0), _HI
    if activation == "relu6":
        q6 = min(float(QMAX), float(np.rint(6.0 / out_scale)))
        return 0.5, np.float32(0.0), np.float32(q6 + 0.49997)
    return 0.0, np.float32(-QMAX), np.float32(QMAX)


class _QStep(_Step):
    """Base for quantized steps: int8 in/out, channel-major."""

    #: True when this step's output is int8 (channel-major / (N, F))
    quantized_output = True
    in_scale = 1.0
    out_scale = 1.0

    def param_nbytes(self) -> int:
        return 0


class _QuantizeStep(_QStep):
    """Plan entry: fp32 (N, C, H, W) -> int8 (C, H, N, W)."""

    def __init__(self, shape: tuple[int, ...], scale: float) -> None:
        self.out_shape = shape
        self.in_scale = self.out_scale = float(scale)
        self._inv = np.float32(1.0 / scale)
        self.label = "int8.quantize"
        self.tmp_elems = int(np.prod(shape))
        self._bufs: dict[tuple[int, int], np.ndarray] = {}

    def _out(self, scratch: _Scratch) -> np.ndarray:
        out = self._bufs.get(scratch.key)
        if out is None:
            shape = self.out_shape
            if len(shape) == 3:
                out = np.empty(
                    (shape[0], shape[1], scratch.n, shape[2]), dtype=np.int8
                )
            else:
                out = np.empty((scratch.n, *shape), dtype=np.int8)
            self._bufs[scratch.key] = out
        return out

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._out(scratch)
        n = x.shape[0]
        acc = scratch.tmp[: n * self.tmp_elems].reshape(out.shape)
        src = x.transpose(1, 2, 0, 3) if len(self.out_shape) == 3 else x
        np.multiply(src, self._inv, out=acc)
        np.rint(acc, out=acc)
        np.clip(acc, -QMAX, QMAX, out=acc)
        np.copyto(out, acc, casting="unsafe")
        return out

    def release(self) -> None:
        self._bufs.clear()


class _DequantizeStep(_QStep):
    """Plan exit: int8 (C, H, N, W) -> fp32 (N, C, H, W), one fused pass."""

    quantized_output = False

    def __init__(self, shape: tuple[int, ...], scale: float) -> None:
        self.out_shape = shape
        self.in_scale = self.out_scale = float(scale)
        self._scale = np.float32(scale)
        self.label = "int8.dequantize"
        self._bufs: dict[tuple[int, int], np.ndarray] = {}

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._bufs.get(scratch.key)
        if out is None:
            out = np.empty((scratch.n, *self.out_shape), dtype=np.float32)
            self._bufs[scratch.key] = out
        src = x.transpose(2, 0, 1, 3) if len(self.out_shape) == 3 else x
        np.multiply(src, self._scale, out=out)
        return out

    def release(self) -> None:
        self._bufs.clear()


def _conv_scheme(c: int, c_out: int, k: int, s: int, oh: int, ow: int) -> str:
    """Pick the gather/GEMM strategy for an int8 conv, by shape alone.

    Deterministic so identical models always compile identical plans.
    Measured on 1-core OpenBLAS (see PR notes):

    * ``im2col`` — K*K-tap gather + one GEMM.  Wins when C_in is small
      (the gather is cheap and one well-blocked GEMM beats several) and
      is the only option for strided K>1 convs.
    * ``kw`` — K width-taps gathered, K height taps as strided views
      fed to K accumulated GEMMs.  3x less gather traffic; the general
      stride-1 fallback.
    * ``tap`` — no gather at all: K*K shifted *flat views* of the
      padded (C, Hp, N, Wp) buffer, one (C_out, C) GEMM each, trading
      ~(Wp/W) overcompute for zero im2col traffic and a cache-resident
      GEMM operand.  Wins for the narrow-bottleneck convs interior
      pruning creates (C_out << C_in).
    * ``wino4`` / ``wino2`` — Winograd F(4x4,3x3) / F(2x2,3x3): a real
      FLOP reduction (4x / 2.25x fewer multiplies), the only lever on
      the square convs whose direct GEMM already runs at machine peak.
      Both tile transforms are expressed as single GEMMs over the tap
      axis, so the whole conv is BLAS end to end.
    """
    if k == 1:
        return "direct"
    if s != 1:
        return "im2col"
    if c <= 32 and c_out >= 2 * c:
        return "im2col"
    if 4 * c_out <= c and oh >= 8:
        return "tap"
    if k == 3:
        if oh % 4 == 0 and ow % 4 == 0 and min(oh, ow) >= 8:
            return "wino4"
        # At tiny tile counts the r^2 transform GEMMs go skinny; F(2,3)
        # only pays off when both channel dims keep the GEMMs fat.
        if oh % 2 == 0 and ow % 2 == 0 and min(oh, ow) >= 4 and min(c, c_out) >= 128:
            return "wino2"
    return "kw"


# Winograd F(m x m, 3 x 3) transform matrices.  The m=2 set is exact in
# f32 on integer-valued operands; the m=4 set has 1/6-style entries
# whose relative error (~5e-6, <0.001 requant LSB) is negligible
# against the int8 quantization noise, and is bit-deterministic.
_WINO_BT = {
    2: np.array(
        [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]],
        dtype=np.float64,
    ),
    4: np.array(
        [
            [4, 0, -5, 0, 1, 0],
            [0, -4, -4, 1, 1, 0],
            [0, 4, -4, -1, 1, 0],
            [0, -2, -1, 2, 1, 0],
            [0, 2, -1, -2, 1, 0],
            [0, 4, 0, -5, 0, 1],
        ],
        dtype=np.float64,
    ),
}
_WINO_AT = {
    2: np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=np.float64),
    4: np.array(
        [
            [1, 1, 1, 1, 1, 0],
            [0, 1, -1, 2, -2, 0],
            [0, 1, 1, 4, 4, 0],
            [0, 1, -1, 8, -8, 1],
        ],
        dtype=np.float64,
    ),
}
_WINO_G = {
    2: np.array(
        [[1, 0, 0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0, 0, 1]],
        dtype=np.float64,
    ),
    4: np.array(
        [
            [1 / 4, 0, 0],
            [-1 / 6, -1 / 6, -1 / 6],
            [-1 / 6, 1 / 6, -1 / 6],
            [1 / 24, 1 / 12, 1 / 6],
            [1 / 24, -1 / 12, 1 / 6],
            [0, 0, 1],
        ],
        dtype=np.float64,
    ),
}


class _QuantConv(_QStep):
    """int8 conv (+ folded BN bias) + fused requant/activation clip.

    Collapsed sgemm(s) over the whole batch; the gather/GEMM strategy
    is chosen per shape by :func:`_conv_scheme`.  For the gathered
    schemes the last gathered row/plane is constant 1.0 and the
    matching extra weight column carries ``(bias/s_out + half)/r``, so
    bias add and ReLU rounding ride along with the (first) GEMM; the
    gather-free ``tap`` scheme adds the bias in the requant pass.
    """

    def __init__(
        self, src: _FusedConv, in_scale: float, out_scale: float, scheme: str
    ) -> None:
        c_out, kd = src.w_mat.shape
        self.w_scales = weight_scales(src.w_mat, axis=0)
        self.w8 = quantize_per_channel(src.w_mat, self.w_scales, axis=0)
        self.in_scale = float(in_scale)
        self.out_scale = float(out_scale)
        r64 = self.w_scales * (self.in_scale / self.out_scale)
        self.r = r64.astype(np.float32).reshape(-1, 1)
        half, self.lo, self.hi = _requant_params(src.activation, self.out_scale)
        self.rounded = half > 0.0  # +0.5 fold replaces the rint pass
        bias = np.zeros(c_out) if src.bias is None else src.bias.astype(np.float64)
        bias_col = ((bias / self.out_scale + half) / r64).astype(np.float32)
        k, s = src.kernel, src.stride
        c, h, w = src.in_shape
        self.kernel, self.stride, self.padding = k, s, src.padding
        self.in_shape = src.in_shape
        self.out_shape = src.out_shape
        self.kd = kd
        self.label = f"int8.{src.label}"
        oh, ow = self.out_shape[1], self.out_shape[2]
        hp = h + 2 * self.padding
        wp = w + 2 * self.padding
        self.scheme = scheme
        if self.scheme == "kw":
            # per-height-tap weight slices: w_mat columns are (c, i, j)
            # ordered; GEMM i needs the (c, j) block in c*K + j order.
            w4 = self.w8.astype(np.float32).reshape(c_out, c, k, k)
            first = w4[:, :, 0, :].reshape(c_out, c * k)
            self.wf0 = np.ascontiguousarray(
                np.concatenate([first, bias_col.reshape(-1, 1)], axis=1)
            )
            self.w_rest = [
                np.ascontiguousarray(w4[:, :, i, :].reshape(c_out, c * k))
                for i in range(1, k)
            ]
            self.cols_elems = (c * k + 1) * hp * ow
            self.tmp_elems = 2 * c_out * oh * ow  # acc + GEMM partner
        elif self.scheme == "tap":
            w4 = self.w8.astype(np.float32).reshape(c_out, c, k, k)
            self.w_taps = [
                np.ascontiguousarray(w4[:, :, i, j])
                for i in range(k)
                for j in range(k)
            ]
            self.bias_add = ((bias / self.out_scale) + half).astype(
                np.float32
            ).reshape(-1, 1)
            self.cols_elems = c * hp * wp
            self.tmp_elems = 2 * c_out * oh * wp  # acc + GEMM partner
        else:
            wf = np.empty((c_out, kd + 1), dtype=np.float32)
            wf[:, :kd] = self.w8
            wf[:, kd] = bias_col
            self.wf = wf
            self.cols_elems = (kd + 1) * oh * ow
            self.tmp_elems = c_out * oh * ow
        self._bufs: dict[tuple[int, int], tuple] = {}

    def param_nbytes(self) -> int:
        # int8 weights + f32 per-channel scales + f32 bias column
        return self.w8.nbytes + 2 * 4 * self.w8.shape[0]

    def _buffers(self, scratch: _Scratch) -> tuple:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            c, h, w = self.in_shape
            pad = None
            if self.padding:
                pad = np.zeros(
                    (c, h + 2 * self.padding, n, w + 2 * self.padding),
                    dtype=np.int8,
                )
            out = np.empty(
                (self.out_shape[0], self.out_shape[1], n, self.out_shape[2]),
                dtype=np.int8,
            )
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, p : p + h, :, p : p + w] = x
            x = pad
        n = x.shape[2]
        c = self.in_shape[0]
        c_out = self.out_shape[0]
        oh, ow = self.out_shape[1], self.out_shape[2]
        np_out = oh * n * ow
        k, s = self.kernel, self.stride
        if self.scheme == "kw":
            hp = x.shape[1]
            ck = c * k
            acc = scratch.tmp[: c_out * np_out].reshape(c_out, np_out)
            colsw = scratch.cols[: (ck + 1) * hp * n * ow].reshape(
                ck + 1, hp, n * ow
            )
            cw = colsw[:ck].reshape(c, k, hp, n, ow)
            for j in range(k):
                np.copyto(cw[:, j], x[:, :, :, j : j + ow])
            colsw[ck].fill(1.0)
            # K height taps = K strided views of the gathered buffer,
            # one accumulated GEMM each; tap 0 carries bias + ones row.
            a0 = colsw[:, :oh, :].reshape(ck + 1, np_out)
            np.matmul(self.wf0, a0, out=acc)
            part = scratch.tmp[c_out * np_out : 2 * c_out * np_out].reshape(
                c_out, np_out
            )
            for i in range(1, k):
                ai = colsw[:ck, i : i + oh, :].reshape(ck, np_out)
                np.matmul(self.w_rest[i - 1], ai, out=part)
                np.add(acc, part, out=acc)
        elif self.scheme == "tap":
            hp, wp = x.shape[1], x.shape[3]
            tot = hp * n * wp
            span = (oh * n - 1) * wp + ow  # flat cols covering the output
            xf = scratch.cols[: c * tot].reshape(c, tot)
            np.copyto(xf.reshape(x.shape), x)
            acc = scratch.tmp[: c_out * span].reshape(c_out, span)
            part = scratch.tmp[c_out * span : 2 * c_out * span].reshape(
                c_out, span
            )
            # K*K shifted flat views of the SAME cache-resident buffer;
            # off-image columns are overcomputed garbage, masked by the
            # strided output extraction below.
            np.matmul(self.w_taps[0], xf[:, :span], out=acc)
            tap = 1
            for i in range(k):
                for j in range(k):
                    if i == 0 and j == 0:
                        continue
                    off = i * n * wp + j
                    np.matmul(self.w_taps[tap], xf[:, off : off + span], out=part)
                    np.add(acc, part, out=acc)
                    tap += 1
            np.multiply(acc, self.r, out=acc)
            np.add(acc, self.bias_add, out=acc)
            if not self.rounded:
                np.rint(acc, out=acc)
            np.clip(acc, self.lo, self.hi, out=acc)
            valid = np.lib.stride_tricks.as_strided(
                acc,
                shape=(c_out, oh, n, ow),
                strides=(acc.strides[0], n * wp * 4, wp * 4, 4),
            )
            np.copyto(out, valid, casting="unsafe")
            return out
        else:
            acc = scratch.tmp[: c_out * np_out].reshape(c_out, np_out)
            cols = scratch.cols[: (self.kd + 1) * np_out].reshape(
                self.kd + 1, np_out
            )
            if k == 1 and s == 1:
                np.copyto(cols[: self.kd], x.reshape(c, np_out))
            elif k == 1:
                view = x[:, ::s, :, ::s][:, :oh, :, :ow]
                np.copyto(cols[: self.kd].reshape(c, oh, n, ow), view)
            else:
                c3 = cols[: self.kd].reshape(c, k * k, oh, n, ow)
                tap = 0
                for i in range(k):
                    rows = slice(i, i + s * (oh - 1) + 1, s)
                    for j in range(k):
                        cc = slice(j, j + s * (ow - 1) + 1, s)
                        np.copyto(c3[:, tap], x[:, rows, :, cc])
                        tap += 1
            cols[self.kd].fill(1.0)
            np.matmul(self.wf, cols, out=acc)
        np.multiply(acc, self.r, out=acc)
        if not self.rounded:
            np.rint(acc, out=acc)
        np.clip(acc, self.lo, self.hi, out=acc)
        np.copyto(out.reshape(c_out, np_out), acc, casting="unsafe")
        return out

    def release(self) -> None:
        self._bufs.clear()


class _QuantWinoConv(_QStep):
    """int8 3x3 stride-1 conv via Winograd F(m x m, 3 x 3), m in {2, 4}.

    The square convs that dominate unpruned ResNet stages are compute
    bound — their direct GEMM already runs at machine peak, so no data
    layout can speed them up.  Winograd is the remaining lever: F(2,3)
    does 2.25x and F(4,3) 4x fewer multiplies per output.  Everything
    is staged as GEMMs so BLAS does all the work:

    1. gather r^2 = (m+2)^2 shifted tile taps ``D (r^2, C*T)`` from the
       padded int8 input (T = tiles_h * N * tiles_w), casting once;
    2. input transform = ONE GEMM ``V = (B^T (x) B^T) @ D`` using the
       precomputed Kronecker matrix ``B2 (r^2, r^2)``;
    3. r^2 per-tap GEMMs ``M[q] = U[q] (C_out, C) @ V[q] (C, T)``;
    4. output transform = ONE GEMM ``Y = (A^T (x) A^T) @ M``;
    5. fused requant (+bias, +ReLU clip) on Y, then m^2 strided int8
       scatters into the channel-major output.

    Transformed weights ``U`` are computed in f64 from the *quantized*
    int8 weights, so the result matches direct int8 convolution up to
    f32 transform rounding (measured < 1e-3 of one requant LSB for
    F(4,3); F(2,3) is exact on integer data).  Deterministic.
    """

    def __init__(
        self, src: _FusedConv, in_scale: float, out_scale: float, m: int
    ) -> None:
        c_out, kd = src.w_mat.shape
        self.w_scales = weight_scales(src.w_mat, axis=0)
        self.w8 = quantize_per_channel(src.w_mat, self.w_scales, axis=0)
        self.in_scale = float(in_scale)
        self.out_scale = float(out_scale)
        r64 = self.w_scales * (self.in_scale / self.out_scale)
        self.r = r64.astype(np.float32).reshape(-1, 1)
        half, self.lo, self.hi = _requant_params(src.activation, self.out_scale)
        self.rounded = half > 0.0
        bias = np.zeros(c_out) if src.bias is None else src.bias.astype(np.float64)
        self.bias_add = ((bias / self.out_scale) + half).astype(
            np.float32
        ).reshape(-1, 1)
        c, h, w = src.in_shape
        self.kernel, self.stride, self.padding = src.kernel, src.stride, src.padding
        self.in_shape = src.in_shape
        self.out_shape = src.out_shape
        self.label = f"int8.{src.label}"
        self.m = m
        r = m + 2
        self.rr = r * r
        oh, ow = self.out_shape[1], self.out_shape[2]
        self.th, self.tw = oh // m, ow // m
        # Kronecker transform matrices: tile transforms become one GEMM
        # over the flattened (r^2 | m^2) tap axis.
        bt = _WINO_BT[m]
        at = _WINO_AT[m]
        g = _WINO_G[m]
        self.b2 = np.kron(bt, bt).astype(np.float32)
        self.a2 = np.kron(at, at).astype(np.float32)
        w4 = self.w8.astype(np.float64).reshape(c_out, c, 3, 3)
        u = np.einsum("ai,ocij,bj->aboc", g, w4, g).reshape(self.rr, c_out, c)
        self.u_taps = [
            np.ascontiguousarray(u[q].astype(np.float32)) for q in range(self.rr)
        ]
        t_spatial = self.th * self.tw
        self.cols_elems = 2 * self.rr * c * t_spatial  # D + V
        self.tmp_elems = (self.rr + m * m) * c_out * t_spatial  # M + Y
        self._bufs: dict[tuple[int, int], tuple] = {}

    def param_nbytes(self) -> int:
        return self.w8.nbytes + 2 * 4 * self.w8.shape[0]

    def _buffers(self, scratch: _Scratch) -> tuple:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            c, h, w = self.in_shape
            pad = None
            if self.padding:
                pad = np.zeros(
                    (c, h + 2 * self.padding, n, w + 2 * self.padding),
                    dtype=np.int8,
                )
            out = np.empty(
                (self.out_shape[0], self.out_shape[1], n, self.out_shape[2]),
                dtype=np.int8,
            )
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, p : p + h, :, p : p + w] = x
            x = pad
        n = x.shape[2]
        c = self.in_shape[0]
        c_out = self.out_shape[0]
        m, r, rr = self.m, self.m + 2, self.rr
        th, tw = self.th, self.tw
        t = th * n * tw
        dv = scratch.cols[: 2 * rr * c * t].reshape(2, rr, c * t)
        d, v = dv[0], dv[1]
        dr = d.reshape(r, r, c, th, n, tw)
        # r^2 shifted tile taps; the strided int8 -> f32 copy is the
        # only gather in the whole conv.
        for a in range(r):
            for b in range(r):
                np.copyto(dr[a, b], x[:, a : a + m * th : m, :, b : b + m * tw : m])
        np.matmul(self.b2, d, out=v)  # input transform, one GEMM
        vv = v.reshape(rr, c, t)
        mm = scratch.tmp[: rr * c_out * t].reshape(rr, c_out, t)
        for q in range(rr):  # the 4x-fewer-FLOPs GEMMs
            np.matmul(self.u_taps[q], vv[q], out=mm[q])
        y = scratch.tmp[rr * c_out * t : (rr + m * m) * c_out * t].reshape(
            m * m, c_out * t
        )
        np.matmul(self.a2, mm.reshape(rr, c_out * t), out=y)  # output transform
        yv = y.reshape(m * m, c_out, t)
        np.multiply(yv, self.r, out=yv)
        np.add(yv, self.bias_add, out=yv)
        if not self.rounded:
            np.rint(yv, out=yv)
        np.clip(yv, self.lo, self.hi, out=yv)
        # scatter the m x m intra-tile positions back to channel-major
        ov = out.reshape(c_out, th, m, n, tw, m)
        y6 = yv.reshape(m, m, c_out, th, n, tw)
        for i in range(m):
            for j in range(m):
                np.copyto(ov[:, :, i, :, :, j], y6[i, j], casting="unsafe")
        return out

    def release(self) -> None:
        self._bufs.clear()


class _QuantDepthwise(_QStep):
    """int8 depthwise conv + fused requant, batched over channels.

    Channel-major layout turns the depthwise conv into ONE batched GEMM
    ``(C, 1, K*K+1) @ (C, K*K+1, N*OH*OW)`` over the whole batch — the
    fp32 plan loops per sample.  Bias rides along as a constant row per
    channel, exactly like :class:`_QuantConv`.
    """

    def __init__(
        self, src: _FusedDepthwise, in_scale: float, out_scale: float
    ) -> None:
        c = src.w_mat.shape[0]
        kk = src.w_mat.shape[2]
        flat = src.w_mat.reshape(c, kk)
        self.w_scales = weight_scales(flat, axis=0)
        self.w8 = quantize_per_channel(flat, self.w_scales, axis=0)
        self.in_scale = float(in_scale)
        self.out_scale = float(out_scale)
        r64 = self.w_scales * (self.in_scale / self.out_scale)
        self.r = r64.astype(np.float32).reshape(c, 1, 1)
        half, self.lo, self.hi = _requant_params(src.activation, self.out_scale)
        self.rounded = half > 0.0
        bias = np.zeros(c) if src.bias is None else src.bias.astype(np.float64)
        wf = np.empty((c, 1, kk + 1), dtype=np.float32)
        wf[:, 0, :kk] = self.w8
        wf[:, 0, kk] = ((bias / self.out_scale + half) / r64).astype(np.float32)
        self.wf = wf
        self.kk = kk
        self.kernel = src.kernel
        self.stride = src.stride
        self.padding = src.padding
        self.in_shape = src.in_shape
        self.out_shape = src.out_shape
        self.label = f"int8.{src.label}"
        p = self.out_shape[1] * self.out_shape[2]
        self.cols_elems = c * (kk + 1) * p
        self.tmp_elems = c * p
        self._bufs: dict[tuple[int, int], tuple] = {}

    def param_nbytes(self) -> int:
        return self.w8.nbytes + 2 * 4 * self.w8.shape[0]

    def _buffers(self, scratch: _Scratch) -> tuple:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            c, h, w = self.in_shape
            pad = None
            if self.padding:
                pad = np.zeros(
                    (c, h + 2 * self.padding, n, w + 2 * self.padding),
                    dtype=np.int8,
                )
            out = np.empty(
                (c, self.out_shape[1], n, self.out_shape[2]), dtype=np.int8
            )
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, p : p + h, :, p : p + w] = x
            x = pad
        n = x.shape[2]
        c = self.in_shape[0]
        oh, ow = self.out_shape[1], self.out_shape[2]
        np_out = oh * n * ow
        cols = scratch.cols[: c * (self.kk + 1) * np_out].reshape(
            c, self.kk + 1, np_out
        )
        k, s = self.kernel, self.stride
        c4 = cols[:, : self.kk].reshape(c, self.kk, oh, n, ow)
        tap = 0
        for i in range(k):
            rows = slice(i, i + s * (oh - 1) + 1, s)
            for j in range(k):
                cc = slice(j, j + s * (ow - 1) + 1, s)
                np.copyto(c4[:, tap], x[:, rows, :, cc])
                tap += 1
        cols[:, self.kk].fill(1.0)
        acc = scratch.tmp[: c * np_out].reshape(c, 1, np_out)
        np.matmul(self.wf, cols, out=acc)
        np.multiply(acc, self.r, out=acc)
        if not self.rounded:
            np.rint(acc, out=acc)
        np.clip(acc, self.lo, self.hi, out=acc)
        np.copyto(out.reshape(c, 1, np_out), acc, casting="unsafe")
        return out

    def release(self) -> None:
        self._bufs.clear()


class _QuantMaxPool(_QStep):
    """Tap-wise int8 max — max commutes with the (positive) scale, so
    the output keeps the input's scale and the pool is exact."""

    def __init__(self, src: _MaxPool, scale: float) -> None:
        self.in_scale = self.out_scale = float(scale)
        self.kernel = src.kernel
        self.stride = src.stride
        self.padding = src.padding
        self.in_shape = src.in_shape
        self.out_shape = src.out_shape
        self.label = f"int8.{src.label}"
        self._bufs: dict[tuple[int, int], tuple] = {}

    def _buffers(self, scratch: _Scratch) -> tuple:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            c, h, w = self.in_shape
            pad = None
            if self.padding:
                # zero padding: int8 0 is exactly fp32 0.0 under a
                # symmetric scale, matching the eager kernel's pad
                pad = np.zeros(
                    (c, h + 2 * self.padding, n, w + 2 * self.padding),
                    dtype=np.int8,
                )
            out = np.empty(
                (c, self.out_shape[1], n, self.out_shape[2]), dtype=np.int8
            )
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, p : p + h, :, p : p + w] = x
            x = pad
        oh, ow = self.out_shape[1], self.out_shape[2]
        s = self.stride
        first = True
        for i in range(self.kernel):
            rows = slice(i, i + s * (oh - 1) + 1, s)
            for j in range(self.kernel):
                cc = slice(j, j + s * (ow - 1) + 1, s)
                window = x[:, rows, :, cc]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out

    def release(self) -> None:
        self._bufs.clear()


class _QuantLinear(_QStep):
    """int8 linear: int8 (N, F) in, fp32 logits (N, out) out."""

    quantized_output = False

    def __init__(self, src: _LinearStep, in_scale: float) -> None:
        # src.w_t is (F, out); per-output-channel scales reduce over F
        self.w_scales = weight_scales(src.w_t, axis=1)
        self.w8 = np.ascontiguousarray(
            quantize_per_channel(src.w_t, self.w_scales, axis=1).T
        )  # (out, F) artifact layout
        self.wf = np.ascontiguousarray(self.w8.T, dtype=np.float32)
        self.in_scale = float(in_scale)
        self.r = (self.w_scales * self.in_scale).astype(np.float32)
        self.bias = src.bias
        self.out_shape = src.out_shape
        self.label = "int8.linear"
        self.cols_elems = src.w_t.shape[0]
        self._bufs: dict[tuple[int, int], np.ndarray] = {}

    def param_nbytes(self) -> int:
        return self.w8.nbytes + 4 * self.w8.shape[0] + self.bias.nbytes

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._bufs.get(scratch.key)
        if out is None:
            out = np.empty((scratch.n, *self.out_shape), dtype=np.float32)
            self._bufs[scratch.key] = out
        n, f = x.shape
        xf = scratch.cols[: n * f].reshape(n, f)
        np.copyto(xf, x)
        np.matmul(xf, self.wf, out=out)
        np.multiply(out, self.r, out=out)
        out += self.bias
        return out

    def release(self) -> None:
        self._bufs.clear()


class _QuantResidual(_QStep):
    """Residual merge in the int8 domain.

    Body and shortcut run as quantized sub-plans; the merge rescales
    both int8 operands into the result's scale in one f32 accumulator
    (``q_out = clip(q_body*s_b/s_res + q_id*s_id/s_res + 0.5)``), fusing
    add + ReLU + requantization into a handful of elementwise passes.
    """

    def __init__(
        self,
        body: list[_Step],
        shortcut: list[_Step] | None,
        activation: str,
        out_shape: tuple[int, ...],
        in_scale: float,
        body_scale: float,
        shortcut_scale: float,
        out_scale: float,
    ) -> None:
        self.body = body
        self.shortcut = shortcut
        self.activation = activation
        self.out_shape = out_shape
        self.in_scale = float(in_scale)
        self.out_scale = float(out_scale)
        self.c_body = np.float32(body_scale / out_scale)
        self.c_short = np.float32(shortcut_scale / out_scale)
        half, self.lo, self.hi = _requant_params(activation or None, out_scale)
        self.half = np.float32(half)
        self.rounded = half > 0.0
        self.label = f"int8.residual+{activation}" if activation else "int8.residual"
        self.tmp_elems = 2 * int(np.prod(out_shape))
        self._bufs: dict[tuple[int, int], np.ndarray] = {}

    def sub_plans(self) -> list[list[_Step]]:
        return [self.body] + ([self.shortcut] if self.shortcut else [])

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        identity = x
        for step in self.shortcut or ():
            identity = step.run(identity, scratch)
        out8 = x
        for step in self.body:
            out8 = step.run(out8, scratch)
        out = self._bufs.get(scratch.key)
        if out is None:
            c, h, w = self.out_shape
            out = np.empty((c, h, scratch.n, w), dtype=np.int8)
            self._bufs[scratch.key] = out
        elems = out.size
        acc = scratch.tmp[:elems].reshape(out.shape)
        idf = scratch.tmp[elems : 2 * elems].reshape(out.shape)
        np.multiply(out8, self.c_body, out=acc)
        np.multiply(identity, self.c_short, out=idf)
        np.add(acc, idf, out=acc)
        if self.rounded:
            np.add(acc, self.half, out=acc)
        else:
            np.rint(acc, out=acc)
        np.clip(acc, self.lo, self.hi, out=acc)
        np.copyto(out, acc, casting="unsafe")
        return out

    def release(self) -> None:
        self._bufs.clear()
        for step in self.body:
            step.release()
        for step in self.shortcut or ():
            step.release()


# ----------------------------------------------------------------------
# calibration + plan transform


def _record_amax(
    steps: list[_Step], x: np.ndarray, scratch: _Scratch, amax: dict[int, float]
) -> np.ndarray:
    """Run fp32 ``steps`` on ``x``, recording each step's output amax."""
    for step in steps:
        if isinstance(step, _ResidualStep):
            identity = x
            if step.shortcut is not None:
                identity = _record_amax(step.shortcut, x, scratch, amax)
            out = _record_amax(step.body, x, scratch, amax)
            merged = out + identity
            if step.activation == "relu":
                np.maximum(merged, 0.0, out=merged)
            amax[id(step)] = float(np.max(np.abs(merged)))
            x = merged
        else:
            x = step.run(x, scratch)
            amax[id(step)] = float(np.max(np.abs(x)))
    return x


def _scale_from_amax(value: float) -> float:
    return value / QMAX if value > 0.0 else 1.0


def _quantizable(step: _Step) -> bool:
    if isinstance(step, (_FusedConv, _FusedDepthwise, _MaxPool)):
        return True
    if isinstance(step, _ResidualStep):
        return all(_quantizable(s) for s in step.body) and all(
            _quantizable(s) for s in (step.shortcut or ())
        )
    return False


def _quantize_chain(
    steps: list[_Step], in_scale: float, amax: dict[int, float]
) -> tuple[list[_Step], float, bool]:
    """Quantize a fully-quantizable chain; returns (steps, out_scale, open).

    ``open`` is False when the chain ended in an fp32-producing step
    (a quantized linear), True when its output is still int8.
    """
    out: list[_Step] = []
    scale = in_scale
    for step in steps:
        if isinstance(step, _FusedConv):
            s_out = _scale_from_amax(amax[id(step)])
            scheme = _conv_scheme(
                step.in_shape[0],
                step.out_shape[0],
                step.kernel,
                step.stride,
                step.out_shape[1],
                step.out_shape[2],
            )
            if scheme in ("wino4", "wino2"):
                out.append(
                    _QuantWinoConv(step, scale, s_out, 4 if scheme == "wino4" else 2)
                )
            else:
                out.append(_QuantConv(step, scale, s_out, scheme))
            scale = s_out
        elif isinstance(step, _FusedDepthwise):
            s_out = _scale_from_amax(amax[id(step)])
            out.append(_QuantDepthwise(step, scale, s_out))
            scale = s_out
        elif isinstance(step, _MaxPool):
            out.append(_QuantMaxPool(step, scale))
        elif isinstance(step, _LinearStep):
            out.append(_QuantLinear(step, scale))
            return out, scale, False
        elif isinstance(step, _ResidualStep):
            body, body_scale, _ = _quantize_chain(step.body, scale, amax)
            shortcut = None
            short_scale = scale
            if step.shortcut is not None:
                shortcut, short_scale, _ = _quantize_chain(
                    step.shortcut, scale, amax
                )
            s_out = _scale_from_amax(amax[id(step)])
            out.append(
                _QuantResidual(
                    body,
                    shortcut,
                    step.activation,
                    step.out_shape,
                    scale,
                    body_scale,
                    short_scale,
                    s_out,
                )
            )
            scale = s_out
        else:  # pragma: no cover - guarded by _quantizable
            raise TypeError(f"cannot quantize step {step.label}")
    return out, scale, True


def _quantize_plan(
    steps: list[_Step],
    input_shape: tuple[int, ...],
    in_scale: float,
    amax: dict[int, float],
) -> tuple[list[_Step], int]:
    """Rewrite the longest quantizable prefix of ``steps`` into int8.

    Returns the new plan plus the number of quantized compute steps; a
    plan with no quantizable prefix is returned unchanged.  A linear
    layer inside the prefix already emits fp32, so no dequantize step
    is needed after it; otherwise the prefix is closed with an explicit
    :class:`_DequantizeStep` back to the fp32 NCHW layout.
    """
    prefix = 0
    while prefix < len(steps) and _quantizable(steps[prefix]):
        prefix += 1
    # a linear layer can terminate the quantized prefix (it emits fp32)
    if prefix < len(steps) and isinstance(steps[prefix], _LinearStep):
        prefix += 1
    if prefix == 0 or not any(
        not isinstance(s, _MaxPool) for s in steps[:prefix]
    ):
        return steps, 0
    qsteps: list[_Step] = [_QuantizeStep(input_shape, in_scale)]
    chain, scale, open_chain = _quantize_chain(steps[:prefix], in_scale, amax)
    qsteps.extend(chain)
    if open_chain:
        qsteps.append(_DequantizeStep(chain[-1].out_shape, scale))
    qsteps.extend(steps[prefix:])
    return qsteps, prefix


def plan_param_bytes(plan: CompiledModule) -> int:
    """Bytes of the plan's deployed weight artifact.

    Quantized steps count int8 weights + float32 scale/bias vectors;
    fp32 steps count their laid-out float32 tensors.  This is the
    dtype-aware ``m(s)`` input the repository uses (the f32 GEMM shadow
    of quantized weights is an emulation artifact and NOT counted; see
    the module docstring).
    """
    total = 0
    for step in _iter_steps(plan.steps):
        counter = getattr(step, "param_nbytes", None)
        if counter is not None:
            total += int(counter())
            continue
        for attr in ("w_mat", "w_t", "bias", "scale", "shift"):
            tensor = getattr(step, attr, None)
            if isinstance(tensor, np.ndarray):
                total += tensor.nbytes
        layer = getattr(step, "layer", None)
        if layer is not None:
            total += sum(int(p.nbytes) for p in layer.parameters())
    return total


class QuantizedModule(CompiledModule):
    """An int8 execution plan — a drop-in :class:`CompiledModule`.

    Compiles the fp32 plan, calibrates activation scales on
    ``calibration`` (a batch shaped ``(n, *input_shape)``; a seeded
    standard-normal batch by default), then rewrites the longest
    quantizable prefix into int8 steps.  ``forward`` keeps the fp32
    in/out contract; step labels carry an ``int8.`` prefix so traces
    distinguish quantized from fp32 plan steps.
    """

    kind = "compiled-int8"
    precision = "int8"

    def __init__(
        self,
        source,
        input_shape: tuple[int, ...],
        calibration: np.ndarray | None = None,
    ) -> None:
        super().__init__(source, input_shape)
        if calibration is None:
            calibration = default_calibration_batch(self.input_shape)
        calibration = np.ascontiguousarray(calibration, dtype=np.float32)
        if tuple(calibration.shape[1:]) != self.input_shape:
            raise ValueError(
                f"calibration batch shaped {calibration.shape} does not "
                f"match input shape {self.input_shape}"
            )
        scratch = _Scratch(
            (-1, calibration.shape[0]),
            calibration.shape[0],
            self._cols_elems,
            self._tmp_elems,
        )
        amax: dict[int, float] = {}
        _record_amax(self.steps, calibration, scratch, amax)
        for step in _iter_steps(self.steps):
            step.release()
        self.input_scale = activation_scale(calibration)
        self.steps, self.quantized_steps = _quantize_plan(
            self.steps, self.input_shape, self.input_scale, amax
        )
        self._cols_elems = max(
            (s.cols_elems for s in _iter_steps(self.steps)), default=0
        )
        self._tmp_elems = max(
            (s.tmp_elems for s in _iter_steps(self.steps)), default=0
        )
        self._scratch = {}

    def param_bytes(self) -> int:
        """Dtype-aware weight bytes of the deployed plan."""
        return plan_param_bytes(self)
