"""ResNet-18 built from the numpy engine.

The paper treats ResNet-18 as a *feature extractor* composed of layer-
blocks: a stem, four residual stages (``layer1`` .. ``layer4``) and a
classifier head.  Table I's CONFIG A..E freeze/fine-tune/prune these
blocks; the DOT catalog treats them as the shareable units ``s^d``.

The canonical ImageNet geometry (input 224x224) is supported, but the
default input resolution is configurable so that tests and benchmarks can
run quickly on CPU while preserving the architecture arithmetic (channel
doubling, stride-2 downsampling, identity/projection shortcuts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.graph import NamedModule, Residual, Sequential
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = [
    "BlockwiseModel",
    "ResNet18",
    "build_resnet18",
    "basic_block",
    "BLOCK_NAMES",
]

#: Order of the shareable layer-blocks, stem first.
BLOCK_NAMES = ("stem", "layer1", "layer2", "layer3", "layer4", "head")


def basic_block(
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> Residual:
    """A ResNet *BasicBlock*: two 3x3 convolutions + shortcut."""
    body = Sequential(
        Conv2d(in_channels, out_channels, kernel=3, stride=stride, padding=1, rng=rng),
        BatchNorm2d(out_channels),
        ReLU(),
        Conv2d(out_channels, out_channels, kernel=3, stride=1, padding=1, rng=rng),
        BatchNorm2d(out_channels),
    )
    shortcut: Sequential | None = None
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            Conv2d(in_channels, out_channels, kernel=1, stride=stride, padding=0, rng=rng),
            BatchNorm2d(out_channels),
        )
    return Residual(body, shortcut)


@dataclass
class BlockwiseModel:
    """A feature-extractor CNN assembled from named layer-blocks.

    The container is architecture agnostic (ResNet-18 and MobileNetV2
    both use it): what matters to the rest of the system is the
    partition into the shareable blocks of ``BLOCK_NAMES``.

    Attributes
    ----------
    blocks:
        Mapping block name -> :class:`NamedModule`, in ``BLOCK_NAMES``
        order.  ``head`` contains global pooling + the linear classifier.
    input_shape:
        (C, H, W) the model expects.
    num_classes:
        Size of the classifier output.
    """

    blocks: dict[str, NamedModule]
    input_shape: tuple[int, int, int]
    num_classes: int
    width: int = 64
    _as_sequential: Sequential = field(init=False, repr=False)

    def __post_init__(self) -> None:
        missing = [n for n in BLOCK_NAMES if n not in self.blocks]
        if missing:
            raise ValueError(f"missing blocks: {missing}")
        self._as_sequential = Sequential(*[self.blocks[n] for n in BLOCK_NAMES])

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass: images (N, C, H, W) -> logits (N, K)."""
        return self._as_sequential(x)

    __call__ = forward

    def features(self, x: np.ndarray) -> np.ndarray:
        """Forward through all blocks except the head -> (N, C, H, W)."""
        for name in BLOCK_NAMES[:-1]:
            x = self.blocks[name](x)
        return x

    def block_input_shape(self, name: str) -> tuple[int, ...]:
        """Input shape (no batch dim) seen by block ``name``."""
        shape: tuple[int, ...] = self.input_shape
        for block_name in BLOCK_NAMES:
            if block_name == name:
                return shape
            shape = self.blocks[block_name].output_shape(shape)
        raise KeyError(name)

    def param_count(self) -> int:
        return sum(b.param_count() for b in self.blocks.values())

    def flops(self) -> int:
        return self._as_sequential.flops(self.input_shape)

    def compile(self, quantize: str | None = None, calibration=None):
        """Compile the full model into a fused execution plan.

        Returns a :class:`repro.dnn.compile.CompiledModule` over the
        whole block sequence at this model's ``input_shape``.  The plan
        snapshots current weights; re-compile after pruning/fine-tuning.
        ``quantize="int8"`` emits an int8
        :class:`repro.dnn.quantize.QuantizedModule` instead.
        """
        from repro.dnn.compile import compile_module

        return compile_module(self, quantize=quantize, calibration=calibration)


#: Backwards-compatible alias: ResNet-18 was the first architecture
#: built on this container.
ResNet18 = BlockwiseModel


def build_resnet18(
    num_classes: int = 60,
    input_size: int = 32,
    width: int = 64,
    seed: int = 0,
) -> ResNet18:
    """Construct a ResNet-18.

    Parameters
    ----------
    num_classes:
        Classifier output size (the base dataset of Table II has 60).
    input_size:
        Square input resolution.  224 reproduces the ImageNet geometry;
        the default 32 keeps CPU profiling fast while preserving the
        relative block costs.
    width:
        Stem channel count (64 in the standard model).  Smaller widths
        scale every stage proportionally — useful for fast tests.
    seed:
        Seed for weight initialization.
    """
    if input_size < 8:
        raise ValueError("input_size must be >= 8")
    rng = np.random.default_rng(seed)
    w = width
    # For small inputs (CIFAR-style), use a 3x3 stem without max pooling,
    # the standard adaptation; for >= 64 px use the ImageNet 7x7 stem.
    if input_size >= 64:
        stem = NamedModule(
            "stem",
            Conv2d(3, w, kernel=7, stride=2, padding=3, rng=rng),
            BatchNorm2d(w),
            ReLU(),
            MaxPool2d(kernel=3, stride=2, padding=1),
        )
    else:
        stem = NamedModule(
            "stem",
            Conv2d(3, w, kernel=3, stride=1, padding=1, rng=rng),
            BatchNorm2d(w),
            ReLU(),
        )

    def stage(name: str, c_in: int, c_out: int, stride: int) -> NamedModule:
        return NamedModule(
            name,
            basic_block(c_in, c_out, stride, rng),
            basic_block(c_out, c_out, 1, rng),
        )

    blocks = {
        "stem": stem,
        "layer1": stage("layer1", w, w, 1),
        "layer2": stage("layer2", w, 2 * w, 2),
        "layer3": stage("layer3", 2 * w, 4 * w, 2),
        "layer4": stage("layer4", 4 * w, 8 * w, 2),
        "head": NamedModule(
            "head",
            GlobalAvgPool(),
            Flatten(),
            Linear(8 * w, num_classes, rng=rng),
        ),
    }
    return ResNet18(
        blocks=blocks,
        input_shape=(3, input_size, input_size),
        num_classes=num_classes,
        width=width,
    )
