"""Raw numpy tensor operations used by the DNN engine.

All operations use the NCHW layout (batch, channels, height, width) and
float32 arithmetic.  Convolution is implemented with im2col + GEMM, the
standard strategy of CPU inference engines, so that measured wall-clock
time scales with FLOPs the same way a production engine does.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "conv2d",
    "conv2d_flops",
    "conv2d_fused",
    "depthwise_conv2d",
    "depthwise_conv2d_flops",
    "depthwise_conv2d_fused",
    "apply_activation_",
    "relu6",
    "batch_norm",
    "bn_scale_shift",
    "relu",
    "max_pool2d",
    "global_avg_pool",
    "linear",
    "softmax",
    "cross_entropy",
    "conv_output_size",
]

#: epsilon used by inference-mode batch normalization (and its folding)
BN_EPS = 1e-5


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into GEMM-ready columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # Strided view: (N, C, kernel, kernel, out_h, out_w)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, K, K);
    ``bias``: (C_out,) or None.  Returns (N, C_out, H_out, W_out).
    """
    n = x.shape[0]
    c_out, c_in, k, _ = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {c_in}"
        )
    cols, out_h, out_w = im2col(x, k, stride, padding)
    w_mat = weight.reshape(c_out, c_in * k * k)
    out = np.einsum("oc,ncp->nop", w_mat, cols, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, c_out, out_h, out_w)


def conv2d_flops(
    c_in: int, c_out: int, kernel: int, out_h: int, out_w: int
) -> int:
    """Multiply-accumulate count (x2 for FLOPs) of a conv layer."""
    return 2 * c_in * c_out * kernel * kernel * out_h * out_w


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise 2-D convolution (one filter per input channel).

    ``x``: (N, C, H, W); ``weight``: (C, K, K).  Returns
    (N, C, H_out, W_out).  The workhorse of MobileNet-style separable
    convolutions.
    """
    n, c, h, w = x.shape
    if weight.shape[0] != c:
        raise ValueError(
            f"channel mismatch: input has {c}, depthwise weight expects {weight.shape[0]}"
        )
    k = weight.shape[1]
    out_h = conv_output_size(h, k, stride, padding)
    out_w = conv_output_size(w, k, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, k, k, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return np.einsum("nckhij,ckh->ncij", windows, weight, optimize=True)


def depthwise_conv2d_flops(channels: int, kernel: int, out_h: int, out_w: int) -> int:
    """Multiply-accumulate count (x2 for FLOPs) of a depthwise conv."""
    return 2 * channels * kernel * kernel * out_h * out_w


def apply_activation_(out: np.ndarray, activation: str | None) -> np.ndarray:
    """Apply ``activation`` (``None``/``"relu"``/``"relu6"``) in place."""
    if activation is None:
        return out
    if activation == "relu":
        return np.maximum(out, 0.0, out=out)
    if activation == "relu6":
        return np.clip(out, 0.0, 6.0, out=out)
    raise ValueError(f"unknown fused activation {activation!r}")


def conv2d_fused(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: np.ndarray | None,
    kernel: int,
    stride: int,
    out_h: int,
    out_w: int,
    out: np.ndarray,
    cols: np.ndarray | None = None,
    activation: str | None = None,
) -> np.ndarray:
    """Fused convolution + bias + activation on a *pre-padded* input.

    The compiled engine's conv kernel: ``x`` is (N, C, Hp, Wp) with any
    padding already applied, ``w_mat`` is the pre-laid-out GEMM matrix
    (C_out, C*K*K) (batch-norm scale/shift folded in by the compiler),
    ``out`` is a preallocated (N, C_out, out_h*out_w) buffer and ``cols``
    a flat im2col scratch buffer reused across layers.  Bias addition and
    activation clipping happen in place on the GEMM output.  Returns a
    (N, C_out, out_h, out_w) view of ``out``.
    """
    n, c = x.shape[0], x.shape[1]
    p = out_h * out_w
    if kernel == 1 and stride == 1:
        # 1x1 stride-1 conv is a plain GEMM over the spatial positions —
        # no im2col copy at all (the MobileNet expansion/projection case).
        cols_view = x.reshape(n, c, p)
    elif kernel == 1:
        window = x[:, :, ::stride, ::stride][:, :, :out_h, :out_w]
        cols_view = cols[: n * c * p].reshape(n, c, out_h, out_w)
        np.copyto(cols_view, window)
        cols_view = cols_view.reshape(n, c, p)
    else:
        s0, s1, s2, s3 = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kernel, kernel, out_h, out_w),
            strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
            writeable=False,
        )
        ckk = c * kernel * kernel
        cols_view = cols[: n * ckk * p].reshape(n, c, kernel, kernel, out_h, out_w)
        np.copyto(cols_view, windows)
        cols_view = cols_view.reshape(n, ckk, p)
    np.matmul(w_mat, cols_view, out=out)
    if bias is not None:
        out += bias[None, :, None]
    apply_activation_(out, activation)
    return out.reshape(n, -1, out_h, out_w)


def depthwise_conv2d_fused(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: np.ndarray | None,
    kernel: int,
    stride: int,
    out_h: int,
    out_w: int,
    out: np.ndarray,
    cols: np.ndarray,
    activation: str | None = None,
) -> np.ndarray:
    """Fused depthwise convolution + bias + activation, pre-padded input.

    Runs the depthwise filter as C batched (1, K*K) x (K*K, P) GEMMs per
    sample — much faster than the 6-D einsum of the eager kernel.  The
    per-sample loop keeps the im2col gather cache-resident: ``cols`` is a
    flat scratch holding *one* sample's columns, refilled per sample, so
    the working set stays ~C*K*K*P floats regardless of batch size.

    ``x`` is (N, C, Hp, Wp) already padded, ``w_mat`` the pre-laid-out
    (C, 1, K*K) filter (BN folded in), ``out`` a preallocated
    (N, C, out_h, out_w) buffer.  Returns ``out``.
    """
    n, c = x.shape[0], x.shape[1]
    p = out_h * out_w
    _, s1, s2, s3 = x.strides
    cols_view = cols[: c * kernel * kernel * p].reshape(
        c, kernel, kernel, out_h, out_w
    )
    cols_mat = cols_view.reshape(c, kernel * kernel, p)
    for sample in range(n):
        windows = np.lib.stride_tricks.as_strided(
            x[sample],
            shape=(c, kernel, kernel, out_h, out_w),
            strides=(s1, s2, s3, s2 * stride, s3 * stride),
            writeable=False,
        )
        np.copyto(cols_view, windows)
        np.matmul(w_mat, cols_mat, out=out[sample].reshape(c, 1, p))
    if bias is not None:
        out += bias[None, :, None, None]
    apply_activation_(out, activation)
    return out


def relu6(x: np.ndarray) -> np.ndarray:
    """Clipped rectifier used by MobileNet: min(max(x, 0), 6)."""
    return np.clip(x, 0.0, 6.0)


def bn_scale_shift(
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = BN_EPS,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel affine ``(scale, shift)`` equivalent of inference BN.

    Computed in float64 so the compiler can fold it into convolution
    weights without losing float32 precision.
    """
    scale = gamma.astype(np.float64) / np.sqrt(running_var.astype(np.float64) + eps)
    shift = beta.astype(np.float64) - running_mean.astype(np.float64) * scale
    return scale, shift


def batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = BN_EPS,
) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis."""
    scale = gamma / np.sqrt(running_var + eps)
    shift = beta - running_mean * scale
    return x * scale[None, :, None, None] + shift[None, :, None, None]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def max_pool2d(x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
    """Max pooling with a square window."""
    cols, out_h, out_w = im2col(x, kernel, stride, padding)
    n, c = x.shape[0], x.shape[1]
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    return cols.max(axis=2).reshape(n, c, out_h, out_w)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Average over the spatial dimensions: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    weight_t: np.ndarray | None = None,
) -> np.ndarray:
    """Fully connected layer: ``x`` (N, F) x ``weight`` (O, F) -> (N, O).

    ``weight_t`` is an optional pre-transposed contiguous copy of
    ``weight`` (F, O); :class:`repro.dnn.layers.Linear` caches one so the
    transpose is not re-derived on every call.
    """
    out = x @ (weight.T if weight_t is None else weight_t)
    if bias is not None:
        out = out + bias
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits`` (N, K)."""
    probs = softmax(logits, axis=1)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())
