"""Module composition for the numpy DNN engine.

Provides ``Sequential`` and ``Residual`` containers sufficient to express
ResNet-style architectures, with the same profiling interface as single
layers (FLOPs, parameter count, activation sizes).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.dnn.layers import Layer

__all__ = ["Module", "Sequential", "Residual", "NamedModule"]


class Module(Layer):
    """Base class for composite modules."""

    def children(self) -> list[Layer]:
        """Immediate sub-layers in execution order."""
        raise NotImplementedError

    def iter_layers(self) -> Iterator[Layer]:
        """All primitive (non-composite) layers, depth first."""
        for child in self.children():
            if isinstance(child, Module):
                yield from child.iter_layers()
            else:
                yield child

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for child in self.children():
            params.extend(child.parameters())
        return params

    def compile(
        self,
        input_shape: tuple[int, ...],
        quantize: str | None = None,
        calibration=None,
    ):
        """Compile this module into a fused execution plan.

        Returns a :class:`repro.dnn.compile.CompiledModule` — a drop-in
        ``Layer`` whose forward runs BN-folded, fused, buffer-reusing
        kernels.  The plan snapshots current weights; re-compile after
        pruning or fine-tuning.  ``quantize="int8"`` emits an int8
        :class:`repro.dnn.quantize.QuantizedModule` instead (optionally
        calibrated on ``calibration``).
        """
        from repro.dnn.compile import compile_module

        return compile_module(
            self, input_shape, quantize=quantize, calibration=calibration
        )


class Sequential(Module):
    """Run layers one after another."""

    kind = "sequential"

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def children(self) -> list[Layer]:
        return list(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        total = 0
        shape = input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total

    def activation_size(self, input_shape: tuple[int, ...]) -> int:
        # Peak per-layer activation (inference engines reuse buffers, so
        # the footprint is governed by the largest intermediate tensor).
        shape = input_shape
        peak = int(np.prod(input_shape))
        for layer in self.layers:
            shape = layer.output_shape(shape)
            peak = max(peak, int(np.prod(shape)))
        return peak

    def total_activations(self, input_shape: tuple[int, ...]) -> int:
        """Sum of all intermediate activation sizes (training footprint)."""
        shape = input_shape
        total = 0
        for layer in self.layers:
            if isinstance(layer, Residual):
                total += layer.total_activations(shape)
            elif isinstance(layer, Sequential):
                total += layer.total_activations(shape)
            else:
                shape_out = layer.output_shape(shape)
                total += int(np.prod(shape_out))
                shape = shape_out
                continue
            shape = layer.output_shape(shape)
        return total


class Residual(Module):
    """Residual connection: ``act(body(x) + shortcut(x))``.

    ``shortcut`` is identity when ``None`` (the channel counts and strides
    must then match).  ``activation`` is ``"relu"`` for ResNet blocks or
    ``"linear"`` for MobileNetV2's inverted residuals, whose bottleneck
    addition is deliberately not rectified.
    """

    kind = "residual"

    def __init__(
        self,
        body: Sequential,
        shortcut: Layer | None = None,
        activation: str = "relu",
    ) -> None:
        if activation not in ("relu", "linear"):
            raise ValueError(f"unknown residual activation {activation!r}")
        self.body = body
        self.shortcut = shortcut
        self.activation = activation

    def children(self) -> list[Layer]:
        kids: list[Layer] = [self.body]
        if self.shortcut is not None:
            kids.append(self.shortcut)
        return kids

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x if self.shortcut is None else self.shortcut(x)
        out = self.body(x)
        if out.shape != identity.shape:
            raise ValueError(
                f"residual shape mismatch: body {out.shape} vs shortcut {identity.shape}"
            )
        total = out + identity
        if self.activation == "relu":
            return np.maximum(total, 0.0)
        return total

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return self.body.output_shape(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        total = self.body.flops(input_shape)
        if self.shortcut is not None:
            total += self.shortcut.flops(input_shape)
        # add + relu
        total += 2 * int(np.prod(self.output_shape(input_shape)))
        return total

    def activation_size(self, input_shape: tuple[int, ...]) -> int:
        return self.body.activation_size(input_shape)

    def total_activations(self, input_shape: tuple[int, ...]) -> int:
        total = self.body.total_activations(input_shape)
        if self.shortcut is not None:
            total += int(np.prod(self.shortcut.output_shape(input_shape)))
        total += int(np.prod(self.output_shape(input_shape)))
        return total


class NamedModule(Sequential):
    """A ``Sequential`` with a name — used for the ResNet layer-blocks
    that the paper composes into DNN "paths"."""

    kind = "named"

    def __init__(self, name: str, *layers: Layer) -> None:
        super().__init__(*layers)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NamedModule({self.name!r}, {len(self.layers)} layers)"
