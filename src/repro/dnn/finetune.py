"""Real gradient-based fine-tuning of Table I configurations.

Uses the exact backward passes of :mod:`repro.dnn.autograd` to fine-tune
the *trainable suffix* of a model (the fine-tuned layer-blocks plus the
classifier, per the configuration) with Adam and cosine-annealed
learning rate — the paper's recipe — while the shared prefix runs
frozen in inference mode.  Intended for small models (CPU numpy); the
long published runs are covered by the calibrated surrogate in
:mod:`repro.dnn.training`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn import autograd
from repro.dnn.configs import BlockConfig
from repro.dnn.datasets import ImageDataset
from repro.dnn.graph import Sequential
from repro.dnn.resnet import BLOCK_NAMES, BlockwiseModel
from repro.dnn.training import AdamState, cosine_annealing_lr

__all__ = ["FineTuneRun", "FineTuner"]


@dataclass
class FineTuneRun:
    """Per-epoch record of a real fine-tuning run."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)


class FineTuner:
    """Train a configuration's trainable suffix with real gradients."""

    def __init__(
        self,
        model: BlockwiseModel,
        config: BlockConfig,
        lr: float = 0.001,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        trainable = set(config.trainable_blocks)
        names = list(BLOCK_NAMES)
        first = next((i for i, n in enumerate(names) if n in trainable), len(names))
        non_suffix = [n for n in names[first:] if n not in trainable]
        if non_suffix:
            raise ValueError(
                f"trainable blocks must form a suffix; frozen blocks "
                f"{non_suffix} follow the first trainable one"
            )
        self.model = model
        self.config = config
        self.frozen_names = names[:first]
        self.trainable_names = names[first:]
        self.suffix = Sequential(*[model.blocks[n] for n in self.trainable_names])
        self.lr = lr
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._states = [AdamState.like(p) for p in self.suffix.parameters()]

    # ------------------------------------------------------------------

    def _frozen_forward(self, images: np.ndarray) -> np.ndarray:
        x = images
        for name in self.frozen_names:
            x = self.model.blocks[name](x)
        return x

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions using the (possibly fine-tuned) model."""
        return self.model(images).argmax(axis=1)

    def accuracy(self, dataset: ImageDataset) -> float:
        return float((self.predict(dataset.images) == dataset.labels).mean())

    def _step(self, features: np.ndarray, labels: np.ndarray, lr: float) -> float:
        logits, cache = autograd.forward(self.suffix, features)
        loss, grad_logits = autograd.softmax_cross_entropy_grad(logits, labels)
        _, param_grads = autograd.backward(self.suffix, cache, grad_logits)
        params = self.suffix.parameters()
        if len(params) != len(param_grads):
            raise RuntimeError(
                f"gradient/parameter count mismatch: {len(param_grads)} vs {len(params)}"
            )
        for param, grad, state in zip(params, param_grads, self._states):
            if grad is None:
                continue  # batch-norm running statistics
            updated = state.step(
                param.astype(np.float64), grad, lr, weight_decay=self.weight_decay
            )
            param[...] = updated.astype(param.dtype)
        return loss

    def fit(
        self,
        train: ImageDataset,
        test: ImageDataset | None = None,
        epochs: int = 5,
    ) -> FineTuneRun:
        """Fine-tune for ``epochs`` epochs; records loss and accuracy."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        run = FineTuneRun()
        for epoch in range(epochs):
            lr = cosine_annealing_lr(self.lr, epoch, epochs)
            order = self._rng.permutation(len(train.labels))
            losses = []
            for start in range(0, len(order), self.batch_size):
                idx = order[start : start + self.batch_size]
                features = self._frozen_forward(train.images[idx])
                losses.append(self._step(features, train.labels[idx], lr))
            run.train_loss.append(float(np.mean(losses)))
            run.train_accuracy.append(self.accuracy(train))
            if test is not None:
                run.test_accuracy.append(self.accuracy(test))
        return run
