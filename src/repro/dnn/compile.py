"""Compiled inference engine: BN folding, op fusion, buffer-reusing plans.

The eager engine (:mod:`repro.dnn.layers` / :mod:`repro.dnn.graph`) runs
``Conv2d -> BatchNorm2d -> ReLU`` as three separate passes, each
allocating a fresh intermediate tensor — fine for training and autograd,
wasteful for the inference loops the profiler, the serving runtime and
the emulation benchmarks hammer.  This module is the standard CPU-engine
answer: :func:`compile_module` walks a ``Sequential`` / ``Residual`` /
``NamedModule`` tree once and emits an execution *plan* of fused steps.

Optimization passes
-------------------

1. **BN folding** — a ``BatchNorm2d`` following a ``Conv2d`` or
   ``DepthwiseConv2d`` is folded into the convolution's weights and bias
   (computed in float64, stored float32), removing two full-tensor
   passes per convolution.
2. **Op fusion** — conv + bias + ``ReLU``/``ReLU6`` become one kernel
   (:func:`repro.dnn.ops.conv2d_fused` /
   :func:`~repro.dnn.ops.depthwise_conv2d_fused`) that adds the bias and
   clips in place on the GEMM output.  Residual add + activation is one
   in-place step as well.
3. **Weight pre-layout** — the (C_out, C_in*K*K) GEMM matrix of every
   convolution and the contiguous transpose of every ``Linear`` weight
   are materialized once at compile time instead of per call.
4. **Buffer arena** — all activation shapes are precomputed for the
   compiled input shape; every step owns preallocated output (and pad)
   buffers per ``(thread, batch size)``, and one im2col/temp scratch per
   executing thread is reused across layers and calls.  Steady-state
   forwards allocate nothing but the final output copy, and concurrent
   ``forward`` calls from different threads (or the worker processes of
   :mod:`repro.serving.parallel`) never share mutable buffers.

:class:`CompiledModule` is a drop-in :class:`~repro.dnn.layers.Layer`
(same ``forward`` / ``output_shape`` / ``flops`` interface, delegated to
the source module), so the profiler, repository and
``serving.BlockwiseRunner`` can opt in via a flag.

The plan snapshots the module's weights: mutate the source (pruning,
fine-tuning) and you must re-compile.  Inputs are cast to float32; plan
buffers are private, so each forward returns a fresh copy of the output.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.dnn import ops
from repro.dnn.graph import Residual, Sequential
from repro.obs.trace import current_tracer
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)

__all__ = ["CompiledModule", "compile_module", "fold_batch_norm"]


def fold_batch_norm(
    weight: np.ndarray,
    bias: np.ndarray | None,
    bn: BatchNorm2d,
    depthwise: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold ``bn``'s scale/shift into convolution ``weight``/``bias``.

    ``weight`` is (C_out, C_in, K, K) — or (C, K, K) with
    ``depthwise=True`` — and the returned pair is float32 with the bias
    always materialized (BN contributes a shift even to bias-free convs).
    """
    scale, shift = ops.bn_scale_shift(
        bn.gamma, bn.beta, bn.running_mean, bn.running_var
    )
    expand = scale[:, None, None] if depthwise else scale[:, None, None, None]
    folded_w = weight.astype(np.float64) * expand
    folded_b = shift if bias is None else bias.astype(np.float64) * scale + shift
    return folded_w.astype(np.float32), folded_b.astype(np.float32)


class _Scratch:
    """Per-(thread, batch) scratch: one im2col buffer, one elementwise temp.

    ``key`` is the ``(thread_id, batch)`` pair the plan allocated this
    scratch under; steps key their own output/pad buffers by it, so two
    threads running ``forward`` concurrently on one plan never write
    into the same buffer.
    """

    def __init__(
        self, key: tuple[int, int], n: int, cols_elems: int, tmp_elems: int
    ) -> None:
        self.key = key
        self.n = n
        self.cols = np.empty(n * cols_elems, dtype=np.float32) if cols_elems else None
        self.tmp = np.empty(n * tmp_elems, dtype=np.float32) if tmp_elems else None


class _Step:
    """One node of the execution plan."""

    label = "step"
    #: output shape for one sample
    out_shape: tuple[int, ...] = ()
    #: per-sample im2col scratch elements this step needs
    cols_elems = 0
    #: per-sample elementwise-temp scratch elements this step needs
    tmp_elems = 0

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        raise NotImplementedError

    def release(self) -> None:
        """Drop any per-batch buffers (they re-allocate lazily)."""


class _FusedConv(_Step):
    """conv2d (+ folded BN) + bias + activation as one GEMM kernel."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        kernel: int,
        stride: int,
        padding: int,
        activation: str | None,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        label: str,
    ) -> None:
        c_out = weight.shape[0]
        self.w_mat = np.ascontiguousarray(
            weight.reshape(c_out, -1), dtype=np.float32
        )
        self.bias = None if bias is None else np.ascontiguousarray(bias, np.float32)
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.activation = activation
        self.in_shape = in_shape
        self.out_shape = out_shape
        self.label = label
        c = in_shape[0]
        oh, ow = out_shape[1], out_shape[2]
        if kernel == 1 and stride == 1 and padding == 0:
            self.cols_elems = 0  # GEMM straight on the input view
        elif kernel == 1:
            self.cols_elems = c * oh * ow
        else:
            self.cols_elems = c * kernel * kernel * oh * ow
        self._bufs: dict[tuple[int, int], tuple[np.ndarray | None, np.ndarray]] = {}

    def _buffers(self, scratch: _Scratch) -> tuple[np.ndarray | None, np.ndarray]:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            c, h, w = self.in_shape
            pad = None
            if self.padding:
                # borders stay zero forever; only the interior is
                # rewritten each call
                pad = np.zeros(
                    (n, c, h + 2 * self.padding, w + 2 * self.padding),
                    dtype=np.float32,
                )
            out = np.empty(
                (n, self.out_shape[0], self.out_shape[1] * self.out_shape[2]),
                dtype=np.float32,
            )
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, :, p : p + h, p : p + w] = x
            x = pad
        return ops.conv2d_fused(
            x,
            self.w_mat,
            self.bias,
            self.kernel,
            self.stride,
            self.out_shape[1],
            self.out_shape[2],
            out=out,
            cols=scratch.cols,
            activation=self.activation,
        )

    def release(self) -> None:
        self._bufs.clear()


class _FusedDepthwise(_Step):
    """depthwise conv (+ folded BN) + bias + activation via batched GEMM."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int,
        padding: int,
        activation: str | None,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        label: str,
    ) -> None:
        c, k = weight.shape[0], weight.shape[1]
        self.w_mat = np.ascontiguousarray(
            weight.reshape(c, 1, k * k), dtype=np.float32
        )
        self.bias = None if bias is None else np.ascontiguousarray(bias, np.float32)
        self.kernel = k
        self.stride = stride
        self.padding = padding
        self.activation = activation
        self.in_shape = in_shape
        self.out_shape = out_shape
        self.label = label
        self._padded = (c, in_shape[1] + 2 * padding, in_shape[2] + 2 * padding)
        # the fused kernel gathers one sample's columns at a time, so the
        # scratch need is per-sample regardless of batch size
        self.cols_elems = c * k * k * out_shape[1] * out_shape[2]
        self._bufs: dict[tuple[int, int], tuple[np.ndarray | None, np.ndarray]] = {}

    def _buffers(self, scratch: _Scratch) -> tuple[np.ndarray | None, np.ndarray]:
        bufs = self._bufs.get(scratch.key)
        if bufs is None:
            n = scratch.n
            pad = None
            if self.padding:
                pad = np.zeros((n, *self._padded), dtype=np.float32)
            out = np.empty((n, *self.out_shape), dtype=np.float32)
            bufs = (pad, out)
            self._bufs[scratch.key] = bufs
        return bufs

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        pad, out = self._buffers(scratch)
        if pad is not None:
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, :, p : p + h, p : p + w] = x
            x = pad
        return ops.depthwise_conv2d_fused(
            x,
            self.w_mat,
            self.bias,
            self.kernel,
            self.stride,
            self.out_shape[1],
            self.out_shape[2],
            out=out,
            cols=scratch.cols,
            activation=self.activation,
        )

    def release(self) -> None:
        self._bufs.clear()


class _BufferedStep(_Step):
    """Base for steps with a single preallocated output buffer."""

    def __init__(self, out_shape: tuple[int, ...], label: str) -> None:
        self.out_shape = out_shape
        self.label = label
        self._bufs: dict[tuple[int, int], np.ndarray] = {}

    def _out(self, scratch: _Scratch) -> np.ndarray:
        out = self._bufs.get(scratch.key)
        if out is None:
            out = np.empty((scratch.n, *self.out_shape), dtype=np.float32)
            self._bufs[scratch.key] = out
        return out

    def release(self) -> None:
        self._bufs.clear()


class _BatchNormAct(_BufferedStep):
    """Standalone BN (no foldable conv before it), + optional activation."""

    def __init__(
        self, bn: BatchNorm2d, activation: str | None, shape: tuple[int, ...]
    ) -> None:
        super().__init__(shape, "batchnorm" + (f"+{activation}" if activation else ""))
        scale, shift = ops.bn_scale_shift(
            bn.gamma, bn.beta, bn.running_mean, bn.running_var
        )
        self.scale = scale.astype(np.float32).reshape(1, -1, 1, 1)
        self.shift = shift.astype(np.float32).reshape(1, -1, 1, 1)
        self.activation = activation

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._out(scratch)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        return ops.apply_activation_(out, self.activation)


class _Act(_BufferedStep):
    """Standalone activation (writes a private buffer: the incoming array
    may be the caller's input, which must not be clipped in place)."""

    def __init__(self, activation: str, shape: tuple[int, ...]) -> None:
        super().__init__(shape, activation)
        self.activation = activation

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._out(scratch)
        if self.activation == "relu":
            return np.maximum(x, 0.0, out=out)
        return np.clip(x, 0.0, 6.0, out=out)


class _MaxPool(_BufferedStep):
    """Max pooling by tap-wise maximum — no im2col copy."""

    def __init__(
        self,
        layer: MaxPool2d,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
    ) -> None:
        super().__init__(out_shape, f"maxpool{layer.kernel}x{layer.kernel}")
        self.kernel = layer.kernel
        self.stride = layer.stride
        self.padding = layer.padding
        self.in_shape = in_shape
        self._pads: dict[tuple[int, int], np.ndarray] = {}

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        n = x.shape[0]
        out = self._out(scratch)
        if self.padding:
            pad = self._pads.get(scratch.key)
            if pad is None:
                c, h, w = self.in_shape
                # zero padding, matching the eager kernel's constant pad
                pad = np.zeros(
                    (n, c, h + 2 * self.padding, w + 2 * self.padding),
                    dtype=np.float32,
                )
                self._pads[scratch.key] = pad
            p = self.padding
            h, w = self.in_shape[1], self.in_shape[2]
            pad[:, :, p : p + h, p : p + w] = x
            x = pad
        oh, ow = self.out_shape[1], self.out_shape[2]
        first = True
        for i in range(self.kernel):
            rows = slice(i, i + self.stride * (oh - 1) + 1, self.stride)
            for j in range(self.kernel):
                cols_ = slice(j, j + self.stride * (ow - 1) + 1, self.stride)
                window = x[:, :, rows, cols_]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out

    def release(self) -> None:
        super().release()
        self._pads.clear()


class _GlobalAvgPool(_BufferedStep):
    def __init__(self, shape: tuple[int, ...]) -> None:
        super().__init__((shape[0],), "globalavgpool")

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._out(scratch)
        return np.mean(x, axis=(2, 3), out=out)


class _Flatten(_Step):
    label = "flatten"

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.out_shape = (int(np.prod(shape)),)

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class _LinearStep(_BufferedStep):
    """Linear with the transposed weight laid out once at compile time."""

    def __init__(self, layer: Linear, shape: tuple[int, ...]) -> None:
        super().__init__((layer.out_features,), "linear")
        self.w_t = np.ascontiguousarray(layer.weight.T, dtype=np.float32)
        self.bias = np.ascontiguousarray(layer.bias, dtype=np.float32)

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        out = self._out(scratch)
        np.matmul(x, self.w_t, out=out)
        out += self.bias
        return out


class _ResidualStep(_Step):
    """Residual: compiled body/shortcut sub-plans + in-place add+act."""

    def __init__(
        self,
        body: list[_Step],
        shortcut: list[_Step] | None,
        activation: str,
        out_shape: tuple[int, ...],
    ) -> None:
        self.body = body
        self.shortcut = shortcut
        self.activation = activation
        self.out_shape = out_shape
        self.label = f"residual+{activation}"

    def sub_plans(self) -> list[list["_Step"]]:
        return [self.body] + ([self.shortcut] if self.shortcut else [])

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        identity = x
        if self.shortcut is not None:
            for step in self.shortcut:
                identity = step.run(identity, scratch)
        out = x
        for step in self.body:
            out = step.run(out, scratch)
        if np.may_share_memory(out, identity):  # defensive: plan buffers
            out = out + identity  # are distinct, but a view could alias
        else:
            np.add(out, identity, out=out)
        if self.activation == "relu":
            np.maximum(out, 0.0, out=out)
        return out

    def release(self) -> None:
        for step in self.body:
            step.release()
        for step in self.shortcut or ():
            step.release()


class _EagerStep(_Step):
    """Fallback: run an unrecognized layer eagerly (no fusion)."""

    def __init__(self, layer: Layer, shape: tuple[int, ...]) -> None:
        self.layer = layer
        self.out_shape = layer.output_shape(shape)
        self.label = f"eager:{layer.kind}"

    def run(self, x: np.ndarray, scratch: _Scratch) -> np.ndarray:
        return self.layer.forward(x)


# ----------------------------------------------------------------------
# plan builder


def _flatten_layers(module: Layer) -> list[Layer]:
    """Primitive layers and Residuals of a module tree, execution order."""
    if isinstance(module, Sequential):
        flat: list[Layer] = []
        for child in module.layers:
            flat.extend(_flatten_layers(child))
        return flat
    return [module]


def _activation_of(layer: Layer) -> str | None:
    if isinstance(layer, ReLU):
        return "relu"
    if isinstance(layer, ReLU6):
        return "relu6"
    return None


def _foldable_bn(conv: Conv2d | DepthwiseConv2d, layer: Layer) -> BatchNorm2d | None:
    if not isinstance(layer, BatchNorm2d):
        return None
    channels = (
        conv.out_channels if isinstance(conv, Conv2d) else conv.channels
    )
    return layer if layer.channels == channels else None


def _build_steps(
    layers: list[Layer], in_shape: tuple[int, ...]
) -> tuple[list[_Step], tuple[int, ...]]:
    steps: list[_Step] = []
    shape = in_shape
    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Residual):
            body_steps, body_shape = _build_steps(
                _flatten_layers(layer.body), shape
            )
            shortcut_steps = None
            if layer.shortcut is not None:
                shortcut_steps, sc_shape = _build_steps(
                    _flatten_layers(layer.shortcut), shape
                )
                if sc_shape != body_shape:
                    raise ValueError(
                        f"residual shape mismatch: body {body_shape} "
                        f"vs shortcut {sc_shape}"
                    )
            steps.append(
                _ResidualStep(body_steps, shortcut_steps, layer.activation, body_shape)
            )
            shape = body_shape
            i += 1
        elif isinstance(layer, (Conv2d, DepthwiseConv2d)):
            consumed = 1
            bn = None
            if i + consumed < len(layers):
                bn = _foldable_bn(layer, layers[i + consumed])
                if bn is not None:
                    consumed += 1
            activation = None
            if i + consumed < len(layers):
                activation = _activation_of(layers[i + consumed])
                if activation is not None:
                    consumed += 1
            out_shape = layer.output_shape(shape)
            label = "+bn" if bn is not None else ""
            label += f"+{activation}" if activation else ""
            if isinstance(layer, Conv2d):
                if bn is not None:
                    weight, bias = fold_batch_norm(layer.weight, layer.bias, bn)
                else:
                    weight, bias = layer.weight, layer.bias
                steps.append(
                    _FusedConv(
                        weight,
                        bias,
                        layer.kernel,
                        layer.stride,
                        layer.padding,
                        activation,
                        shape,
                        out_shape,
                        f"conv{layer.kernel}x{layer.kernel}{label}",
                    )
                )
            else:
                if bn is not None:
                    weight, bias = fold_batch_norm(
                        layer.weight, None, bn, depthwise=True
                    )
                else:
                    weight, bias = layer.weight, None
                steps.append(
                    _FusedDepthwise(
                        weight,
                        bias,
                        layer.stride,
                        layer.padding,
                        activation,
                        shape,
                        out_shape,
                        f"dwconv{layer.kernel}x{layer.kernel}{label}",
                    )
                )
            shape = out_shape
            i += consumed
        elif isinstance(layer, BatchNorm2d):
            consumed = 1
            activation = None
            if i + consumed < len(layers):
                activation = _activation_of(layers[i + consumed])
                if activation is not None:
                    consumed += 1
            steps.append(_BatchNormAct(layer, activation, shape))
            i += consumed
        elif isinstance(layer, (ReLU, ReLU6)):
            steps.append(_Act(_activation_of(layer), shape))
            i += 1
        elif isinstance(layer, MaxPool2d):
            out_shape = layer.output_shape(shape)
            steps.append(_MaxPool(layer, shape, out_shape))
            shape = out_shape
            i += 1
        elif isinstance(layer, GlobalAvgPool):
            steps.append(_GlobalAvgPool(shape))
            shape = layer.output_shape(shape)
            i += 1
        elif isinstance(layer, Flatten):
            steps.append(_Flatten(shape))
            shape = layer.output_shape(shape)
            i += 1
        elif isinstance(layer, Linear):
            steps.append(_LinearStep(layer, shape))
            shape = layer.output_shape(shape)
            i += 1
        else:
            steps.append(_EagerStep(layer, shape))
            shape = layer.output_shape(shape)
            i += 1
    return steps, shape


def _iter_steps(steps: list[_Step]):
    for step in steps:
        yield step
        sub = getattr(step, "sub_plans", None)
        if sub is not None:
            for plan in sub():
                yield from _iter_steps(plan)


class CompiledModule(Layer):
    """A fused, buffer-reusing execution plan — a drop-in ``Layer``.

    ``output_shape`` / ``flops`` / ``parameters`` delegate to the source
    module, so profiling arithmetic is unchanged; only ``forward`` runs
    the optimized plan.  Compile once per (module, input shape); buffer
    arenas are created lazily per ``(thread, batch size)`` and reused
    across calls, so concurrent ``forward`` calls (serving worker
    threads, the parallel backend's processes) are safe: each executing
    thread owns a private scratch + output-buffer arena.
    """

    kind = "compiled"
    #: numeric format of the plan's compute steps ("int8" on the
    #: quantized subclass) — cache keys in serving key on this
    precision = "fp32"

    def __init__(self, source: Layer, input_shape: tuple[int, ...]) -> None:
        self.source = source
        self.input_shape = tuple(int(s) for s in input_shape)
        self.steps, self._out_shape = _build_steps(
            _flatten_layers(source), self.input_shape
        )
        self._cols_elems = max(
            (s.cols_elems for s in _iter_steps(self.steps)), default=0
        )
        self._tmp_elems = max(
            (s.tmp_elems for s in _iter_steps(self.steps)), default=0
        )
        self._scratch: dict[tuple[int, int], _Scratch] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        if tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"compiled for input shape {self.input_shape}, "
                f"got {tuple(x.shape[1:])}"
            )
        x = np.ascontiguousarray(x, dtype=np.float32)
        n = x.shape[0]
        key = (threading.get_ident(), n)
        scratch = self._scratch.get(key)
        if scratch is None:
            scratch = _Scratch(key, n, self._cols_elems, self._tmp_elems)
            self._scratch[key] = scratch
        # the tracer predicate is hoisted out of the step loop so the
        # disabled path pays one thread-local read per forward, not one
        # per plan step
        tracer = current_tracer()
        if tracer.enabled:
            for step in self.steps:
                with tracer.span(
                    f"plan.{step.label}", cat="engine", track="engine"
                ):
                    x = step.run(x, scratch)
        else:
            for step in self.steps:
                x = step.run(x, scratch)
        # plan buffers are rewritten by the next call — callers own a copy
        return x.copy()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return self.source.output_shape(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return self.source.flops(input_shape)

    def activation_size(self, input_shape: tuple[int, ...]) -> int:
        return self.source.activation_size(input_shape)

    def parameters(self) -> list[np.ndarray]:
        return self.source.parameters()

    def plan_summary(self) -> list[str]:
        """Flat list of fused-step labels (nested steps indented with /)."""

        def walk(steps: list[_Step], prefix: str) -> list[str]:
            rows: list[str] = []
            for step in steps:
                rows.append(prefix + step.label)
                body = getattr(step, "body", None)
                if body is not None:
                    rows.extend(walk(body, prefix + "  body/"))
                    shortcut = getattr(step, "shortcut", None)
                    if shortcut is not None:
                        rows.extend(walk(shortcut, prefix + "  shortcut/"))
            return rows

        return walk(self.steps, "")

    def release_buffers(self) -> None:
        """Free all per-batch arenas (they re-allocate on the next call)."""
        self._scratch.clear()
        for step in _iter_steps(self.steps):
            step.release()


def compile_module(
    module,
    input_shape: tuple[int, ...] | None = None,
    quantize: str | None = None,
    calibration: np.ndarray | None = None,
) -> CompiledModule:
    """Compile a module tree (or a ``BlockwiseModel``) into a fused plan.

    ``input_shape`` is the per-sample shape, e.g. ``(3, 32, 32)``; it is
    optional for :class:`~repro.dnn.resnet.BlockwiseModel`, whose own
    ``input_shape`` is used.  The plan specializes on this shape (buffer
    sizes, fused layouts) but accepts any batch size.

    ``quantize="int8"`` emits a
    :class:`~repro.dnn.quantize.QuantizedModule` instead: int8 weights
    with per-channel scales, calibrated activation scales (min/max over
    ``calibration``, a seeded synthetic batch by default) and fused
    requantization — same fp32 in/out contract.
    """
    source = module
    if not isinstance(module, Layer):
        inner = getattr(module, "_as_sequential", None)
        if inner is None:
            raise TypeError(
                f"cannot compile {type(module).__name__}: expected a Layer "
                "or a BlockwiseModel"
            )
        source = inner
        if input_shape is None:
            input_shape = tuple(module.input_shape)
    if input_shape is None:
        raise ValueError("input_shape is required to compile a Layer")
    if quantize is None:
        if calibration is not None:
            raise ValueError("calibration is only meaningful with quantize")
        return CompiledModule(source, tuple(input_shape))
    if quantize != "int8":
        raise ValueError(f"unsupported quantize mode: {quantize!r}")
    from repro.dnn.quantize import QuantizedModule

    return QuantizedModule(source, tuple(input_shape), calibration=calibration)
