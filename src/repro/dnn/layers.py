"""Parameterized layer objects for the numpy DNN engine.

Each layer knows how to run a forward pass, report its parameter count,
FLOPs and activation size for a given input shape, and expose its
parameter tensors for pruning and (head-only) training.
"""

from __future__ import annotations

import numpy as np

from repro.dnn import ops

__all__ = [
    "Layer",
    "Conv2d",
    "DepthwiseConv2d",
    "ReLU6",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Linear",
    "BYTES_PER_PARAM",
]

# float32 storage, matching the paper's (non-quantized) deployments.
BYTES_PER_PARAM = 4


class Layer:
    """Base class for all layers."""

    #: human-readable layer kind, set by subclasses
    kind: str = "layer"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (without the batch dim) produced for ``input_shape``."""
        raise NotImplementedError

    def param_count(self) -> int:
        return sum(int(p.size) for p in self.parameters())

    def parameters(self) -> list[np.ndarray]:
        """Parameter tensors (may be empty)."""
        return []

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """FLOPs for one sample with the given (C, H, W) input shape."""
        return 0

    def activation_size(self, input_shape: tuple[int, ...]) -> int:
        """Number of scalars in the output activation for one sample."""
        return int(np.prod(self.output_shape(input_shape)))


class Conv2d(Layer):
    """2-D convolution layer (no bias, as in ResNet conv layers)."""

    kind = "conv2d"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        # He initialization, standard for ReLU networks.
        fan_in = in_channels * kernel * kernel
        std = float(np.sqrt(2.0 / fan_in))
        self.weight = rng.normal(0.0, std, (out_channels, in_channels, kernel, kernel)).astype(
            np.float32
        )
        self.bias = np.zeros(out_channels, dtype=np.float32) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, h, w = input_shape
        out_h = ops.conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = ops.conv_output_size(w, self.kernel, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def parameters(self) -> list[np.ndarray]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def flops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        return ops.conv2d_flops(self.in_channels, self.out_channels, self.kernel, out_h, out_w)


class DepthwiseConv2d(Layer):
    """Depthwise convolution: one K x K filter per channel (MobileNet)."""

    kind = "depthwiseconv2d"

    def __init__(
        self,
        channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        std = float(np.sqrt(2.0 / (kernel * kernel)))
        self.weight = rng.normal(0.0, std, (channels, kernel, kernel)).astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.depthwise_conv2d(x, self.weight, self.stride, self.padding)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, h, w = input_shape
        out_h = ops.conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = ops.conv_output_size(w, self.kernel, self.stride, self.padding)
        return (self.channels, out_h, out_w)

    def parameters(self) -> list[np.ndarray]:
        return [self.weight]

    def flops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        return ops.depthwise_conv2d_flops(self.channels, self.kernel, out_h, out_w)


class ReLU6(Layer):
    """MobileNet's clipped rectifier."""

    kind = "relu6"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.relu6(x)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * int(np.prod(input_shape))


class BatchNorm2d(Layer):
    """Inference-mode batch normalization."""

    kind = "batchnorm2d"

    def __init__(self, channels: int) -> None:
        self.channels = channels
        self.gamma = np.ones(channels, dtype=np.float32)
        self.beta = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.batch_norm(x, self.gamma, self.beta, self.running_mean, self.running_var)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def parameters(self) -> list[np.ndarray]:
        return [self.gamma, self.beta, self.running_mean, self.running_var]

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * int(np.prod(input_shape))


class ReLU(Layer):
    kind = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.relu(x)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class MaxPool2d(Layer):
    kind = "maxpool2d"

    def __init__(self, kernel: int, stride: int, padding: int = 0) -> None:
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.max_pool2d(x, self.kernel, self.stride, self.padding)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = ops.conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = ops.conv_output_size(w, self.kernel, self.stride, self.padding)
        return (c, out_h, out_w)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(self.output_shape(input_shape))) * self.kernel * self.kernel


class GlobalAvgPool(Layer):
    kind = "globalavgpool"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.global_avg_pool(x)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[0],)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Flatten(Layer):
    kind = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Linear(Layer):
    """Fully connected layer.

    The GEMM wants the (in_features, out_features) transpose of the
    stored weight; transposing per call yields a non-contiguous operand
    that BLAS must repack every forward.  The layer therefore caches a
    contiguous transposed copy, rebuilt lazily whenever the weight is
    reassigned (pruning) or handed out for mutation (fine-tuning via
    ``parameters()``).
    """

    kind = "linear"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        std = float(np.sqrt(2.0 / in_features))
        self.weight = rng.normal(0.0, std, (out_features, in_features)).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32)

    @property
    def weight(self) -> np.ndarray:
        return self._weight

    @weight.setter
    def weight(self, value: np.ndarray) -> None:
        self._weight = value
        self._weight_t: np.ndarray | None = None

    @property
    def weight_t(self) -> np.ndarray:
        """Contiguous ``weight.T``, cached until the weight changes."""
        if self._weight_t is None:
            self._weight_t = np.ascontiguousarray(self._weight.T)
        return self._weight_t

    def forward(self, x: np.ndarray) -> np.ndarray:
        return ops.linear(x, self.weight, self.bias, weight_t=self.weight_t)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.out_features,)

    def parameters(self) -> list[np.ndarray]:
        # callers may mutate the returned arrays in place (fine-tuning
        # does) — conservatively drop the cached transpose
        self._weight_t = None
        return [self.weight, self.bias]

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * self.in_features * self.out_features
