"""Table I — DNN block configurations for the ResNet feature extractor.

Each configuration splits the ResNet-18 layer-blocks into *shared*
blocks, inherited frozen from the base DNN (pre-trained on the Table II
base dataset), and *fine-tuned* blocks trained for the new task.  The
pruned variants additionally apply 80% structured pruning to the
fine-tuned layer-blocks only.

The paper counts four "layer-blocks" (the residual stages ``layer1`` ..
``layer4``); the stem shares the fate of ``layer1`` and the classifier
head is always task-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BlockConfig", "TABLE_I_CONFIGS", "get_config", "STAGE_NAMES"]

STAGE_NAMES = ("layer1", "layer2", "layer3", "layer4")


@dataclass(frozen=True)
class BlockConfig:
    """One row of Table I."""

    name: str
    description: str
    #: residual stages inherited frozen from the base DNN
    shared_stages: tuple[str, ...]
    #: residual stages trained for the new task (head is always trained)
    fine_tuned_stages: tuple[str, ...]
    #: True when the whole network starts from random initialization
    from_scratch: bool = False
    #: structured-pruning ratio applied to fine-tuned stages (0 = none)
    prune_ratio: float = 0.0

    def __post_init__(self) -> None:
        overlap = set(self.shared_stages) & set(self.fine_tuned_stages)
        if overlap:
            raise ValueError(f"stages both shared and fine-tuned: {sorted(overlap)}")
        if set(self.shared_stages) | set(self.fine_tuned_stages) != set(STAGE_NAMES):
            raise ValueError("configs must cover all four residual stages")
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ValueError("prune_ratio must be in [0, 1)")

    @property
    def pruned(self) -> bool:
        return self.prune_ratio > 0.0

    @property
    def trainable_blocks(self) -> tuple[str, ...]:
        """Blocks whose parameters receive gradients (head included)."""
        blocks = list(self.fine_tuned_stages) + ["head"]
        if self.from_scratch or "layer1" in self.fine_tuned_stages:
            blocks.insert(0, "stem")
        return tuple(blocks)

    @property
    def prunable_blocks(self) -> tuple[str, ...]:
        """Stages eligible for pruning: the fine-tuned stages only.

        CONFIG A-pruned prunes every stage since the whole DNN is
        task-specific.
        """
        if self.from_scratch:
            return STAGE_NAMES
        return self.fine_tuned_stages

    def pruned_variant(self, ratio: float = 0.8) -> "BlockConfig":
        """The Table I ``-pruned`` row derived from this configuration."""
        if self.pruned:
            raise ValueError(f"{self.name} is already pruned")
        return replace(
            self,
            name=f"{self.name}-pruned",
            description=(
                f"{self.name} + fine-tuned layer-blocks pruned with ratio {ratio:.0%}"
            ),
            prune_ratio=ratio,
        )


def _base_configs() -> dict[str, BlockConfig]:
    a = BlockConfig(
        name="CONFIG A",
        description="Entire DNN structure trained from scratch",
        shared_stages=(),
        fine_tuned_stages=STAGE_NAMES,
        from_scratch=True,
    )
    b = BlockConfig(
        name="CONFIG B",
        description="First 4 layer-blocks shared from the base DNN",
        shared_stages=STAGE_NAMES,
        fine_tuned_stages=(),
    )
    c = BlockConfig(
        name="CONFIG C",
        description="First 3 layer-blocks shared. Last layer-block + classifier fine-tuned",
        shared_stages=("layer1", "layer2", "layer3"),
        fine_tuned_stages=("layer4",),
    )
    d = BlockConfig(
        name="CONFIG D",
        description="First 2 layer-blocks shared. Last 2 layer-blocks + classifier fine-tuned",
        shared_stages=("layer1", "layer2"),
        fine_tuned_stages=("layer3", "layer4"),
    )
    e = BlockConfig(
        name="CONFIG E",
        description="First 1 layer-blocks shared. Last 3 layer-blocks + classifier fine-tuned",
        shared_stages=("layer1",),
        fine_tuned_stages=("layer2", "layer3", "layer4"),
    )
    configs = {cfg.name: cfg for cfg in (a, b, c, d, e)}
    for cfg in (a, b, c, d, e):
        pruned = cfg.pruned_variant(0.8)
        configs[pruned.name] = pruned
    return configs


#: All ten rows of Table I, keyed by name ("CONFIG A" .. "CONFIG E-pruned").
TABLE_I_CONFIGS: dict[str, BlockConfig] = _base_configs()


def get_config(name: str) -> BlockConfig:
    """Look up a Table I configuration by name (e.g. ``"CONFIG C"``)."""
    try:
        return TABLE_I_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; available: {sorted(TABLE_I_CONFIGS)}"
        ) from None
