"""Object-detection substrate: head, NMS and mean average precision.

The paper's reference model covers CV *methods* beyond classification —
the Fig. 4 walkthrough admits an object-detection task with a minimum
accuracy of 0.5 **mAP**.  This module provides the machinery to express
such tasks on the numpy engine:

* a single-shot, anchor-free :class:`DetectionHead` on top of the
  backbone feature map (per-cell objectness + class scores + box
  regression, the FCOS/CenterNet family's shape);
* box utilities: IoU, greedy non-maximum suppression;
* the detection metric chain: per-class average precision via the
  standard 11-point-free precision-recall integration, and
  :func:`mean_average_precision` over classes — the ``A_τ`` semantics
  for detection tasks;
* a synthetic detection dataset (rectangles with class-specific
  intensity patterns) for end-to-end evaluation without real images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.graph import NamedModule
from repro.dnn.layers import Conv2d, ReLU
from repro.dnn.resnet import BlockwiseModel

__all__ = [
    "BoundingBox",
    "Detection",
    "DetectionHead",
    "build_detector",
    "iou",
    "nms",
    "decode_predictions",
    "average_precision",
    "mean_average_precision",
    "DetectionDataset",
    "make_detection_dataset",
]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box in (x_min, y_min, x_max, y_max) pixels."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("box corners out of order")

    @property
    def area(self) -> float:
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)


@dataclass(frozen=True)
class Detection:
    """One predicted or ground-truth object."""

    box: BoundingBox
    label: int
    score: float = 1.0


def iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection over union of two boxes (0 when disjoint)."""
    ix_min = max(a.x_min, b.x_min)
    iy_min = max(a.y_min, b.y_min)
    ix_max = min(a.x_max, b.x_max)
    iy_max = min(a.y_max, b.y_max)
    if ix_max <= ix_min or iy_max <= iy_min:
        return 0.0
    intersection = (ix_max - ix_min) * (iy_max - iy_min)
    union = a.area + b.area - intersection
    if union <= 0:
        return 0.0
    return intersection / union


def nms(detections: list[Detection], iou_threshold: float = 0.5) -> list[Detection]:
    """Greedy per-class non-maximum suppression."""
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    kept: list[Detection] = []
    by_score = sorted(detections, key=lambda d: -d.score)
    for candidate in by_score:
        suppressed = any(
            kept_det.label == candidate.label
            and iou(kept_det.box, candidate.box) > iou_threshold
            for kept_det in kept
        )
        if not suppressed:
            kept.append(candidate)
    return kept


# ---------------------------------------------------------------------------
# detection head
# ---------------------------------------------------------------------------


class DetectionHead:
    """Anchor-free single-shot head over a backbone feature map.

    Per feature-map cell it predicts: 1 objectness logit, ``num_classes``
    class logits, and 4 box offsets (center dx, dy and log width/height
    relative to the cell).  Output tensor: (N, 5 + K, H, W).
    """

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        hidden_channels: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_classes = num_classes
        self.module = NamedModule(
            "det-head",
            Conv2d(in_channels, hidden_channels, kernel=3, padding=1, rng=rng),
            ReLU(),
            Conv2d(hidden_channels, 5 + num_classes, kernel=1, bias=True, rng=rng),
        )
        # standard detection-head initialization: a near-zero final layer
        # keeps early training stable (huge random box errors would
        # otherwise blow up the first gradient steps), and a negative
        # objectness prior reflects that most cells contain no object
        final = self.module.layers[-1]
        final.weight *= 0.01
        final.bias[0] = -2.0

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.module(features)

    def param_count(self) -> int:
        return self.module.param_count()


def build_detector(
    backbone: BlockwiseModel,
    num_classes: int,
    hidden_channels: int = 64,
    seed: int = 0,
) -> tuple[BlockwiseModel, DetectionHead]:
    """Pair a backbone with a detection head sized to its feature map."""
    feature_shape = backbone.block_input_shape("head")
    head = DetectionHead(
        in_channels=feature_shape[0],
        num_classes=num_classes,
        hidden_channels=hidden_channels,
        rng=np.random.default_rng(seed),
    )
    return backbone, head


def decode_predictions(
    raw: np.ndarray,
    image_size: int,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
    max_detections: int = 50,
) -> list[list[Detection]]:
    """Decode head outputs (N, 5+K, H, W) into per-image detections.

    Cell (i, j) owns the image region of a (image_size/H x image_size/W)
    grid; offsets shift the box center within the cell and scale its
    size.  Sigmoid objectness x softmax class score gates detections.
    """
    n, channels, grid_h, grid_w = raw.shape
    num_classes = channels - 5
    if num_classes < 1:
        raise ValueError("raw tensor has no class channels")
    cell_h = image_size / grid_h
    cell_w = image_size / grid_w
    results: list[list[Detection]] = []
    for index in range(n):
        objectness = 1.0 / (1.0 + np.exp(-raw[index, 0]))
        offsets = raw[index, 1:5]
        class_logits = raw[index, 5:]
        shifted = class_logits - class_logits.max(axis=0, keepdims=True)
        class_probs = np.exp(shifted)
        class_probs /= class_probs.sum(axis=0, keepdims=True)
        detections: list[Detection] = []
        for i in range(grid_h):
            for j in range(grid_w):
                label = int(class_probs[:, i, j].argmax())
                score = float(objectness[i, j] * class_probs[label, i, j])
                if score < score_threshold:
                    continue
                center_x = (j + 0.5 + float(np.tanh(offsets[0, i, j]))) * cell_w
                center_y = (i + 0.5 + float(np.tanh(offsets[1, i, j]))) * cell_h
                width = cell_w * float(np.exp(np.clip(offsets[2, i, j], -2, 2)))
                height = cell_h * float(np.exp(np.clip(offsets[3, i, j], -2, 2)))
                x_min = float(np.clip(center_x - width / 2, 0.0, image_size))
                x_max = float(np.clip(center_x + width / 2, 0.0, image_size))
                y_min = float(np.clip(center_y - height / 2, 0.0, image_size))
                y_max = float(np.clip(center_y + height / 2, 0.0, image_size))
                if x_max <= x_min or y_max <= y_min:
                    continue  # box degenerated outside the image
                box = BoundingBox(x_min=x_min, y_min=y_min, x_max=x_max, y_max=y_max)
                detections.append(Detection(box=box, label=label, score=score))
        detections = nms(detections, iou_threshold)[:max_detections]
        results.append(detections)
    return results


# ---------------------------------------------------------------------------
# mAP
# ---------------------------------------------------------------------------


def average_precision(
    predictions: list[list[Detection]],
    ground_truth: list[list[Detection]],
    label: int,
    iou_threshold: float = 0.5,
) -> float:
    """AP of one class over a set of images (area under the PR curve).

    Predictions are matched greedily to unmatched ground-truth boxes of
    the same class at the IoU threshold, in decreasing score order; the
    precision envelope is integrated exactly (the "all-points" AP).
    Returns NaN when the class has no ground-truth instances.
    """
    if len(predictions) != len(ground_truth):
        raise ValueError("predictions and ground truth disagree on image count")
    flat: list[tuple[float, int, Detection]] = []
    total_truth = 0
    for image_index, (preds, truths) in enumerate(zip(predictions, ground_truth)):
        total_truth += sum(1 for t in truths if t.label == label)
        for pred in preds:
            if pred.label == label:
                flat.append((pred.score, image_index, pred))
    if total_truth == 0:
        return float("nan")
    flat.sort(key=lambda item: -item[0])
    matched: dict[int, set[int]] = {}
    tp = np.zeros(len(flat))
    fp = np.zeros(len(flat))
    for rank, (_, image_index, pred) in enumerate(flat):
        truths = [t for t in ground_truth[image_index] if t.label == label]
        used = matched.setdefault(image_index, set())
        best_iou, best_index = 0.0, -1
        for truth_index, truth in enumerate(truths):
            if truth_index in used:
                continue
            overlap = iou(pred.box, truth.box)
            if overlap > best_iou:
                best_iou, best_index = overlap, truth_index
        if best_iou >= iou_threshold and best_index >= 0:
            tp[rank] = 1
            used.add(best_index)
        else:
            fp[rank] = 1
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / total_truth
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    # precision envelope + exact integration
    for i in range(len(precision) - 2, -1, -1):
        precision[i] = max(precision[i], precision[i + 1])
    ap = 0.0
    previous_recall = 0.0
    for r, p in zip(recall, precision):
        ap += (r - previous_recall) * p
        previous_recall = r
    return float(ap)


def mean_average_precision(
    predictions: list[list[Detection]],
    ground_truth: list[list[Detection]],
    num_classes: int,
    iou_threshold: float = 0.5,
) -> float:
    """mAP over the classes that appear in the ground truth."""
    aps = []
    for label in range(num_classes):
        ap = average_precision(predictions, ground_truth, label, iou_threshold)
        if not np.isnan(ap):
            aps.append(ap)
    if not aps:
        return float("nan")
    return float(np.mean(aps))


# ---------------------------------------------------------------------------
# synthetic detection dataset
# ---------------------------------------------------------------------------


@dataclass
class DetectionDataset:
    """Images with rectangle objects and their ground-truth boxes."""

    images: np.ndarray  # (N, 3, H, W)
    annotations: list[list[Detection]] = field(default_factory=list)
    num_classes: int = 0


def make_detection_dataset(
    num_images: int = 8,
    image_size: int = 32,
    num_classes: int = 3,
    max_objects: int = 3,
    seed: int = 0,
) -> DetectionDataset:
    """Rectangles with class-specific channel intensities on noise.

    Class ``k`` paints its rectangle predominantly into channel
    ``k % 3`` with a class-dependent intensity, giving detectors a
    learnable signature without real images.
    """
    if num_images < 1 or num_classes < 1:
        raise ValueError("need at least one image and one class")
    rng = np.random.default_rng(seed)
    images = rng.normal(0.0, 0.05, (num_images, 3, image_size, image_size)).astype(
        np.float32
    )
    annotations: list[list[Detection]] = []
    for index in range(num_images):
        objects: list[Detection] = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            label = int(rng.integers(num_classes))
            size = int(rng.integers(image_size // 4, image_size // 2))
            x = int(rng.integers(0, image_size - size))
            y = int(rng.integers(0, image_size - size))
            channel = label % 3
            intensity = 0.5 + 0.5 * (label // 3 + 1)
            images[index, channel, y : y + size, x : x + size] += intensity
            objects.append(
                Detection(
                    box=BoundingBox(float(x), float(y), float(x + size), float(y + size)),
                    label=label,
                )
            )
        annotations.append(objects)
    return DetectionDataset(
        images=images, annotations=annotations, num_classes=num_classes
    )
