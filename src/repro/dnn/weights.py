"""Saving and loading model weights.

Serializes a :class:`~repro.dnn.resnet.BlockwiseModel`'s parameters to
a single ``.npz`` archive, keyed by block name, layer index and
parameter index — enough to restore weights into a freshly built model
of the same architecture (the deployment flow: fine-tune once, ship the
blocks to the edge, load on demand).

Block-level granularity mirrors the paper's deployment unit: individual
blocks can be extracted and loaded into another model that shares the
architecture prefix (e.g. installing fine-tuned ``layer4`` + ``head``
blocks over a common pretrained trunk).
"""

from __future__ import annotations

import numpy as np

from repro.dnn.resnet import BLOCK_NAMES, BlockwiseModel

__all__ = ["state_dict", "load_state_dict", "save_weights", "load_weights", "transplant_block"]


def state_dict(model: BlockwiseModel) -> dict[str, np.ndarray]:
    """Flatten the model's parameters into ``{key: array}``.

    Keys look like ``layer3/12/0`` (block, primitive-layer index within
    the block, parameter index within the layer).
    """
    state: dict[str, np.ndarray] = {}
    for block_name in BLOCK_NAMES:
        block = model.blocks[block_name]
        for layer_index, layer in enumerate(block.iter_layers()):
            for param_index, param in enumerate(layer.parameters()):
                state[f"{block_name}/{layer_index}/{param_index}"] = param
    return state


def load_state_dict(model: BlockwiseModel, state: dict[str, np.ndarray]) -> None:
    """Copy ``state`` into the model's parameters, in place.

    Raises on any missing key or shape mismatch — a silent partial load
    would be a correctness hazard.
    """
    expected = state_dict(model)
    missing = sorted(set(expected) - set(state))
    if missing:
        raise KeyError(f"state is missing {len(missing)} keys, e.g. {missing[:3]}")
    for key, param in expected.items():
        value = state[key]
        if value.shape != param.shape:
            raise ValueError(
                f"shape mismatch for {key}: model {param.shape} vs state {value.shape}"
            )
        param[...] = value.astype(param.dtype)


def save_weights(model: BlockwiseModel, path: str) -> None:
    """Write all parameters to an ``.npz`` archive."""
    np.savez_compressed(path, **state_dict(model))


def load_weights(model: BlockwiseModel, path: str) -> None:
    """Restore parameters from an ``.npz`` archive (strict)."""
    with np.load(path) as archive:
        load_state_dict(model, dict(archive))


def transplant_block(
    source: BlockwiseModel, target: BlockwiseModel, block_name: str
) -> None:
    """Copy one block's parameters from ``source`` into ``target``.

    The deployment primitive behind block sharing: a fine-tuned block
    trained in one model installs into another model with the same
    architecture at that position.
    """
    if block_name not in BLOCK_NAMES:
        raise KeyError(f"unknown block {block_name!r}")
    src_layers = list(source.blocks[block_name].iter_layers())
    dst_layers = list(target.blocks[block_name].iter_layers())
    if len(src_layers) != len(dst_layers):
        raise ValueError(
            f"block {block_name!r} structure differs: "
            f"{len(src_layers)} vs {len(dst_layers)} layers"
        )
    for src, dst in zip(src_layers, dst_layers):
        src_params = src.parameters()
        dst_params = dst.parameters()
        if len(src_params) != len(dst_params):
            raise ValueError(f"layer parameter counts differ in {block_name!r}")
        for sp, dp in zip(src_params, dst_params):
            if sp.shape != dp.shape:
                raise ValueError(
                    f"shape mismatch in {block_name!r}: {sp.shape} vs {dp.shape}"
                )
            dp[...] = sp.astype(dp.dtype)
