"""Training for the object-detection head, on the autograd engine.

Completes the detection story: the anchor-free head of
:mod:`repro.dnn.detection` is trained with real gradients on the
synthetic rectangle dataset — target assignment, the composite loss
(objectness BCE + class cross entropy + box-offset regression on the
positive cells), and an Adam trainer over a frozen backbone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn import autograd
from repro.dnn.detection import (
    DetectionDataset,
    DetectionHead,
    decode_predictions,
    mean_average_precision,
)
from repro.dnn.resnet import BlockwiseModel
from repro.dnn.training import AdamState, cosine_annealing_lr

__all__ = ["encode_targets", "detection_loss_and_grad", "DetectorTrainer"]


def encode_targets(
    annotations: list,
    grid_h: int,
    grid_w: int,
    image_size: int,
    num_classes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Build per-cell training targets for a batch of images.

    Returns ``(targets, positive_mask)`` with ``targets`` shaped
    (N, 5 + K, H, W): channel 0 is the objectness label, channels 1-4
    the box-offset targets (inverse of the decoder's tanh/exp
    parameterization) and channels 5.. a one-hot class map.  The cell
    containing each object's center is positive; ties keep the last
    object (rare on the synthetic data).
    """
    n = len(annotations)
    targets = np.zeros((n, 5 + num_classes, grid_h, grid_w), dtype=np.float64)
    positive = np.zeros((n, grid_h, grid_w), dtype=bool)
    cell_h = image_size / grid_h
    cell_w = image_size / grid_w
    for index, objects in enumerate(annotations):
        for obj in objects:
            center_x = (obj.box.x_min + obj.box.x_max) / 2
            center_y = (obj.box.y_min + obj.box.y_max) / 2
            j = min(grid_w - 1, int(center_x / cell_w))
            i = min(grid_h - 1, int(center_y / cell_h))
            positive[index, i, j] = True
            targets[index, 0, i, j] = 1.0
            # inverse of decode: center offset within the cell via atanh
            dx = np.clip(center_x / cell_w - j - 0.5, -0.95, 0.95)
            dy = np.clip(center_y / cell_h - i - 0.5, -0.95, 0.95)
            targets[index, 1, i, j] = np.arctanh(dx)
            targets[index, 2, i, j] = np.arctanh(dy)
            width = max(obj.box.x_max - obj.box.x_min, 1e-3)
            height = max(obj.box.y_max - obj.box.y_min, 1e-3)
            targets[index, 3, i, j] = np.clip(np.log(width / cell_w), -2.0, 2.0)
            targets[index, 4, i, j] = np.clip(np.log(height / cell_h), -2.0, 2.0)
            targets[index, 5 + obj.label, i, j] = 1.0
    return targets, positive


def detection_loss_and_grad(
    raw: np.ndarray,
    targets: np.ndarray,
    positive: np.ndarray,
    box_weight: float = 1.0,
    class_weight: float = 1.0,
) -> tuple[float, np.ndarray]:
    """Composite detection loss and its gradient w.r.t. ``raw``.

    * objectness: sigmoid binary cross entropy over every cell;
    * box offsets: squared error on positive cells only;
    * classes: softmax cross entropy on positive cells only.
    """
    n, channels, grid_h, grid_w = raw.shape
    num_cells = n * grid_h * grid_w
    grad = np.zeros_like(raw, dtype=np.float64)

    # --- objectness BCE ------------------------------------------------
    logits = raw[:, 0]
    prob = 1.0 / (1.0 + np.exp(-logits))
    labels = targets[:, 0]
    eps = 1e-12
    obj_loss = -(
        labels * np.log(prob + eps) + (1 - labels) * np.log(1 - prob + eps)
    ).mean()
    grad[:, 0] = (prob - labels) / num_cells

    pos_count = max(1, int(positive.sum()))

    # --- box regression (positive cells) -------------------------------
    box_pred = raw[:, 1:5]
    box_target = targets[:, 1:5]
    mask = positive[:, None, :, :]
    diff = (box_pred - box_target) * mask
    box_loss = float((diff**2).sum()) / pos_count
    grad[:, 1:5] = 2.0 * box_weight * diff / pos_count

    # --- classification (positive cells) -------------------------------
    class_logits = raw[:, 5:]
    shifted = class_logits - class_logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    class_target = targets[:, 5:]
    pos = positive[:, None, :, :]
    class_loss = float(
        -(class_target * np.log(probs + eps) * pos).sum()
    ) / pos_count
    grad[:, 5:] = class_weight * (probs - class_target) * pos / pos_count

    total = float(obj_loss + box_weight * box_loss + class_weight * class_loss)
    return total, grad


@dataclass
class DetectorTrainingRun:
    """Per-epoch record of a detector training run."""

    loss: list[float] = field(default_factory=list)
    map_history: list[float] = field(default_factory=list)


class DetectorTrainer:
    """Train a detection head over a frozen backbone with Adam."""

    def __init__(
        self,
        backbone: BlockwiseModel,
        head: DetectionHead,
        image_size: int,
        lr: float = 0.005,
        batch_size: int = 8,
        seed: int = 0,
    ) -> None:
        self.backbone = backbone
        self.head = head
        self.image_size = image_size
        self.lr = lr
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._states = [AdamState.like(p) for p in self.head.module.parameters()]
        self._feature_cache: np.ndarray | None = None

    def _features(self, images: np.ndarray) -> np.ndarray:
        return self.backbone.features(images)

    def evaluate_map(
        self, dataset: DetectionDataset, score_threshold: float = 0.3
    ) -> float:
        raw = self.head(self._features(dataset.images))
        predictions = decode_predictions(
            raw, self.image_size, score_threshold=score_threshold
        )
        return mean_average_precision(
            predictions, dataset.annotations, dataset.num_classes
        )

    def fit(self, dataset: DetectionDataset, epochs: int = 10) -> DetectorTrainingRun:
        """Train on the whole dataset for ``epochs`` epochs."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        features = self._features(dataset.images)
        grid_h, grid_w = features.shape[2], features.shape[3]
        targets, positive = encode_targets(
            dataset.annotations, grid_h, grid_w, self.image_size, dataset.num_classes
        )
        run = DetectorTrainingRun()
        indices = np.arange(len(dataset.annotations))
        for epoch in range(epochs):
            lr = cosine_annealing_lr(self.lr, epoch, epochs)
            order = self._rng.permutation(indices)
            losses = []
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                raw, cache = autograd.forward(self.head.module, features[batch])
                loss, grad_raw = detection_loss_and_grad(
                    raw, targets[batch], positive[batch]
                )
                losses.append(loss)
                _, param_grads = autograd.backward(self.head.module, cache, grad_raw)
                params = self.head.module.parameters()
                for param, grad, state in zip(params, param_grads, self._states):
                    if grad is None:
                        continue
                    updated = state.step(param.astype(np.float64), grad, lr)
                    param[...] = updated.astype(param.dtype)
            run.loss.append(float(np.mean(losses)))
            run.map_history.append(self.evaluate_map(dataset))
        return run
