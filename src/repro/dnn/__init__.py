"""Numpy-based DNN substrate.

The paper profiles ResNet-18 with PyTorch on a GPU to obtain per-block
inference compute time ``c(s)``, memory footprint ``mu(s)`` and training
cost ``ct(s)``.  This package provides an equivalent substrate built from
scratch on numpy:

* :mod:`repro.dnn.ops` -- raw tensor operations (conv2d, depthwise, ...)
* :mod:`repro.dnn.layers` -- parameterized layer objects
* :mod:`repro.dnn.graph` -- sequential / residual module composition
* :mod:`repro.dnn.compile` -- fused, buffer-reusing inference plans
* :mod:`repro.dnn.resnet` -- ResNet-18 as a stem + 4 layer-blocks + head
* :mod:`repro.dnn.mobilenet` -- MobileNetV2 on the same block partition
* :mod:`repro.dnn.pruning` -- DepGraph-style structured channel pruning
* :mod:`repro.dnn.profiler` -- wall clock / FLOPs / memory measurement
* :mod:`repro.dnn.autograd` -- exact reverse-mode differentiation
* :mod:`repro.dnn.finetune` -- real gradient fine-tuning of config suffixes
* :mod:`repro.dnn.training` -- fine-tuning surrogate for CONFIG A..E
* :mod:`repro.dnn.detection` -- detection head, NMS, mAP (the paper's
  "obj. detection" method with 0.5 mAP requirements)
* :mod:`repro.dnn.detection_train` -- detection-head training
* :mod:`repro.dnn.datasets` -- the Table II base dataset (synthetic)
* :mod:`repro.dnn.configs` -- the Table I block configurations
* :mod:`repro.dnn.repository` -- profiled block/path repository for DOT
* :mod:`repro.dnn.weights` -- weight persistence and block transplanting
"""

from repro.dnn.compile import CompiledModule, compile_module
from repro.dnn.configs import BlockConfig, TABLE_I_CONFIGS
from repro.dnn.finetune import FineTuner
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.profiler import BlockProfile, ModelProfile, profile_model
from repro.dnn.pruning import prune_module
from repro.dnn.resnet import BlockwiseModel, ResNet18, build_resnet18
from repro.dnn.weights import load_weights, save_weights

__all__ = [
    "build_resnet18",
    "build_mobilenetv2",
    "CompiledModule",
    "compile_module",
    "BlockwiseModel",
    "ResNet18",
    "BlockProfile",
    "ModelProfile",
    "profile_model",
    "BlockConfig",
    "TABLE_I_CONFIGS",
    "prune_module",
    "FineTuner",
    "save_weights",
    "load_weights",
]
