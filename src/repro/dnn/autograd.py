"""Reverse-mode differentiation for the numpy DNN engine.

The training simulator (:mod:`repro.dnn.training`) covers the paper's
long fine-tuning runs with a calibrated surrogate; this module provides
the *real thing* for small models: exact backward passes for every
layer of the engine, so a Table I configuration's trainable suffix can
be fine-tuned with genuine gradients (see :mod:`repro.dnn.finetune`).

Design: a functional API rather than a tape.  ``forward(layer, x)``
returns ``(y, cache)``; ``backward(layer, cache, grad_y)`` returns
``(grad_x, param_grads)`` where ``param_grads`` aligns with
``layer.parameters()`` (entries are ``None`` for non-learnable
statistics such as batch-norm running moments).  Composites
(``Sequential``, ``Residual``) recurse.

Batch normalization runs in *training mode* here (batch statistics,
with running-moment updates), matching what a framework does during
fine-tuning; inference uses the layers' own ``forward``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dnn import ops
from repro.dnn.graph import Residual, Sequential
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)

__all__ = ["forward", "backward", "col2im", "softmax_cross_entropy_grad"]


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold im2col columns back into an image (the adjoint of im2col).

    ``cols``: (N, C*K*K, P) with P = out_h * out_w.  Overlapping window
    contributions are summed, which is exactly the gradient flow of the
    unfold operation.
    """
    n, c, h, w = input_shape
    out_h = ops.conv_output_size(h, kernel, stride, padding)
    out_w = ops.conv_output_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    reshaped = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += reshaped[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def softmax_cross_entropy_grad(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    probs = ops.softmax(logits, axis=1)
    n = logits.shape[0]
    loss = float(-np.log(np.clip(probs[np.arange(n), labels], 1e-12, None)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


@dataclass
class _Cache:
    """Opaque per-layer forward cache."""

    kind: str
    data: Any


# ---------------------------------------------------------------------------
# forward
# ---------------------------------------------------------------------------


def forward(layer: Layer, x: np.ndarray) -> tuple[np.ndarray, _Cache]:
    """Training-mode forward pass with the cache ``backward`` needs."""
    if isinstance(layer, Sequential):  # NamedModule included
        caches = []
        out = x
        for child in layer.layers:
            out, cache = forward(child, out)
            caches.append(cache)
        return out, _Cache("sequential", caches)
    if isinstance(layer, Residual):
        body_out, body_cache = forward(layer.body, x)
        if layer.shortcut is not None:
            short_out, short_cache = forward(layer.shortcut, x)
        else:
            short_out, short_cache = x, None
        total = body_out + short_out
        if layer.activation == "relu":
            out = np.maximum(total, 0.0)
            mask = total > 0
        else:
            out = total
            mask = None
        return out, _Cache("residual", (body_cache, short_cache, mask))
    if isinstance(layer, Conv2d):
        cols, out_h, out_w = ops.im2col(x, layer.kernel, layer.stride, layer.padding)
        w_mat = layer.weight.reshape(layer.out_channels, -1)
        out = np.einsum("oc,ncp->nop", w_mat, cols, optimize=True)
        if layer.bias is not None:
            out += layer.bias[None, :, None]
        out = out.reshape(x.shape[0], layer.out_channels, out_h, out_w)
        return out, _Cache("conv2d", (x.shape, cols))
    if isinstance(layer, DepthwiseConv2d):
        out = layer(x)
        return out, _Cache("depthwise", (x,))
    if isinstance(layer, BatchNorm2d):
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        inv_std = 1.0 / np.sqrt(var + 1e-5)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = layer.gamma[None, :, None, None] * x_hat + layer.beta[None, :, None, None]
        # running-moment update, momentum 0.1 (the framework default)
        layer.running_mean = (0.9 * layer.running_mean + 0.1 * mean).astype(np.float32)
        layer.running_var = (0.9 * layer.running_var + 0.1 * var).astype(np.float32)
        return out, _Cache("batchnorm", (x_hat, inv_std))
    if isinstance(layer, (ReLU,)):
        out = np.maximum(x, 0.0)
        return out, _Cache("relu", (x > 0,))
    if isinstance(layer, ReLU6):
        out = np.clip(x, 0.0, 6.0)
        return out, _Cache("relu", ((x > 0) & (x < 6.0),))
    if isinstance(layer, MaxPool2d):
        cols, out_h, out_w = ops.im2col(x, layer.kernel, layer.stride, layer.padding)
        n, c = x.shape[0], x.shape[1]
        windows = cols.reshape(n, c, layer.kernel * layer.kernel, out_h * out_w)
        argmax = windows.argmax(axis=2)
        out = np.take_along_axis(windows, argmax[:, :, None, :], axis=2)[:, :, 0, :]
        out = out.reshape(n, c, out_h, out_w)
        return out, _Cache("maxpool", (x.shape, argmax, out_h, out_w))
    if isinstance(layer, GlobalAvgPool):
        return x.mean(axis=(2, 3)), _Cache("gap", (x.shape,))
    if isinstance(layer, Flatten):
        return x.reshape(x.shape[0], -1), _Cache("flatten", (x.shape,))
    if isinstance(layer, Linear):
        return ops.linear(x, layer.weight, layer.bias), _Cache("linear", (x,))
    raise TypeError(f"no training-mode forward for layer {type(layer)!r}")


# ---------------------------------------------------------------------------
# backward
# ---------------------------------------------------------------------------


def backward(
    layer: Layer, cache: _Cache, grad_y: np.ndarray
) -> tuple[np.ndarray, list[np.ndarray | None]]:
    """Gradient of the loss w.r.t. the layer input and its parameters."""
    if isinstance(layer, Sequential):
        grads: list[np.ndarray | None] = []
        grad = grad_y
        child_grads: list[list[np.ndarray | None]] = []
        for child, child_cache in zip(reversed(layer.layers), reversed(cache.data)):
            grad, param_grads = backward(child, child_cache, grad)
            child_grads.append(param_grads)
        for param_grads in reversed(child_grads):
            grads.extend(param_grads)
        return grad, grads
    if isinstance(layer, Residual):
        body_cache, short_cache, mask = cache.data
        grad = grad_y if mask is None else grad_y * mask
        grad_body, body_grads = backward(layer.body, body_cache, grad)
        if layer.shortcut is not None:
            grad_short, short_grads = backward(layer.shortcut, short_cache, grad)
            return grad_body + grad_short, body_grads + short_grads
        return grad_body + grad, body_grads
    if isinstance(layer, Conv2d):
        x_shape, cols = cache.data
        n = grad_y.shape[0]
        grad_mat = grad_y.reshape(n, layer.out_channels, -1)
        grad_w = np.einsum("nop,ncp->oc", grad_mat, cols, optimize=True).reshape(
            layer.weight.shape
        )
        w_mat = layer.weight.reshape(layer.out_channels, -1)
        grad_cols = np.einsum("oc,nop->ncp", w_mat, grad_mat, optimize=True)
        grad_x = col2im(grad_cols, x_shape, layer.kernel, layer.stride, layer.padding)
        grads: list[np.ndarray | None] = [grad_w]
        if layer.bias is not None:
            grads.append(grad_mat.sum(axis=(0, 2)))
        return grad_x, grads
    if isinstance(layer, DepthwiseConv2d):
        (x,) = cache.data
        k, stride, padding = layer.kernel, layer.stride, layer.padding
        n, c, h, w = x.shape
        out_h = ops.conv_output_size(h, k, stride, padding)
        out_w = ops.conv_output_size(w, k, stride, padding)
        if padding > 0:
            x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        else:
            x_pad = x
        s0, s1, s2, s3 = x_pad.strides
        windows = np.lib.stride_tricks.as_strided(
            x_pad,
            shape=(n, c, k, k, out_h, out_w),
            strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
            writeable=False,
        )
        grad_w = np.einsum("nckhij,ncij->ckh", windows, grad_y, optimize=True)
        # grad wrt input: scatter grad_y * w over the windows
        grad_pad = np.zeros_like(x_pad)
        for ki in range(k):
            i_end = ki + stride * out_h
            for kj in range(k):
                j_end = kj + stride * out_w
                grad_pad[:, :, ki:i_end:stride, kj:j_end:stride] += (
                    grad_y * layer.weight[None, :, ki, kj, None, None]
                )
        grad_x = (
            grad_pad[:, :, padding:-padding, padding:-padding] if padding else grad_pad
        )
        return grad_x, [grad_w]
    if isinstance(layer, BatchNorm2d):
        x_hat, inv_std = cache.data
        axes = (0, 2, 3)
        m = float(np.prod([grad_y.shape[a] for a in axes]))
        grad_gamma = (grad_y * x_hat).sum(axis=axes)
        grad_beta = grad_y.sum(axis=axes)
        grad_xhat = grad_y * layer.gamma[None, :, None, None]
        grad_x = (
            inv_std[None, :, None, None]
            / m
            * (
                m * grad_xhat
                - grad_xhat.sum(axis=axes)[None, :, None, None]
                - x_hat * (grad_xhat * x_hat).sum(axis=axes)[None, :, None, None]
            )
        )
        # parameters() order: gamma, beta, running_mean, running_var
        return grad_x, [grad_gamma, grad_beta, None, None]
    if cache.kind == "relu":
        (mask,) = cache.data
        return grad_y * mask, []
    if isinstance(layer, MaxPool2d):
        x_shape, argmax, out_h, out_w = cache.data
        n, c = x_shape[0], x_shape[1]
        windows_grad = np.zeros(
            (n, c, layer.kernel * layer.kernel, out_h * out_w), dtype=grad_y.dtype
        )
        flat = grad_y.reshape(n, c, out_h * out_w)
        np.put_along_axis(windows_grad, argmax[:, :, None, :], flat[:, :, None, :], axis=2)
        cols = windows_grad.reshape(n, c * layer.kernel * layer.kernel, out_h * out_w)
        grad_x = col2im(cols, x_shape, layer.kernel, layer.stride, layer.padding)
        return grad_x, []
    if isinstance(layer, GlobalAvgPool):
        (x_shape,) = cache.data
        n, c, h, w = x_shape
        grad_x = np.broadcast_to(
            grad_y[:, :, None, None] / (h * w), x_shape
        ).astype(grad_y.dtype)
        return grad_x.copy(), []
    if isinstance(layer, Flatten):
        (x_shape,) = cache.data
        return grad_y.reshape(x_shape), []
    if isinstance(layer, Linear):
        (x,) = cache.data
        grad_w = grad_y.T @ x
        grad_b = grad_y.sum(axis=0)
        grad_x = grad_y @ layer.weight
        return grad_x, [grad_w, grad_b]
    raise TypeError(f"no backward for layer {type(layer)!r}")
