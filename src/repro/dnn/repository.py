"""From profiled ResNet configurations to DOT blocks and paths.

The paper characterizes each DNN block experimentally and feeds the
measured costs to the DOT problem.  This module performs that step: it
builds a ResNet-18 per Table I configuration (applying 80% structured
pruning to the fine-tuned blocks of ``-pruned`` variants), profiles it,
evaluates the converged fine-tuning accuracy with the training
simulator, and packages the result as the 4-block paths the evaluation
scenarios use ("each DNN path is composed of four blocks", Sec. V-A).

Sharing semantics: shared (frozen, pretrained) stages map to *global*
block ids (``base:<group>``) with zero training cost; fine-tuned stages
map to per-task ids (``task<t>:<config>:<group>``).  Paths from
different tasks therefore share exactly the blocks the configuration
freezes — the coupling OffloaDNN exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.catalog import Block, Path
from repro.core.task import QualityLevel, Task
from repro.dnn.configs import BlockConfig, TABLE_I_CONFIGS
from repro.dnn.profiler import ModelProfile, profile_model
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import ResNet18, build_resnet18
from repro.dnn.training import (
    LearningCurveModel,
    pruned_accuracy_drop,
    training_cost_seconds,
)

__all__ = [
    "BLOCK_GROUPS",
    "GroupCost",
    "ProfiledConfig",
    "profile_table_i",
    "build_task_paths",
]

#: The 4-block partition of the ResNet layer-blocks used by the paper's
#: scenarios: stem travels with layer1, the classifier with layer4.
BLOCK_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("g1", ("stem", "layer1")),
    ("g2", ("layer2",)),
    ("g3", ("layer3",)),
    ("g4", ("layer4", "head")),
)


@dataclass(frozen=True)
class GroupCost:
    """Measured cost of one 4-block group under one configuration."""

    group: str
    compute_time_s: float
    memory_gb: float
    training_cost_s: float
    shared: bool


@dataclass(frozen=True)
class ProfiledConfig:
    """One Table I configuration with measured costs and accuracy."""

    config: BlockConfig
    groups: tuple[GroupCost, ...]
    accuracy: float
    #: numeric format of the deployed blocks ("fp32" or "int8") — int8
    #: variants carry int8-sized memory and their own measured c(s)
    precision: str = "fp32"

    @property
    def total_compute_time_s(self) -> float:
        return sum(g.compute_time_s for g in self.groups)

    @property
    def total_memory_gb(self) -> float:
        return sum(g.memory_gb for g in self.groups)


def _group_shared(config: BlockConfig, members: tuple[str, ...]) -> bool:
    """A group is shared when every prunable/trainable member is frozen."""
    stage_members = [m for m in members if m.startswith("layer")]
    if not stage_members:
        return not config.from_scratch
    if "head" in members:
        return False  # the classifier is always task specific
    return all(m in config.shared_stages for m in stage_members) and not config.from_scratch


def _build_config_model(
    config: BlockConfig,
    num_classes: int,
    input_size: int,
    width: int,
    seed: int,
) -> ResNet18:
    model = build_resnet18(
        num_classes=num_classes, input_size=input_size, width=width, seed=seed
    )
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


def _profile_config(
    config: BlockConfig,
    num_classes: int,
    input_size: int,
    width: int,
    seed: int,
    fine_tune_epochs: int,
    repeats: int,
    base_profile: ModelProfile,
    compiled: bool = False,
    quantize: str | None = None,
) -> ProfiledConfig:
    model = _build_config_model(config, num_classes, input_size, width, seed)
    # the pruning accuracy drop is a function of the *full* model's
    # parameter split, so derive it before/independently of pruning
    full_model = build_resnet18(
        num_classes=num_classes, input_size=input_size, width=width, seed=seed
    )
    profile: ModelProfile = profile_model(
        model, repeats=repeats, compiled=compiled, quantize=quantize
    )
    groups: list[GroupCost] = []
    for group_name, members in BLOCK_GROUPS:
        shared = _group_shared(config, members)
        # Shared groups are the *same deployed blocks* across every
        # configuration and task, so their cost must come from a single
        # measurement (the base model); per-config wall-clock noise
        # would otherwise make the catalog inconsistent.
        source = base_profile if shared else profile
        compute = sum(source.block(m).compute_time_s for m in members)
        memory = sum(source.block(m).memory_bytes for m in members) / 1e9
        if shared:
            training = 0.0
        else:
            # training cost attributed proportionally to the group's
            # share of trainable parameters
            trainable = set(config.trainable_blocks)
            group_params = sum(
                profile.block(m).params for m in members if m in trainable
            )
            total = sum(b.params for b in profile.blocks if b.name in trainable)
            full_cost = training_cost_seconds(model, config, fine_tune_epochs)
            training = full_cost * (group_params / total) if total else 0.0
        groups.append(
            GroupCost(
                group=group_name,
                compute_time_s=compute,
                memory_gb=memory,
                training_cost_s=training,
                shared=shared,
            )
        )
    curve = LearningCurveModel.for_config(config, num_classes=num_classes + 1)
    accuracy = curve.accuracy_at(fine_tune_epochs)
    if config.pruned:
        accuracy = max(0.0, accuracy - pruned_accuracy_drop(config, full_model))
    if quantize == "int8":
        from repro.dnn.quantize import INT8_ACCURACY_DROP

        accuracy = max(0.0, accuracy - INT8_ACCURACY_DROP)
    return ProfiledConfig(
        config=config,
        groups=tuple(groups),
        accuracy=accuracy,
        precision=quantize or "fp32",
    )


def profile_table_i(
    num_classes: int = 60,
    input_size: int = 32,
    width: int = 64,
    seed: int = 0,
    fine_tune_epochs: int = 100,
    repeats: int = 3,
    configs: dict[str, BlockConfig] | None = None,
    compiled: bool = False,
    include_int8: bool = False,
) -> dict[str, ProfiledConfig]:
    """Profile every Table I configuration (the scenario cost basis).

    ``compiled=True`` times fused execution plans instead of eager
    forwards (see :func:`repro.dnn.profiler.profile_model`), producing
    the compute-cost catalog an engine-optimized deployment would feed
    to the DOT solver.

    ``include_int8=True`` additionally registers an int8-quantized
    variant of every configuration under ``"<name>-int8"`` — same
    architecture, but profiled through the quantized engine, so it
    carries its own measured ``c(s)``, an int8-sized memory footprint
    (4x smaller weights) and the calibrated-quantization accuracy drop.
    The DOT solver then prices quantization exactly like pruning: one
    more point on the cost/accuracy frontier.
    """
    configs = configs or TABLE_I_CONFIGS
    base_model = build_resnet18(
        num_classes=num_classes, input_size=input_size, width=width, seed=seed
    )
    base_profile = profile_model(base_model, repeats=repeats, compiled=compiled)
    profiled = {
        name: _profile_config(
            cfg,
            num_classes,
            input_size,
            width,
            seed,
            fine_tune_epochs,
            repeats,
            base_profile,
            compiled=compiled,
        )
        for name, cfg in configs.items()
    }
    if include_int8:
        base_int8 = profile_model(base_model, repeats=repeats, quantize="int8")
        for name, cfg in configs.items():
            profiled[f"{name}-int8"] = _profile_config(
                cfg,
                num_classes,
                input_size,
                width,
                seed,
                fine_tune_epochs,
                repeats,
                base_int8,
                compiled=True,
                quantize="int8",
            )
    return profiled


def build_task_paths(
    task: Task,
    profiled: dict[str, ProfiledConfig],
    quality: QualityLevel,
    memory_scale: float = 1.0,
    compute_scale: float = 1.0,
    accuracy_offset: float = 0.0,
) -> list[Path]:
    """Instantiate catalog paths for ``task`` from profiled configs.

    Shared groups become global ``base:`` blocks (memory and training
    paid once across every task using them); fine-tuned groups become
    per-task blocks.  ``memory_scale`` / ``compute_scale`` map the CPU
    profiling substrate to scenario magnitudes and ``accuracy_offset``
    models per-task difficulty.
    """
    paths: list[Path] = []
    for name, pc in profiled.items():
        # int8 variants deploy *different* shared blocks than fp32 ones
        # (quantized weights), so their base ids live in a separate
        # namespace — sharing happens among int8 paths, never across
        # precisions.
        base = "base" if pc.precision == "fp32" else f"base:{pc.precision}"
        dnn_id = f"task{task.task_id}:{name}" if not _all_shared(pc) else base
        blocks: list[Block] = []
        for group in pc.groups:
            if group.shared:
                block_id = f"{base}:{group.group}"
                block_dnn = base
            else:
                block_id = f"task{task.task_id}:{name}:{group.group}"
                block_dnn = dnn_id
            blocks.append(
                Block(
                    block_id=block_id,
                    dnn_id=block_dnn,
                    compute_time_s=group.compute_time_s * compute_scale,
                    memory_gb=group.memory_gb * memory_scale,
                    training_cost_s=group.training_cost_s,
                )
            )
        accuracy = min(1.0, max(0.0, pc.accuracy + accuracy_offset))
        paths.append(
            Path(
                path_id=f"task{task.task_id}:{name}",
                dnn_id=dnn_id,
                task_id=task.task_id,
                blocks=tuple(blocks),
                accuracy=accuracy,
                quality=quality,
            )
        )
    return paths


def _all_shared(pc: ProfiledConfig) -> bool:
    return all(g.shared for g in pc.groups)
