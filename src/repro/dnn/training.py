"""Fine-tuning simulator for the Table I configurations.

The paper's first motivating experiment (Fig. 2) fine-tunes ResNet-18
under CONFIG A..E with batch 256, Adam, cosine-annealing learning rate,
cross-entropy loss, and reports (left) testing accuracy per epoch and
(right) peak GPU memory occupancy.  Training the real network for 250
epochs is a multi-GPU-hour job; the DOT problem, however, only consumes
the *converged accuracy* and the *training cost* of each block
configuration.  We therefore provide:

* :class:`HeadTrainer` — *real* numpy training (Adam + cosine annealing +
  cross entropy, exactly the paper's recipe) of the classifier head on
  feature data; it exhibits genuine convergence/overfitting dynamics and
  anchors the surrogate below;
* :class:`LearningCurveModel` — a documented surrogate mapping a
  :class:`~repro.dnn.configs.BlockConfig` to an accuracy-vs-epoch curve.
  Its parameters are derived from the configuration *structure* (how many
  layer-blocks are shared, whether training starts from scratch), which
  is what produces the published orderings: CONFIG B/C converge fast then
  overfit; D/E converge slower than C; A is slowest but reaches the
  highest accuracy after 250 epochs;
* :class:`TrainingMemoryModel` — peak training memory from parameter /
  gradient / Adam-state / activation bookkeeping, with the frozen blocks
  contributing no gradient or optimizer state (the Fig. 2-right effect);
* :func:`training_cost_seconds` — the ``ct(s)`` DOT input, from forward
  and backward FLOPs of trainable blocks on a reference device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn import ops
from repro.dnn.configs import STAGE_NAMES, BlockConfig
from repro.dnn.datasets import FeatureDataset
from repro.dnn.layers import BYTES_PER_PARAM
from repro.dnn.resnet import BLOCK_NAMES, ResNet18

__all__ = [
    "AdamState",
    "HeadTrainer",
    "HeadTrainingRun",
    "LearningCurveModel",
    "TrainingMemoryModel",
    "FineTuneOutcome",
    "simulate_fine_tuning",
    "training_cost_seconds",
    "pruned_accuracy_drop",
]


# ---------------------------------------------------------------------------
# Real head training (numpy Adam, the paper's optimizer recipe)
# ---------------------------------------------------------------------------


@dataclass
class AdamState:
    """Adam moment estimates for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0

    @classmethod
    def like(cls, param: np.ndarray) -> "AdamState":
        return cls(m=np.zeros_like(param, dtype=np.float64), v=np.zeros_like(param, dtype=np.float64))

    def step(
        self,
        param: np.ndarray,
        grad: np.ndarray,
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> np.ndarray:
        """One Adam update; returns the new parameter value."""
        self.t += 1
        if weight_decay:
            grad = grad + weight_decay * param
        self.m = beta1 * self.m + (1 - beta1) * grad
        self.v = beta2 * self.v + (1 - beta2) * grad**2
        m_hat = self.m / (1 - beta1**self.t)
        v_hat = self.v / (1 - beta2**self.t)
        return param - lr * m_hat / (np.sqrt(v_hat) + eps)


def cosine_annealing_lr(base_lr: float, epoch: int, total_epochs: int, min_lr: float = 0.0) -> float:
    """Cosine-annealing schedule (the paper's scheduler)."""
    if total_epochs <= 0:
        raise ValueError("total_epochs must be positive")
    progress = min(max(epoch, 0), total_epochs) / total_epochs
    return min_lr + 0.5 * (base_lr - min_lr) * (1 + np.cos(np.pi * progress))


@dataclass
class HeadTrainingRun:
    """Per-epoch record of a real head-training run."""

    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0


class HeadTrainer:
    """Train a softmax classifier head on feature data with numpy Adam.

    This is *real* gradient-based training matching the paper's recipe
    (Adam, cosine annealing, cross entropy, configurable batch size).
    """

    def __init__(
        self,
        feature_dim: int,
        num_classes: int,
        lr: float = 0.01,
        weight_decay: float = 1e-3,
        batch_size: int = 256,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.weight = rng.normal(0.0, 0.01, (num_classes, feature_dim))
        self.bias = np.zeros(num_classes)
        self.lr = lr
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self._w_state = AdamState.like(self.weight)
        self._b_state = AdamState.like(self.bias)
        self._rng = rng

    def logits(self, features: np.ndarray) -> np.ndarray:
        return features @ self.weight.T + self.bias

    def accuracy(self, dataset: FeatureDataset) -> float:
        predictions = self.logits(dataset.features).argmax(axis=1)
        return float((predictions == dataset.labels).mean())

    def _epoch(self, train: FeatureDataset, lr: float) -> float:
        order = self._rng.permutation(len(train.labels))
        losses = []
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            x = train.features[idx]
            y = train.labels[idx]
            logits = self.logits(x)
            probs = ops.softmax(logits, axis=1)
            losses.append(ops.cross_entropy(logits, y))
            # gradient of mean cross entropy wrt logits
            grad_logits = probs
            grad_logits[np.arange(len(y)), y] -= 1.0
            grad_logits /= len(y)
            grad_w = grad_logits.T @ x
            grad_b = grad_logits.sum(axis=0)
            self.weight = self._w_state.step(
                self.weight, grad_w, lr, weight_decay=self.weight_decay
            )
            self.bias = self._b_state.step(self.bias, grad_b, lr)
        return float(np.mean(losses))

    def fit(
        self,
        train: FeatureDataset,
        test: FeatureDataset,
        epochs: int,
    ) -> HeadTrainingRun:
        """Train for ``epochs`` epochs, recording accuracy after each."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        run = HeadTrainingRun()
        for epoch in range(epochs):
            lr = cosine_annealing_lr(self.lr, epoch, epochs)
            loss = self._epoch(train, lr)
            run.train_loss.append(loss)
            run.train_accuracy.append(self.accuracy(train))
            run.test_accuracy.append(self.accuracy(test))
        return run


# ---------------------------------------------------------------------------
# Surrogate learning curves for the deep configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LearningCurveModel:
    """Accuracy-vs-epoch surrogate for a Table I configuration.

    Model: ``acc(e) = floor + (peak - floor) * (1 - exp(-e / tau))``,
    optionally followed by an overfitting decay after ``overfit_epoch``
    toward ``peak - overfit_drop``.  All parameters are derived from the
    configuration structure:

    * ``peak`` decreases with the fraction of *shared* (frozen) blocks —
      frozen general-purpose features cap attainable task accuracy
      (CONFIG B lowest, A highest);
    * ``tau`` (convergence time constant) grows with the fraction of
      *trainable* blocks and is further inflated for from-scratch
      training (CONFIG A slowest; B fastest; C faster than D faster
      than E, the published ordering);
    * only heavily shared configurations (B, C) overfit: their small
      task-specific capacity memorizes the new dataset, the effect the
      paper reports after long training.
    """

    peak: float
    floor: float
    tau: float
    overfit_epoch: int | None
    overfit_drop: float
    noise_std: float = 0.004

    @classmethod
    def for_config(
        cls,
        config: BlockConfig,
        max_accuracy: float = 0.88,
        num_classes: int = 61,
    ) -> "LearningCurveModel":
        shared_fraction = len(config.shared_stages) / len(STAGE_NAMES)
        trainable_fraction = 1.0 - shared_fraction
        if config.from_scratch:
            # full fine-tuning from scratch has the highest capacity and
            # eventually surpasses every shared configuration
            peak = max_accuracy + 0.005
            floor = 1.0 / num_classes
            tau = (4.0 + 56.0 * trainable_fraction**1.2) * 1.5
        else:
            peak = max_accuracy - 0.075 * shared_fraction**1.75
            floor = 0.25  # pretrained features give a warm start
            tau = 4.0 + 56.0 * trainable_fraction**1.2
        overfit_strength = max(0.0, shared_fraction - 0.5)
        if overfit_strength > 0:
            overfit_epoch = int(100 + 100 * (1 - shared_fraction))
            overfit_drop = 0.16 * overfit_strength
        else:
            overfit_epoch = None
            overfit_drop = 0.0
        return cls(
            peak=peak,
            floor=floor,
            tau=tau,
            overfit_epoch=overfit_epoch,
            overfit_drop=overfit_drop,
        )

    def accuracy_at(self, epoch: int) -> float:
        """Noise-free accuracy after ``epoch`` training epochs."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        acc = self.floor + (self.peak - self.floor) * (1 - np.exp(-epoch / self.tau))
        if self.overfit_epoch is not None and epoch > self.overfit_epoch:
            # exponential approach to (peak - overfit_drop)
            excess = epoch - self.overfit_epoch
            acc -= self.overfit_drop * (1 - np.exp(-excess / 60.0))
        return float(acc)

    def curve(self, epochs: int, seed: int | None = None) -> np.ndarray:
        """Accuracy after each of ``epochs`` epochs (1-based)."""
        values = np.array([self.accuracy_at(e) for e in range(1, epochs + 1)])
        if seed is not None and self.noise_std > 0:
            rng = np.random.default_rng(seed)
            values = values + rng.normal(0.0, self.noise_std, size=values.shape)
        return np.clip(values, 0.0, 1.0)

    def epochs_to_reach(self, target: float, limit: int = 1000) -> int | None:
        """First epoch at which the noise-free curve reaches ``target``."""
        for epoch in range(1, limit + 1):
            if self.accuracy_at(epoch) >= target:
                return epoch
        return None


# ---------------------------------------------------------------------------
# Peak training memory (Fig. 2 right)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrainingMemoryModel:
    """Peak device memory during training of a configuration.

    Accounting (all float32):

    * every parameter is resident (frozen or not);
    * trainable parameters additionally hold a gradient and two Adam
      moment buffers (3 extra copies);
    * activations of trainable blocks are retained for backward, scaled
      by the batch size; frozen blocks only need their transient peak
      buffer (no-grad forward);
    * a constant framework overhead (CUDA context, cuDNN workspaces)
      mirrors what any real GPU measurement includes.
    """

    batch_size: int = 256
    framework_overhead_bytes: int = 1_500 * 1024 * 1024
    bytes_per_scalar: int = BYTES_PER_PARAM

    def peak_bytes(self, model: ResNet18, config: BlockConfig) -> int:
        trainable = set(config.trainable_blocks)
        total = self.framework_overhead_bytes
        shape: tuple[int, ...] = model.input_shape
        transient_peak = 0
        for name in BLOCK_NAMES:
            block = model.blocks[name]
            params = block.param_count()
            total += params * self.bytes_per_scalar  # weights always resident
            if name in trainable:
                total += 3 * params * self.bytes_per_scalar  # grad + Adam m, v
                stored = block.total_activations(shape) * self.batch_size
                total += stored * self.bytes_per_scalar
            else:
                transient = block.activation_size(shape) * self.batch_size
                transient_peak = max(transient_peak, transient)
            shape = block.output_shape(shape)
        total += transient_peak * self.bytes_per_scalar
        return total

    def peak_mib(self, model: ResNet18, config: BlockConfig) -> float:
        return self.peak_bytes(model, config) / (1024 * 1024)


# ---------------------------------------------------------------------------
# Training cost and pruning accuracy effects
# ---------------------------------------------------------------------------

#: Sustained training throughput of the reference edge GPU, in FLOP/s.
#: Calibrated so that a full ResNet-18 fine-tune costs on the order of the
#: paper's normalization constant ``Ct = 1000 s``.
REFERENCE_DEVICE_FLOPS = 5.0e12


def training_cost_seconds(
    model: ResNet18,
    config: BlockConfig,
    epochs: int,
    samples_per_epoch: int = 2_000,
    device_flops: float = REFERENCE_DEVICE_FLOPS,
) -> float:
    """Estimated wall-clock training cost (the DOT ``ct`` input).

    Every sample is forwarded through the whole network; backward costs
    roughly twice the forward FLOPs but only for trainable blocks (frozen
    blocks neither store activations nor compute weight gradients — the
    "shared layer-blocks are not using processing resources" effect the
    paper highlights).
    """
    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    trainable = set(config.trainable_blocks)
    forward_flops = 0
    backward_flops = 0
    shape: tuple[int, ...] = model.input_shape
    for name in BLOCK_NAMES:
        block = model.blocks[name]
        block_flops = block.flops(shape)
        forward_flops += block_flops
        if name in trainable:
            backward_flops += 2 * block_flops
        shape = block.output_shape(shape)
    total = (forward_flops + backward_flops) * samples_per_epoch * epochs
    return total / device_flops


def pruned_accuracy_drop(
    config: BlockConfig,
    model: ResNet18,
    base_drop: float = 0.015,
    capacity_sensitivity: float = 0.08,
) -> float:
    """Accuracy lost by pruning the fine-tuned blocks at the config ratio.

    ``model`` must be the *unpruned* reference model: the drop grows with
    the fraction of the full network's parameters that get pruned.
    CONFIG B-pruned removes only head-adjacent capacity and loses the
    least, CONFIG A-pruned removes the whole network's worth (the
    Fig. 3-right ordering).
    """
    if not config.pruned:
        return 0.0
    total_params = model.param_count()
    pruned_params = sum(
        model.blocks[name].param_count() for name in config.prunable_blocks
    )
    fraction = pruned_params / total_params if total_params else 0.0
    return base_drop + capacity_sensitivity * fraction * config.prune_ratio


@dataclass(frozen=True)
class FineTuneOutcome:
    """Summary of a simulated fine-tuning run for one configuration."""

    config_name: str
    epochs: int
    accuracy_curve: np.ndarray
    final_accuracy: float
    peak_memory_mib: float
    training_cost_s: float


def simulate_fine_tuning(
    model: ResNet18,
    config: BlockConfig,
    epochs: int,
    batch_size: int = 256,
    seed: int = 0,
    memory_model: TrainingMemoryModel | None = None,
) -> FineTuneOutcome:
    """Simulate fine-tuning ``config`` for ``epochs`` epochs.

    Combines the learning-curve surrogate (accuracy trajectory), the
    memory model (peak occupancy) and the analytic cost model — the three
    quantities Fig. 2 and the DOT inputs require.
    """
    curve_model = LearningCurveModel.for_config(config, num_classes=model.num_classes + 1)
    curve = curve_model.curve(epochs, seed=seed)
    memory = memory_model or TrainingMemoryModel(batch_size=batch_size)
    final = float(curve[-1]) if len(curve) else curve_model.floor
    if config.pruned:
        final = max(0.0, final - pruned_accuracy_drop(config, model))
    return FineTuneOutcome(
        config_name=config.name,
        epochs=epochs,
        accuracy_curve=curve,
        final_accuracy=final,
        peak_memory_mib=memory.peak_mib(model, config),
        training_cost_s=training_cost_seconds(model, config, epochs),
    )
