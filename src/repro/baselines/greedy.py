"""Greedy no-sharing baseline for ablations.

Like OffloaDNN it admits tasks in priority order with fractional
admission, but it ignores block sharing: every task deploys dedicated
copies of its cheapest feasible path's blocks.  Comparing it against
OffloaDNN isolates the contribution of block sharing (innovation 1)
from the contribution of fractional admission.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import BranchItem, solve_branch
from repro.core.tree import build_tree

__all__ = ["GreedyNoSharingSolver"]


@dataclass
class GreedyNoSharingSolver:
    """Priority-greedy fractional admission without block sharing."""

    name: str = "greedy-no-sharing"
    admission_floor: float = 1e-6
    #: timestamp source for ``solve_time_s`` (injectable for testing)
    clock: Callable[[], float] = time.perf_counter

    def solve(self, problem: DOTProblem) -> DOTSolution:
        tree = build_tree(problem)
        start = self.clock()
        solution = DOTSolution()
        remaining_memory = problem.budgets.memory_gb
        placed = []
        for clique in tree.cliques:
            picked = None
            for vertex in clique.vertices:
                memory = sum(b.memory_gb for b in vertex.path.blocks)
                if memory <= remaining_memory + 1e-12:
                    picked = vertex
                    remaining_memory -= memory
                    break
            if picked is None:
                task = clique.task
                solution.assignments[task.task_id] = Assignment(
                    task=task, path=None, admission_ratio=0.0, radio_blocks=0
                )
            else:
                placed.append(picked)
        items = [
            BranchItem(task=v.task, path=v.path, bits_per_rb=v.bits_per_rb)
            for v in placed
        ]
        allocation = solve_branch(items, problem.budgets, self.admission_floor)
        for vertex, z, r in zip(placed, allocation.admission, allocation.radio_blocks):
            blocks = tuple(
                replace(
                    b,
                    block_id=f"dedicated:task{vertex.task.task_id}:{b.block_id}",
                    dnn_id=f"dedicated:task{vertex.task.task_id}:{b.dnn_id}",
                )
                for b in vertex.path.blocks
            )
            path = replace(vertex.path, blocks=blocks)
            solution.assignments[vertex.task.task_id] = Assignment(
                task=vertex.task, path=path, admission_ratio=z, radio_blocks=r
            )
        solution.solve_time_s = self.clock() - start
        solution.tree_build_time_s = tree.build_time_s
        solution.solver_name = self.name
        return solution
