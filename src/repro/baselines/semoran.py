"""Re-implementation of the SEM-O-RAN policy [5] (the paper's baseline).

From Sec. V/VI of the OffloaDNN paper, SEM-O-RAN:

* maximizes the number of admitted offloaded tasks multiplied by their
  value (here: the task priority), "till there are enough resources
  available" — a greedy value-ordered admission;
* admits or rejects *all* requests of a task (binary admission, no
  fractional ratios);
* applies *semantic compression* to task input images: it may select a
  lower quality level (fewer bits) when the accuracy requirement still
  holds, reducing radio consumption;
* allocates resources of different types in a *balanced* manner to avoid
  starvation — realized by checking every resource dimension during
  admission and then spreading the leftover RBs across admitted slices;
* does **not** leverage DNN block sharing, structure optimization,
  fine-tuning or pruning: every admitted task is served by its own
  dedicated full-accuracy DNN deployment.

The no-sharing property is enforced structurally: the chosen path's
blocks are cloned with per-task ids, so the memory and training cost of
each deployment are counted in full even if the underlying catalog
would have allowed sharing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.catalog import Block, Path
from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import minimum_latency_rbs
from repro.core.task import Task

__all__ = ["SemORANSolver"]


def _dedicated_copy(path: Path, task: Task) -> Path:
    """Clone a path with per-task block ids (no sharing, costs in full)."""
    blocks = tuple(
        replace(
            block,
            block_id=f"semoran:task{task.task_id}:{block.block_id}",
            dnn_id=f"semoran:task{task.task_id}:{block.dnn_id}",
        )
        for block in path.blocks
    )
    return replace(path, path_id=f"semoran:{path.path_id}", blocks=blocks)


@dataclass
class SemORANSolver:
    """Greedy value-ordered binary admission with dedicated DNNs."""

    name: str = "SEM-O-RAN"
    #: whether leftover RBs are spread across admitted slices (the
    #: "balanced allocation" behaviour); disable for ablations
    spread_leftover_rbs: bool = True
    #: timestamp source for ``solve_time_s`` (injectable for testing)
    clock: Callable[[], float] = time.perf_counter

    def solve(self, problem: DOTProblem) -> DOTSolution:
        start = self.clock()
        solution = DOTSolution()
        remaining_memory = problem.budgets.memory_gb
        remaining_compute = problem.budgets.compute_time_s
        remaining_rbs = problem.budgets.radio_blocks
        admitted: list[tuple[Task, Path, int]] = []

        for task in problem.tasks_by_priority():
            choice = self._choose(problem, task)
            if choice is None:
                solution.assignments[task.task_id] = Assignment(
                    task=task, path=None, admission_ratio=0.0, radio_blocks=0
                )
                continue
            path, rbs = choice
            memory = sum(b.memory_gb for b in path.blocks)
            compute = task.request_rate * path.compute_time_s
            if (
                memory <= remaining_memory + 1e-12
                and compute <= remaining_compute + 1e-12
                and rbs <= remaining_rbs
            ):
                remaining_memory -= memory
                remaining_compute -= compute
                remaining_rbs -= rbs
                admitted.append((task, path, rbs))
            else:
                solution.assignments[task.task_id] = Assignment(
                    task=task, path=None, admission_ratio=0.0, radio_blocks=0
                )

        allocations = self._finalize_rbs(admitted, remaining_rbs)
        for (task, path, _), rbs in zip(admitted, allocations):
            solution.assignments[task.task_id] = Assignment(
                task=task, path=path, admission_ratio=1.0, radio_blocks=rbs
            )
        solution.solve_time_s = self.clock() - start
        solution.solver_name = self.name
        return solution

    def _choose(self, problem: DOTProblem, task: Task) -> tuple[Path, int] | None:
        """Dedicated full-accuracy path + semantically compressed quality.

        Picks the highest-accuracy candidate (no shaping), then the
        lowest-bits quality level that still satisfies the accuracy
        requirement, then the minimum RB count meeting rate and latency.
        """
        candidates = problem.catalog.paths_for(task)
        if not candidates:
            return None
        base = max(candidates, key=lambda p: (p.accuracy, p.compute_time_s))
        best: tuple[Path, int] | None = None
        bits_per_rb = problem.radio.bits_per_rb(task)
        for quality in sorted(task.qualities, key=lambda q: q.bits_per_image):
            if base.accuracy * quality.accuracy_factor < task.min_accuracy - 1e-12:
                continue
            path = replace(base, quality=quality)
            r_lat = minimum_latency_rbs(
                path.bits_per_image,
                bits_per_rb,
                task.max_latency_s,
                path.compute_time_s,
            )
            r_rate = max(
                1,
                math.ceil(
                    task.request_rate * path.bits_per_image / bits_per_rb - 1e-12
                ),
            )
            rbs = max(r_lat, r_rate)
            if rbs > problem.budgets.radio_blocks:
                continue
            best = (_dedicated_copy(path, task), rbs)
            break  # lowest-bits feasible quality wins
        return best

    def _finalize_rbs(
        self, admitted: list[tuple[Task, Path, int]], leftover: int
    ) -> list[int]:
        """Spread leftover RBs proportionally to slice load (balanced)."""
        rbs = [r for _, _, r in admitted]
        if not self.spread_leftover_rbs or not admitted or leftover <= 0:
            return rbs
        total = sum(rbs)
        extra = [int(leftover * r / total) for r in rbs] if total else [0] * len(rbs)
        spare = leftover - sum(extra)
        for i in range(len(rbs)):
            if spare <= 0:
                break
            extra[i] += 1
            spare -= 1
        return [r + e for r, e in zip(rbs, extra)]
