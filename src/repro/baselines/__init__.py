"""Baseline task-offloading policies.

* :mod:`repro.baselines.semoran` -- the SEM-O-RAN state of the art [5]
  the paper compares against in the large-scale evaluation
* :mod:`repro.baselines.greedy` -- greedy no-sharing admission
* :mod:`repro.baselines.random_policy` -- random feasible path choice
"""

from repro.baselines.semoran import SemORANSolver
from repro.baselines.greedy import GreedyNoSharingSolver
from repro.baselines.random_policy import RandomPathSolver

__all__ = ["SemORANSolver", "GreedyNoSharingSolver", "RandomPathSolver"]
