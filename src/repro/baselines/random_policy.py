"""Random feasible path selection — a sanity-check lower baseline."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import BranchItem, solve_branch
from repro.core.tree import BranchState, build_tree

__all__ = ["RandomPathSolver"]


@dataclass
class RandomPathSolver:
    """Picks a uniformly random memory-feasible vertex at each layer."""

    seed: int = 0
    name: str = "random"
    admission_floor: float = 1e-6
    #: timestamp source for ``solve_time_s`` (injectable for testing)
    clock: Callable[[], float] = time.perf_counter

    def solve(self, problem: DOTProblem) -> DOTSolution:
        tree = build_tree(problem)
        start = self.clock()
        rng = np.random.default_rng(self.seed)
        state = BranchState()
        placed = []
        solution = DOTSolution()
        for clique in tree.cliques:
            fitting = [
                v
                for v in clique.vertices
                if state.memory_gb + state.incremental_memory(v)
                <= problem.budgets.memory_gb + 1e-12
            ]
            if not fitting:
                task = clique.task
                solution.assignments[task.task_id] = Assignment(
                    task=task, path=None, admission_ratio=0.0, radio_blocks=0
                )
                continue
            vertex = fitting[rng.integers(len(fitting))]
            state = state.extend(vertex)
            placed.append(vertex)
        items = [
            BranchItem(task=v.task, path=v.path, bits_per_rb=v.bits_per_rb)
            for v in placed
        ]
        allocation = solve_branch(items, problem.budgets, self.admission_floor)
        for vertex, z, r in zip(placed, allocation.admission, allocation.radio_blocks):
            solution.assignments[vertex.task.task_id] = Assignment(
                task=vertex.task, path=vertex.path, admission_ratio=z, radio_blocks=r
            )
        solution.solve_time_s = self.clock() - start
        solution.tree_build_time_s = tree.build_time_s
        solution.solver_name = self.name
        return solution
