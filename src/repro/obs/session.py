"""One observability session: both clock-domain tracers plus a registry.

An :class:`ObsSession` is the unit the CLI and the runtimes pass
around: a **wall** tracer (solver phases, engine execution), a
**virtual** tracer (DES request/frame lifecycles, whose clock the
owning runtime binds to its simulator at run start), and a
:class:`~repro.obs.metrics.MetricsRegistry` that collects counters,
sampled gauge series and latency histograms from the same run.

Nothing here is global: a session observes exactly the components it
was handed to.  Solver instrumentation reads the thread-local tracer
(:func:`repro.obs.trace.current_tracer`), so callers scope it with::

    session = ObsSession()
    with use_tracer(session.wall):
        runtime = ServingRuntime.from_problem(problem, config)
    runtime.obs = session
    metrics = runtime.run()
    session.write_trace("trace.json")
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable

from repro.obs import export as export_module
from repro.obs.metrics import DesSampler, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["ObsSession"]


class ObsSession:
    """Tracing + metrics for one run, across both clock domains."""

    def __init__(
        self,
        wall_clock: Callable[[], float] = time.perf_counter,
        sample_period_s: float = 0.05,
    ) -> None:
        self.wall = Tracer(clock=wall_clock, domain="wall")
        # the virtual clock is bound by the runtime once its simulator
        # exists; until then context-manager spans would stamp 0.0
        self.virtual = Tracer(clock=lambda: 0.0, domain="virtual")
        self.registry = MetricsRegistry()
        self.sample_period_s = sample_period_s

    @property
    def tracers(self) -> tuple[Tracer, Tracer]:
        return (self.wall, self.virtual)

    def bind_virtual_clock(self, clock: Callable[[], float]) -> None:
        """Point the virtual tracer at a simulator's ``now``."""
        self.virtual.clock = clock

    def sampler(self) -> DesSampler:
        """A fresh DES sampler feeding this session's registry."""
        return DesSampler(self.registry, period_s=self.sample_period_s)

    # -- export convenience ------------------------------------------------

    def chrome_trace(self) -> dict:
        return export_module.chrome_trace(self.tracers, registry=self.registry)

    def write_trace(self, path: str | pathlib.Path) -> None:
        """Write the Perfetto-loadable Chrome trace-event JSON."""
        export_module.write_chrome_trace(self.tracers, path, registry=self.registry)

    def write_jsonl(self, path: str | pathlib.Path) -> None:
        export_module.write_jsonl(self.tracers, path)

    def summary(self) -> str:
        return export_module.flame_summary(self.tracers)

    def phase_breakdown(self) -> dict:
        return export_module.phase_breakdown(self.tracers)

    @property
    def span_count(self) -> int:
        return len(self.wall.records) + len(self.virtual.records)
