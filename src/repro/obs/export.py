"""Trace exporters: JSONL, Chrome trace-event JSON, text flamegraph.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per record, in record order.
  The machine-diffable form: two identical DES runs produce
  byte-identical files, which the determinism tests assert.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``) loadable in Perfetto
  or ``chrome://tracing``.  Each clock domain becomes one process
  (wall = pid 1, rebased to its first span; virtual = pid 2, absolute
  DES time), each track one named thread; spans are complete ("X")
  events sorted so timestamps are monotonic per track and parents
  precede their children.
* :func:`flame_summary` — a text flamegraph: spans are nested by
  containment per track, aggregated by call path, and printed as an
  indented tree with total/self times.

:func:`validate_chrome_trace` checks the invariants the exporter
promises (required keys, numeric non-negative durations, monotonic
``ts`` per track) and is wired into ``repro trace-summary`` and the CI
trace smoke test.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flame_summary",
    "phase_breakdown",
    "load_records",
]

#: stable pid assignment per clock domain (Chrome pids must be ints)
_DOMAIN_PIDS = {"wall": 1, "virtual": 2}


def _record_obj(record: SpanRecord, domain: str) -> dict:
    obj = {
        "domain": domain,
        "track": record.track,
        "name": record.name,
        "cat": record.cat,
        "ph": record.phase,
        "ts": record.ts,
        "dur": record.dur,
    }
    if record.args:
        obj["args"] = record.args
    return obj


def jsonl_lines(tracers: Iterable[Tracer]) -> list[str]:
    """One compact JSON line per record, in record order per tracer."""
    lines = []
    for tracer in tracers:
        for record in tracer.records:
            lines.append(
                json.dumps(_record_obj(record, tracer.domain), separators=(",", ":"))
            )
    return lines


def write_jsonl(tracers: Iterable[Tracer], path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text("\n".join(jsonl_lines(tracers)) + "\n")


def _domain_pid(domain: str) -> int:
    return _DOMAIN_PIDS.get(domain, 9)


def chrome_trace(
    tracers: Sequence[Tracer],
    registry: MetricsRegistry | None = None,
    counter_domain: str = "virtual",
) -> dict:
    """Assemble a Chrome trace-event dict from tracers (+ gauge series)."""
    events: list[dict] = []
    for tracer in tracers:
        pid = _domain_pid(tracer.domain)
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{tracer.domain} clock"},
            }
        )
        if not tracer.records:
            continue
        # wall timestamps are rebased to the trace start so the timeline
        # opens at ~0; virtual time is already a meaningful absolute axis
        base = (
            min(r.ts for r in tracer.records) if tracer.domain == "wall" else 0.0
        )
        tids: dict[str, int] = {}
        spans: list[tuple[float, float, SpanRecord]] = []
        for record in tracer.records:
            tid = tids.get(record.track)
            if tid is None:
                tid = tids[record.track] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": record.track},
                    }
                )
            spans.append((record.ts - base, float(tid), record))
        # (ts, tid, -dur): monotonic per track, parents before children
        spans.sort(key=lambda item: (item[1], item[0], -item[2].dur))
        for ts, tid, record in spans:
            event = {
                "name": record.name,
                "cat": record.cat or tracer.domain,
                "ph": record.phase,
                "ts": round(ts * 1e6, 3),
                "pid": pid,
                "tid": int(tid),
            }
            if record.phase == "X":
                event["dur"] = round(record.dur * 1e6, 3)
            elif record.phase == "i":
                event["s"] = "t"
            if record.args:
                event["args"] = record.args
            events.append(event)
    if registry is not None:
        pid = _domain_pid(counter_domain)
        for name in sorted(registry.gauges):
            for t, value in registry.gauges[name].series:
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": round(t * 1e6, 3),
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracers: Sequence[Tracer],
    path: str | pathlib.Path,
    registry: MetricsRegistry | None = None,
) -> None:
    trace = chrome_trace(tracers, registry=registry)
    pathlib.Path(path).write_text(json.dumps(trace, separators=(",", ":")) + "\n")


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: dict[tuple[int, int], float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [key for key in ("ph", "name", "pid", "tid") if key not in event]
        if missing:
            for key in missing:
                problems.append(f"event {i}: missing {key!r}")
            continue
        ph = event.get("ph")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
            track = (event["pid"], event["tid"])
            if ts < last_ts.get(track, float("-inf")):
                problems.append(f"event {i}: ts not monotonic on track {track}")
            last_ts[track] = ts
    return problems


def _nest(records: list[SpanRecord]) -> dict[tuple[str, ...], list[float]]:
    """Aggregate spans of one track into path -> [count, total, child time].

    Spans are nested by interval containment: a span is a child of the
    innermost open span that contains it.  Instants are skipped.
    """
    spans = sorted(
        (r for r in records if r.phase == "X"), key=lambda r: (r.ts, -r.dur)
    )
    paths: dict[tuple[str, ...], list[float]] = {}
    stack: list[tuple[str, float]] = []  # (name, end)
    eps = 1e-12
    for record in spans:
        while stack and record.ts >= stack[-1][1] - eps:
            stack.pop()
        path = tuple(name for name, _ in stack) + (record.name,)
        node = paths.setdefault(path, [0, 0.0, 0.0])
        node[0] += 1
        node[1] += record.dur
        if len(path) > 1:
            parent = paths.get(path[:-1])
            if parent is not None:
                parent[2] += record.dur
        stack.append((record.name, record.ts + record.dur))
    return paths


def flame_summary(tracers: Iterable[Tracer], top: int = 40) -> str:
    """Indented text flamegraph aggregated over all tracks per domain."""
    lines = [f"{'span':<44} {'count':>8} {'total ms':>12} {'self ms':>12}"]
    for tracer in tracers:
        if not tracer.records:
            continue
        by_track: dict[str, list[SpanRecord]] = {}
        for record in tracer.records:
            by_track.setdefault(record.track, []).append(record)
        merged: dict[tuple[str, ...], list[float]] = {}
        for records in by_track.values():
            for path, (count, total, child) in _nest(records).items():
                node = merged.setdefault(path, [0, 0.0, 0.0])
                node[0] += count
                node[1] += total
                node[2] += child
        lines.append(f"[{tracer.domain} clock]")
        # depth-first, children ordered by total time
        roots = sorted(
            (p for p in merged if len(p) == 1), key=lambda p: -merged[p][1]
        )

        def emit(path: tuple[str, ...], depth: int) -> None:
            count, total, child = merged[path]
            label = "  " * depth + path[-1]
            lines.append(
                f"{label:<44} {count:>8} {total * 1e3:>12.3f} "
                f"{(total - child) * 1e3:>12.3f}"
            )
            children = sorted(
                (p for p in merged if len(p) == len(path) + 1 and p[:-1] == path),
                key=lambda p: -merged[p][1],
            )
            for sub in children:
                emit(sub, depth + 1)

        for index, root in enumerate(roots):
            if index >= top:
                lines.append(f"... {len(roots) - top} more roots elided")
                break
            emit(root, 1)
    return "\n".join(lines)


def phase_breakdown(tracers: Iterable[Tracer]) -> dict:
    """Span totals by name — the phase record benchmarks embed in JSON."""
    phases: dict[str, dict] = {}
    for tracer in tracers:
        for record in tracer.records:
            if record.phase != "X":
                continue
            key = f"{tracer.domain}.{record.name}"
            node = phases.setdefault(key, {"count": 0, "total_s": 0.0})
            node["count"] += 1
            node["total_s"] += record.dur
    return dict(sorted(phases.items(), key=lambda kv: -kv[1]["total_s"]))


def load_records(path: str | pathlib.Path) -> list[Tracer]:
    """Load a trace file (Chrome JSON or JSONL) back into tracers."""
    text = pathlib.Path(path).read_text()
    tracers: dict[str, Tracer] = {}

    def tracer_for(domain: str) -> Tracer:
        tracer = tracers.get(domain)
        if tracer is None:
            tracer = tracers[domain] = Tracer(domain=domain)
        return tracer

    # Both formats start with "{": a Chrome trace is one JSON object
    # with a traceEvents key, JSONL is one object per line.
    trace = None
    try:
        parsed = json.loads(text)
        if isinstance(parsed, dict) and "traceEvents" in parsed:
            trace = parsed
    except json.JSONDecodeError:
        pass
    if trace is not None:
        problems = validate_chrome_trace(trace)
        if problems:
            raise ValueError(
                f"invalid chrome trace: {problems[0]} (+{len(problems) - 1} more)"
                if len(problems) > 1
                else f"invalid chrome trace: {problems[0]}"
            )
        pid_domains = {pid: f"pid{pid}" for pid in _DOMAIN_PIDS.values()}
        pid_domains.update({pid: name for name, pid in _DOMAIN_PIDS.items()})
        track_names: dict[tuple[int, int], str] = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                track_names[(event["pid"], event["tid"])] = event["args"]["name"]
        for event in trace["traceEvents"]:
            ph = event.get("ph")
            if ph not in ("X", "i"):
                continue
            domain = pid_domains.get(event["pid"], f"pid{event['pid']}")
            track = track_names.get((event["pid"], event["tid"]), "main")
            tracer_for(domain).records.append(
                SpanRecord(
                    name=event["name"],
                    ts=event["ts"] / 1e6,
                    dur=event.get("dur", 0.0) / 1e6,
                    cat=event.get("cat", ""),
                    track=track,
                    phase=ph,
                    args=event.get("args"),
                )
            )
    else:
        for line in text.splitlines():
            if not line.strip():
                continue
            obj = json.loads(line)
            tracer_for(obj.get("domain", "wall")).records.append(
                SpanRecord(
                    name=obj["name"],
                    ts=obj["ts"],
                    dur=obj.get("dur", 0.0),
                    cat=obj.get("cat", ""),
                    track=obj.get("track", "main"),
                    phase=obj.get("ph", "X"),
                    args=obj.get("args"),
                )
            )
    return [tracers[d] for d in sorted(tracers)]
