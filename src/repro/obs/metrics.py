"""Metrics registry: counters, gauges, histograms, and a DES sampler.

The registry is the time-series face of the post-hoc summaries that
already exist (:class:`repro.serving.metrics.ServingMetrics`,
:class:`repro.emulator.metrics.TaskStatistics`): those dataclasses are
now *derived from* registry instruments fed with the same samples, so
their numbers are bit-identical with and without a shared registry —
but when a run attaches one, every counter, gauge series and histogram
survives the run and can be exported next to the trace.

:class:`Histogram` keeps raw samples (runs here are bounded — at most
one sample per request) so percentiles use exactly the
``numpy.percentile`` linear interpolation the summaries always used;
there is no bucketing error to reconcile.

:class:`DesSampler` is the periodic half: probes (queue depths,
token-bucket credit, pool busyness, cache hit rates) are sampled on the
DES virtual clock, so the resulting gauge series are deterministic
across runs and cheap — sampling costs one event per period, not one
per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DesSampler"]


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


@dataclass
class Gauge:
    """Point-in-time value, optionally sampled into a (t, value) series."""

    name: str
    value: float = 0.0
    #: (timestamp, value) samples appended by :class:`DesSampler`
    series: list[tuple[float, float]] = field(default_factory=list)

    def set(self, value: float) -> None:
        self.value = value

    def sample(self, t: float, value: float) -> None:
        self.value = value
        self.series.append((t, value))


@dataclass
class Histogram:
    """Raw-sample histogram with numpy-exact percentiles."""

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    def observe_many(self, values) -> None:
        """Bulk-observe a sequence (numpy array or list) of samples.

        One ``extend`` instead of N ``observe`` calls; the wave engine
        records whole latency buffers this way.  Values are coerced to
        python floats so the sample list stays homogeneous with the
        scalar :meth:`observe` path.
        """
        self.samples.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return float(np.sum(self.samples)) if self.samples else 0.0

    @property
    def mean(self) -> float:
        if not self.samples:
            return float("nan")
        return float(np.asarray(self.samples, dtype=float).mean())

    @property
    def max(self) -> float:
        if not self.samples:
            return float("nan")
        return float(np.asarray(self.samples, dtype=float).max())

    def percentile(self, q: float) -> float:
        if not self.samples:
            return float("nan")
        return float(np.percentile(np.asarray(self.samples, dtype=float), q))

    def percentiles(self, qs: tuple[float, ...]) -> tuple[float, ...]:
        """Several percentiles from one sort.

        ``np.percentile`` with a vector of quantiles partitions the
        sample array once and interpolates each ``q`` from it — same
        linear-interpolation values as per-``q`` calls (pinned by the
        metrics tests), at one array conversion and one sort instead of
        one per percentile.
        """
        if not self.samples:
            nan = float("nan")
            return tuple(nan for _ in qs)
        values = np.percentile(np.asarray(self.samples, dtype=float), list(qs))
        return tuple(float(v) for v in values)

    def summary(self) -> dict:
        p50, p95, p99 = self.percentiles((50, 95, 99))
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Names are flat dotted strings (``"task3.drops.deadline"``); a name
    is bound to exactly one instrument kind for its lifetime.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            self._check_free(name, self.counters)
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            self._check_free(name, self.gauges)
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            self._check_free(name, self.histograms)
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self.counters, self.gauges, self.histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def snapshot(self) -> dict:
        """JSON-ready dump: counter values, gauge series, histogram summaries."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "series": [[t, v] for t, v in g.series]}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


class DesSampler:
    """Periodic gauge sampling on a discrete-event simulator's clock.

    Probes are ``(gauge name, zero-arg callable)`` pairs evaluated every
    ``period_s`` of virtual time.  The sampler re-schedules itself only
    while ``while_fn`` holds, so it never keeps an otherwise-drained
    event queue alive.
    """

    def __init__(self, registry: MetricsRegistry, period_s: float = 0.05) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.registry = registry
        self.period_s = period_s
        self.probes: list[tuple[str, Callable[[], float]]] = []
        self.samples_taken = 0

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        self.probes.append((name, fn))

    def attach(self, sim, while_fn: Callable[[], bool] = lambda: True) -> None:
        """Start sampling on ``sim`` (first sample at the current time)."""

        def tick() -> None:
            now = sim.now
            for name, fn in self.probes:
                self.registry.gauge(name).sample(now, float(fn()))
            self.samples_taken += 1
            if while_fn():
                sim.schedule(self.period_s, tick)

        sim.schedule(0.0, tick)
