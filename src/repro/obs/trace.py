"""Span tracing with zero overhead when disabled.

A :class:`Tracer` records structured :class:`SpanRecord` entries —
named, categorized intervals on a *track* — plus instant events.  Two
clock domains coexist in this codebase:

* **wall** time (``time.perf_counter``): solver phases, compiled-engine
  execution, anything measured on the host CPU;
* **virtual** time (``Simulator.now``): the serving runtime and the
  emulator, whose DES timestamps are deterministic across runs and can
  therefore be asserted byte-for-byte in tests.

A tracer is created for exactly one domain; sessions that need both
hold one tracer per domain (see :class:`repro.obs.session.ObsSession`).

**The overhead contract.**  Instrumentation sites must stay free when
tracing is off.  The disabled state is the :data:`NULL_TRACER`
singleton, whose ``span()`` returns a shared no-op context manager and
whose ``record``/``event`` methods do nothing, so a site costs one
attribute load and a predicate.  Hot loops (the compiled engine's plan
steps) hoist the check::

    tracer = current_tracer()
    if tracer.enabled:          # one predicate per forward, not per step
        ... spanned loop ...
    else:
        ... bare loop ...

**Context propagation.**  The current tracer lives in a thread-local;
:func:`current_tracer` reads it and :func:`use_tracer` /
:func:`activate` set it.  Propagation into spawned workers is
*explicit*: a worker thread inherits nothing and must call
``activate(tracer)`` itself (list appends are GIL-atomic, so threads
may share one tracer).  Worker *processes* (the parallel backend)
cannot share a span list at all — their work is visible as the
round-trip span recorded on the parent side.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "activate",
    "deactivate",
    "use_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One traced interval (``phase="X"``) or instant (``phase="i"``).

    ``ts``/``dur`` are seconds in the owning tracer's clock domain.
    ``args`` is a plain dict of JSON-serializable values; its insertion
    order is preserved by the exporters, so identical runs produce
    identical files.
    """

    name: str
    ts: float
    dur: float
    cat: str = ""
    track: str = "main"
    phase: str = "X"
    args: dict | None = None


class _NoopSpan:
    """Shared context manager returned by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A singleton (:data:`NULL_TRACER`) so instrumentation sites can be
    written unconditionally; ``enabled`` is the one predicate hot loops
    are allowed to pay.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "", track: str = "main", **args):
        return _NOOP_SPAN

    def record(self, *a, **k) -> None:
        pass

    def event(self, *a, **k) -> None:
        pass

    def event_at(self, *a, **k) -> None:
        pass


NULL_TRACER = NullTracer()


class _SpanContext:
    """Live span: stamps ``clock()`` on enter, records on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_track", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._track = track
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        end = tracer.clock()
        tracer.records.append(
            SpanRecord(
                name=self._name,
                ts=self._start,
                dur=end - self._start,
                cat=self._cat,
                track=self._track,
                args=self._args or None,
            )
        )


@dataclass
class Tracer:
    """Span recorder for one clock domain.

    ``clock`` supplies timestamps for context-manager spans and bare
    events; DES instrumentation that knows both endpoints explicitly
    uses :meth:`record` / :meth:`event_at` instead and never calls the
    clock.  ``domain`` labels the exported process ("wall" spans are
    rebased to the first span; "virtual" timestamps are kept absolute —
    the DES clock starts at 0 and is meaningful as-is).
    """

    clock: Callable[[], float] = time.perf_counter
    domain: str = "wall"
    records: list[SpanRecord] = field(default_factory=list)
    enabled: bool = field(default=True, init=False)

    def span(self, name: str, cat: str = "", track: str = "main", **args):
        """Context manager timing a code region on ``clock``."""
        return _SpanContext(self, name, cat, track, args)

    def record(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "",
        track: str = "main",
        args: dict | None = None,
    ) -> None:
        """Record a completed span with explicit timestamps."""
        self.records.append(
            SpanRecord(name=name, ts=ts, dur=dur, cat=cat, track=track, args=args)
        )

    def event(self, name: str, cat: str = "", track: str = "main", **args) -> None:
        """Record an instant event at ``clock()``."""
        self.event_at(name, self.clock(), cat=cat, track=track, args=args or None)

    def event_at(
        self,
        name: str,
        ts: float,
        cat: str = "",
        track: str = "main",
        args: dict | None = None,
    ) -> None:
        """Record an instant event at an explicit timestamp."""
        self.records.append(
            SpanRecord(
                name=name, ts=ts, dur=0.0, cat=cat, track=track, phase="i", args=args
            )
        )

    def clear(self) -> None:
        self.records.clear()


_tls = threading.local()


def current_tracer() -> Tracer | NullTracer:
    """The thread's active tracer (:data:`NULL_TRACER` by default)."""
    return getattr(_tls, "tracer", NULL_TRACER)


def activate(tracer: Tracer | NullTracer) -> None:
    """Install ``tracer`` as this thread's active tracer.

    Worker threads call this explicitly — tracer context never
    propagates implicitly across thread spawns.
    """
    _tls.tracer = tracer


def deactivate() -> None:
    """Restore the disabled :data:`NULL_TRACER` for this thread."""
    _tls.tracer = NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Scope ``tracer`` as the thread's active tracer."""
    previous = current_tracer()
    _tls.tracer = tracer
    try:
        yield tracer
    finally:
        _tls.tracer = previous
