"""``repro.obs`` — unified tracing, metrics, and trace export.

Three pieces (see :mod:`repro.obs.trace`, :mod:`repro.obs.metrics`,
:mod:`repro.obs.export`):

* a **span tracer** with wall and DES-virtual clock domains, a
  thread-local current-tracer context with explicit propagation, and a
  no-op singleton so disabled instrumentation costs one predicate;
* a **metrics registry** (counters, gauges, raw-sample histograms) with
  a periodic DES-clock sampler, on which the existing post-hoc
  summaries are rebuilt bit-identically;
* **exporters**: JSONL event logs, Perfetto-loadable Chrome
  trace-event JSON, and a text flamegraph summary.

:class:`ObsSession` bundles the three for one run; the CLI exposes it
as ``--trace`` on ``serve-sim`` / ``solve-scale`` / ``emulate`` and via
``repro trace-summary``.
"""

from repro.obs.export import (
    chrome_trace,
    flame_summary,
    jsonl_lines,
    load_records,
    phase_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, DesSampler, Gauge, Histogram, MetricsRegistry
from repro.obs.session import ObsSession
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    use_tracer,
)

__all__ = [
    "Counter",
    "DesSampler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsSession",
    "SpanRecord",
    "Tracer",
    "activate",
    "chrome_trace",
    "current_tracer",
    "deactivate",
    "flame_summary",
    "jsonl_lines",
    "load_records",
    "phase_breakdown",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
