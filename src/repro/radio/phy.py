"""PHY abstraction: from SINR to per-RB capacity ``B(σ)``.

LTE links adapt their modulation and coding scheme (MCS) to the channel
quality; the net effect is a spectral efficiency per CQI index.  This
module provides the standard 15-entry CQI table (3GPP TS 36.213 Table
7.2.3-1) and converts an SINR into the ``B(σ_τ)`` bits-per-RB-per-second
figure the DOT formulation consumes.

The paper's Table IV fixes ``B = 0.35 Mbps`` per RB, which corresponds
to CQI ~10 at the emulated 0 dB path loss; :func:`bits_per_rb_from_sinr`
generalizes this to arbitrary channel conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CQIEntry",
    "MCS_TABLE",
    "cqi_from_sinr",
    "spectral_efficiency",
    "bits_per_rb_from_sinr",
    "RB_BANDWIDTH_HZ",
    "RB_SYMBOL_RATE",
]

#: LTE resource block: 12 subcarriers x 15 kHz.
RB_BANDWIDTH_HZ = 180_000.0
#: Usable resource elements per RB pair per ms (after control overhead).
RB_SYMBOL_RATE = 120_000.0


@dataclass(frozen=True)
class CQIEntry:
    """One CQI row: minimum SINR, modulation and spectral efficiency."""

    cqi: int
    min_sinr_db: float
    modulation: str
    efficiency_bps_hz: float


#: 3GPP 36.213 CQI table with conventional SINR switching thresholds.
MCS_TABLE: tuple[CQIEntry, ...] = (
    CQIEntry(1, -6.7, "QPSK", 0.1523),
    CQIEntry(2, -4.7, "QPSK", 0.2344),
    CQIEntry(3, -2.3, "QPSK", 0.3770),
    CQIEntry(4, 0.2, "QPSK", 0.6016),
    CQIEntry(5, 2.4, "QPSK", 0.8770),
    CQIEntry(6, 4.3, "QPSK", 1.1758),
    CQIEntry(7, 5.9, "16QAM", 1.4766),
    CQIEntry(8, 8.1, "16QAM", 1.9141),
    CQIEntry(9, 10.3, "16QAM", 2.4063),
    CQIEntry(10, 11.7, "64QAM", 2.7305),
    CQIEntry(11, 14.1, "64QAM", 3.3223),
    CQIEntry(12, 16.3, "64QAM", 3.9023),
    CQIEntry(13, 18.7, "64QAM", 4.5234),
    CQIEntry(14, 21.0, "64QAM", 5.1152),
    CQIEntry(15, 22.7, "64QAM", 5.5547),
)


def cqi_from_sinr(sinr_db: float) -> CQIEntry | None:
    """Highest CQI whose SINR threshold the link satisfies (None if below CQI 1)."""
    chosen: CQIEntry | None = None
    for entry in MCS_TABLE:
        if sinr_db >= entry.min_sinr_db:
            chosen = entry
        else:
            break
    return chosen


def spectral_efficiency(sinr_db: float) -> float:
    """Spectral efficiency (bit/s/Hz) after MCS adaptation; 0 when unusable."""
    entry = cqi_from_sinr(sinr_db)
    return entry.efficiency_bps_hz if entry else 0.0


def bits_per_rb_from_sinr(sinr_db: float, symbol_rate: float = RB_SYMBOL_RATE) -> float:
    """``B(σ)``: net bits per second carried by one RB at the given SINR."""
    return spectral_efficiency(sinr_db) * symbol_rate
