"""Wireless channel model.

Computes the average SINR ``σ_τ`` experienced by the devices offloading
a task, from transmit power, distance-dependent path loss, shadowing
and noise.  The Colosseum validation uses a static 0 dB path loss; the
general model supports log-distance path loss with log-normal
shadowing for richer scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["path_loss_db", "snr_db", "ChannelModel"]

BOLTZMANN = 1.380649e-23
KELVIN = 290.0


def path_loss_db(
    distance_m: float,
    reference_loss_db: float = 38.0,
    exponent: float = 3.0,
    reference_distance_m: float = 1.0,
) -> float:
    """Log-distance path loss in dB."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    d = max(distance_m, reference_distance_m)
    return reference_loss_db + 10.0 * exponent * np.log10(d / reference_distance_m)


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 7.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` in dBm."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    watts = BOLTZMANN * KELVIN * bandwidth_hz
    return 10.0 * np.log10(watts * 1e3) + noise_figure_db


def snr_db(
    tx_power_dbm: float,
    loss_db: float,
    bandwidth_hz: float,
    noise_figure_db: float = 7.0,
) -> float:
    """Received SNR in dB for the given link budget."""
    return tx_power_dbm - loss_db - noise_power_dbm(bandwidth_hz, noise_figure_db)


@dataclass(frozen=True)
class ChannelModel:
    """Per-device uplink channel with optional shadowing.

    ``static_path_loss_db`` set to a value (e.g. 0.0) reproduces the
    Colosseum MCHEM configuration of Sec. V-B; otherwise the
    log-distance model applies.
    """

    tx_power_dbm: float = 23.0  # UE class 3
    bandwidth_hz: float = 180_000.0  # one LTE RB
    noise_figure_db: float = 7.0
    path_loss_exponent: float = 3.0
    shadowing_std_db: float = 0.0
    static_path_loss_db: float | None = None

    def mean_snr_db(self, distance_m: float = 50.0) -> float:
        loss = (
            self.static_path_loss_db
            if self.static_path_loss_db is not None
            else path_loss_db(distance_m, exponent=self.path_loss_exponent)
        )
        return snr_db(self.tx_power_dbm, loss, self.bandwidth_hz, self.noise_figure_db)

    def sample_snr_db(
        self, distance_m: float, rng: np.random.Generator
    ) -> float:
        """One shadowing realization around the mean SNR."""
        mean = self.mean_snr_db(distance_m)
        if self.shadowing_std_db <= 0:
            return mean
        return float(mean + rng.normal(0.0, self.shadowing_std_db))
