"""Radio network slices — one per admitted task (Sec. III-A).

The OffloaDNN controller allocates ``r_τ`` RBs to the slice serving
task ``τ`` (step 4 of the Fig. 4 workflow, realized by SCOPE in the
Colosseum validation).  The slice manager enforces the pool capacity
``Σ r_τ ≤ R`` and exposes the per-slice throughput used by the
emulator's transmission timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Slice", "SliceManager"]


@dataclass
class Slice:
    """A radio slice serving one task."""

    task_id: int
    radio_blocks: int
    bits_per_rb: float

    def __post_init__(self) -> None:
        if self.radio_blocks < 0:
            raise ValueError("radio_blocks must be >= 0")
        if self.bits_per_rb <= 0:
            raise ValueError("bits_per_rb must be positive")

    @property
    def throughput_bps(self) -> float:
        """Uplink capacity of the slice in bits per second."""
        return self.radio_blocks * self.bits_per_rb

    def transmission_time(self, bits: float) -> float:
        """Seconds to transfer ``bits`` over the slice (inf if starved)."""
        if self.throughput_bps <= 0:
            return float("inf")
        return bits / self.throughput_bps


@dataclass
class SliceManager:
    """Tracks slice allocations against the RB pool ``R``."""

    capacity_rbs: int
    slices: dict[int, Slice] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_rbs <= 0:
            raise ValueError("capacity must be positive")

    @property
    def allocated_rbs(self) -> int:
        return sum(s.radio_blocks for s in self.slices.values())

    @property
    def free_rbs(self) -> int:
        return self.capacity_rbs - self.allocated_rbs

    def allocate(self, task_id: int, radio_blocks: int, bits_per_rb: float) -> Slice:
        """Create (or resize) the slice for ``task_id``."""
        current = self.slices.get(task_id)
        freed = current.radio_blocks if current else 0
        if radio_blocks > self.free_rbs + freed:
            raise ValueError(
                f"cannot allocate {radio_blocks} RBs to task {task_id}: "
                f"only {self.free_rbs + freed} free of {self.capacity_rbs}"
            )
        new_slice = Slice(
            task_id=task_id, radio_blocks=radio_blocks, bits_per_rb=bits_per_rb
        )
        self.slices[task_id] = new_slice
        return new_slice

    def release(self, task_id: int) -> None:
        self.slices.pop(task_id, None)

    def slice_for(self, task_id: int) -> Slice:
        try:
            return self.slices[task_id]
        except KeyError:
            raise KeyError(f"no slice allocated for task {task_id}") from None
