"""Radio-access substrate: channel, PHY abstraction and RB slicing.

Models the vRAN side of Fig. 4: SINR-dependent per-RB capacity
``B(σ)``, radio network slices per task, and the slice manager the
OffloaDNN controller drives (step 4 of the workflow).
"""

from repro.radio.channel import ChannelModel, path_loss_db, snr_db
from repro.radio.phy import MCS_TABLE, bits_per_rb_from_sinr, spectral_efficiency
from repro.radio.slicing import Slice, SliceManager

__all__ = [
    "ChannelModel",
    "path_loss_db",
    "snr_db",
    "MCS_TABLE",
    "bits_per_rb_from_sinr",
    "spectral_efficiency",
    "Slice",
    "SliceManager",
]
