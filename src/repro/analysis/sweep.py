"""Sensitivity sweeps — extensions beyond the paper's evaluation.

The paper evaluates fixed budgets (Table IV).  These sweeps vary one
resource or objective knob at a time on the large-scale scenario and
record how admission and consumption respond, quantifying *where* each
resource starts to bind:

* :func:`sweep_radio_budget` — the RB pool is the binding resource at
  medium/high load; admission should fall once R drops below the
  saturation point;
* :func:`sweep_memory_budget` — with block sharing, memory binds only
  at a small fraction of the Table IV budget;
* :func:`sweep_alpha` — the rejection-vs-resource weight of Eq. (1a);
* :func:`sweep_request_rate` — a finer-grained version of the
  low/medium/high axis of Fig. 10.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import objective_value
from repro.core.problem import Budgets, DOTProblem
from repro.workloads.largescale import RequestRate, large_scale_problem

__all__ = [
    "SweepPoint",
    "sweep_radio_budget",
    "sweep_memory_budget",
    "sweep_alpha",
    "sweep_request_rate",
]


from dataclasses import dataclass


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and the response metrics."""

    value: float
    weighted_admission: float
    admitted_tasks: int
    memory_gb: float
    radio_blocks: float
    inference_s: float
    objective: float


def _solve_point(problem: DOTProblem, value: float, solver=None) -> SweepPoint:
    solver = solver or OffloaDNNSolver()
    solution = solver.solve(problem)
    return SweepPoint(
        value=value,
        weighted_admission=solution.weighted_admission_ratio,
        admitted_tasks=solution.admitted_task_count,
        memory_gb=solution.total_memory_gb,
        radio_blocks=solution.total_radio_blocks,
        inference_s=solution.total_inference_compute_s,
        objective=objective_value(problem, solution),
    )


def _with_budgets(problem: DOTProblem, budgets: Budgets) -> DOTProblem:
    return DOTProblem(
        tasks=problem.tasks,
        catalog=problem.catalog,
        budgets=budgets,
        radio=problem.radio,
        alpha=problem.alpha,
    )


def sweep_radio_budget(
    radio_blocks: list[int],
    rate: RequestRate = RequestRate.MEDIUM,
    seed: int = 0,
) -> list[SweepPoint]:
    """Admission response to the RB pool size."""
    base = large_scale_problem(rate, seed=seed)
    points = []
    for blocks in radio_blocks:
        problem = _with_budgets(base, replace(base.budgets, radio_blocks=blocks))
        points.append(_solve_point(problem, float(blocks)))
    return points


def sweep_memory_budget(
    memory_gb: list[float],
    rate: RequestRate = RequestRate.MEDIUM,
    seed: int = 0,
) -> list[SweepPoint]:
    """Admission response to the edge memory budget."""
    base = large_scale_problem(rate, seed=seed)
    points = []
    for memory in memory_gb:
        problem = _with_budgets(base, replace(base.budgets, memory_gb=memory))
        points.append(_solve_point(problem, memory))
    return points


def sweep_alpha(
    alphas: list[float],
    rate: RequestRate = RequestRate.HIGH,
    seed: int = 0,
) -> list[SweepPoint]:
    """Objective response to the Eq. (1a) weight α."""
    base = large_scale_problem(rate, seed=seed)
    points = []
    for alpha in alphas:
        problem = DOTProblem(
            tasks=base.tasks,
            catalog=base.catalog,
            budgets=base.budgets,
            radio=base.radio,
            alpha=alpha,
        )
        points.append(_solve_point(problem, alpha))
    return points


def sweep_request_rate(
    rates: list[float],
    seed: int = 0,
) -> list[SweepPoint]:
    """Fine-grained load axis: admission vs per-task request rate."""
    from repro.workloads.largescale import LARGE_SCALE, large_scale_tasks
    from repro.workloads.generator import ScenarioCatalogBuilder

    points = []
    for rate_value in rates:
        # build tasks at an arbitrary (non-enum) rate
        reference = large_scale_tasks(RequestRate.LOW)
        tasks = tuple(replace(t, request_rate=rate_value) for t in reference)
        builder = ScenarioCatalogBuilder(seed=seed)
        catalog = builder.build(tasks, tasks[0].qualities[0])
        problem = DOTProblem(
            tasks=tasks,
            catalog=catalog,
            budgets=Budgets(
                compute_time_s=LARGE_SCALE.compute_budget_s,
                training_budget_s=LARGE_SCALE.training_budget_s,
                memory_gb=LARGE_SCALE.memory_gb,
                radio_blocks=LARGE_SCALE.radio_blocks,
            ),
            radio=problem_radio(),
            alpha=LARGE_SCALE.alpha,
        )
        points.append(_solve_point(problem, rate_value))
    return points


def problem_radio():
    from repro.core.problem import RadioModel
    from repro.workloads.largescale import LARGE_SCALE

    return RadioModel(default_bits_per_rb=LARGE_SCALE.bits_per_rb)
