"""Data assembly for every figure of the paper's evaluation.

Each ``figN_*`` function runs the relevant experiment and returns a
dictionary of series shaped like the published figure, so benchmarks
can print the same rows the paper plots and tests can assert the
qualitative relationships (who wins, by roughly what factor, where the
crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.semoran import SemORANSolver
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import objective_breakdown, objective_value
from repro.core.optimal import OptimalSolver
from repro.core.solution import DOTSolution
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.profiler import profile_model
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18
from repro.dnn.training import (
    LearningCurveModel,
    TrainingMemoryModel,
    pruned_accuracy_drop,
)
from repro.emulator.scenario import run_small_scale_emulation
from repro.workloads.largescale import RequestRate, large_scale_problem
from repro.workloads.smallscale import small_scale_problem

__all__ = [
    "fig2_training_curves",
    "fig3_pruning_effects",
    "fig6_runtime_comparison",
    "fig7_cost_and_memory",
    "fig8_cost_breakdown",
    "fig9_admission_ratios",
    "fig10_largescale_comparison",
    "fig11_emulation_latency",
    "headline_comparison",
    "SolverPair",
]

BASE_CONFIG_NAMES = ("CONFIG A", "CONFIG B", "CONFIG C", "CONFIG D", "CONFIG E")


# ---------------------------------------------------------------------------
# Fig. 2 — training configurations
# ---------------------------------------------------------------------------


def fig2_training_curves(
    epochs: int = 250,
    num_classes: int = 60,
    input_size: int = 32,
    width: int = 64,
    batch_size: int = 256,
    seed: int = 0,
) -> dict[str, dict[str, object]]:
    """Accuracy-vs-epoch curve and peak training memory per CONFIG A..E."""
    model = build_resnet18(num_classes=num_classes, input_size=input_size, width=width)
    memory_model = TrainingMemoryModel(batch_size=batch_size)
    out: dict[str, dict[str, object]] = {}
    for name in BASE_CONFIG_NAMES:
        config = TABLE_I_CONFIGS[name]
        curve_model = LearningCurveModel.for_config(config, num_classes=num_classes + 1)
        curve = curve_model.curve(epochs, seed=seed)
        out[name] = {
            "accuracy_curve": curve,
            "epochs_to_80pct": curve_model.epochs_to_reach(0.80),
            "final_accuracy": float(curve[-1]),
            "peak_memory_mib": memory_model.peak_mib(model, config),
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 3 — pruning effects
# ---------------------------------------------------------------------------


def fig3_pruning_effects(
    fine_tune_epochs: int = 100,
    num_classes: int = 60,
    input_size: int = 32,
    width: int = 64,
    repeats: int = 5,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Inference compute time and class accuracy, with/without pruning.

    The compute time is the *measured* wall clock of a dummy-tensor
    forward pass through the configuration's model (the paper's
    procedure); the accuracy comes from the 100-epoch fine-tuning point
    of the learning-curve model minus the pruning drop.
    """
    out: dict[str, dict[str, float]] = {}
    for base_name in BASE_CONFIG_NAMES:
        for config in (TABLE_I_CONFIGS[base_name], TABLE_I_CONFIGS[f"{base_name}-pruned"]):
            model = build_resnet18(
                num_classes=num_classes, input_size=input_size, width=width, seed=seed
            )
            # the accuracy drop depends on which fraction of the *full*
            # model's parameters get pruned, so compute it pre-pruning
            drop = pruned_accuracy_drop(config, model) if config.pruned else 0.0
            if config.pruned:
                stages = [s for s in config.prunable_blocks]
                prune_resnet(model, set(stages), config.prune_ratio)
            profile = profile_model(model, repeats=repeats)
            curve = LearningCurveModel.for_config(config, num_classes=num_classes + 1)
            accuracy = max(0.0, curve.accuracy_at(fine_tune_epochs) - drop)
            out[config.name] = {
                "inference_time_ms": profile.total_compute_time_s * 1e3,
                "class_accuracy": accuracy,
                "params": float(profile.total_params),
            }
    return out


# ---------------------------------------------------------------------------
# Figs. 6-8 — small-scale scenario vs the optimum
# ---------------------------------------------------------------------------


@dataclass
class SolverPair:
    """Solutions of both strategies on the same problem instance."""

    problem: object
    heuristic: DOTSolution
    optimal: DOTSolution


def _solve_small_scale(num_tasks: int, seed: int = 0) -> SolverPair:
    problem = small_scale_problem(num_tasks, seed=seed)
    heuristic = OffloaDNNSolver().solve(problem)
    optimal = OptimalSolver().solve(problem)
    return SolverPair(problem=problem, heuristic=heuristic, optimal=optimal)


def fig6_runtime_comparison(
    max_tasks: int = 5, repeats: int = 1, seed: int = 0
) -> dict[str, list[float]]:
    """Average solver runtime vs number of tasks (log-scale in the paper)."""
    heuristic_times: list[float] = []
    optimal_times: list[float] = []
    for num_tasks in range(1, max_tasks + 1):
        h_samples, o_samples = [], []
        for rep in range(repeats):
            pair = _solve_small_scale(num_tasks, seed=seed + rep)
            # Fig. 6 plots end-to-end solver runtime, so the tree build
            # belongs in the number (each solver builds its own tree)
            h_samples.append(pair.heuristic.total_time_s)
            o_samples.append(pair.optimal.total_time_s)
        heuristic_times.append(float(np.mean(h_samples)))
        optimal_times.append(float(np.mean(o_samples)))
    return {
        "num_tasks": list(range(1, max_tasks + 1)),
        "offloadnn_s": heuristic_times,
        "optimum_s": optimal_times,
    }


def fig7_cost_and_memory(max_tasks: int = 5, seed: int = 0) -> dict[str, list[float]]:
    """Normalized DOT cost and normalized memory, heuristic vs optimum."""
    rows: dict[str, list[float]] = {
        "num_tasks": [],
        "offloadnn_cost": [],
        "optimum_cost": [],
        "offloadnn_memory": [],
        "optimum_memory": [],
    }
    raw: list[tuple[float, float, float, float]] = []
    for num_tasks in range(1, max_tasks + 1):
        pair = _solve_small_scale(num_tasks, seed=seed)
        raw.append(
            (
                objective_value(pair.problem, pair.heuristic),
                objective_value(pair.problem, pair.optimal),
                pair.heuristic.total_memory_gb,
                pair.optimal.total_memory_gb,
            )
        )
        rows["num_tasks"].append(num_tasks)
    max_cost = max(max(h, o) for h, o, _, _ in raw) or 1.0
    memory_budget = small_scale_problem(1, seed=seed).budgets.memory_gb
    for h_cost, o_cost, h_mem, o_mem in raw:
        rows["offloadnn_cost"].append(h_cost / max_cost)
        rows["optimum_cost"].append(o_cost / max_cost)
        rows["offloadnn_memory"].append(h_mem / memory_budget)
        rows["optimum_memory"].append(o_mem / memory_budget)
    return rows


def fig8_cost_breakdown(max_tasks: int = 5, seed: int = 0) -> dict[str, list[float]]:
    """The four Fig. 8 panels for T = 1..max_tasks."""
    rows: dict[str, list[float]] = {key: [] for key in (
        "num_tasks",
        "offloadnn_weighted_admission",
        "optimum_weighted_admission",
        "offloadnn_rb_fraction",
        "optimum_rb_fraction",
        "offloadnn_training",
        "optimum_training",
        "offloadnn_inference",
        "optimum_inference",
    )}
    for num_tasks in range(1, max_tasks + 1):
        pair = _solve_small_scale(num_tasks, seed=seed)
        budgets = pair.problem.budgets
        rows["num_tasks"].append(num_tasks)
        for label, sol in (("offloadnn", pair.heuristic), ("optimum", pair.optimal)):
            rows[f"{label}_weighted_admission"].append(sol.weighted_admission_ratio)
            rows[f"{label}_rb_fraction"].append(
                sol.total_radio_blocks / budgets.radio_blocks
            )
            rows[f"{label}_training"].append(
                sol.total_training_cost_s / budgets.training_budget_s
            )
            rows[f"{label}_inference"].append(
                sol.total_inference_compute_s / budgets.compute_time_s
            )
    return rows


# ---------------------------------------------------------------------------
# Figs. 9-10 — large-scale scenario vs SEM-O-RAN
# ---------------------------------------------------------------------------


def fig9_admission_ratios(seed: int = 0) -> dict[str, dict[str, list[float]]]:
    """Per-task admission ratio for both schemes at the three rates."""
    out: dict[str, dict[str, list[float]]] = {}
    for rate in RequestRate:
        problem = large_scale_problem(rate, seed=seed)
        heuristic = OffloaDNNSolver().solve(problem)
        semoran = SemORANSolver().solve(problem)
        task_ids = sorted(t.task_id for t in problem.tasks)
        out[rate.label] = {
            "task_ids": [float(t) for t in task_ids],
            "offloadnn": [heuristic.assignment(t).admission_ratio for t in task_ids],
            "semoran": [semoran.assignment(t).admission_ratio for t in task_ids],
        }
    return out


def fig10_largescale_comparison(seed: int = 0) -> dict[str, dict[str, float]]:
    """The four Fig. 10 panels plus the in-text DOT/training costs."""
    out: dict[str, dict[str, float]] = {}
    for rate in RequestRate:
        problem = large_scale_problem(rate, seed=seed)
        heuristic = OffloaDNNSolver().solve(problem)
        semoran = SemORANSolver().solve(problem)
        budgets = problem.budgets
        breakdown = objective_breakdown(problem, heuristic)
        out[rate.label] = {
            "offloadnn_weighted_admission": heuristic.weighted_admission_ratio,
            "semoran_weighted_admission": semoran.weighted_admission_ratio,
            "offloadnn_rb_fraction": heuristic.total_radio_blocks / budgets.radio_blocks,
            "semoran_rb_fraction": semoran.total_radio_blocks / budgets.radio_blocks,
            "offloadnn_memory_fraction": heuristic.total_memory_gb / budgets.memory_gb,
            "semoran_memory_fraction": semoran.total_memory_gb / budgets.memory_gb,
            "offloadnn_inference_fraction": heuristic.total_inference_compute_s
            / budgets.compute_time_s,
            "semoran_inference_fraction": semoran.total_inference_compute_s
            / budgets.compute_time_s,
            "offloadnn_admitted": float(heuristic.admitted_task_count),
            "semoran_admitted": float(semoran.admitted_task_count),
            "offloadnn_dot_cost": breakdown.total,
            "offloadnn_training_fraction": heuristic.total_training_cost_s
            / budgets.training_budget_s,
        }
    return out


def headline_comparison(seed: int = 0) -> dict[str, float]:
    """The paper's headline averages vs SEM-O-RAN across the three rates.

    Reported: % more admitted tasks, % memory saved, % inference compute
    saved, % radio resources saved.
    """
    data = fig10_largescale_comparison(seed=seed)
    off_admitted = sum(d["offloadnn_admitted"] for d in data.values())
    sem_admitted = sum(d["semoran_admitted"] for d in data.values())
    mem_savings = [
        1.0 - d["offloadnn_memory_fraction"] / d["semoran_memory_fraction"]
        for d in data.values()
        if d["semoran_memory_fraction"] > 0
    ]
    compute_savings = [
        1.0 - d["offloadnn_inference_fraction"] / d["semoran_inference_fraction"]
        for d in data.values()
        if d["semoran_inference_fraction"] > 0
    ]
    radio_savings = [
        1.0 - d["offloadnn_rb_fraction"] / d["semoran_rb_fraction"]
        for d in data.values()
        if d["semoran_rb_fraction"] > 0
    ]
    return {
        "admitted_tasks_gain_pct": 100.0 * (off_admitted / sem_admitted - 1.0),
        "memory_saving_pct": 100.0 * float(np.mean(mem_savings)),
        "inference_compute_saving_pct": 100.0 * float(np.mean(compute_savings)),
        "radio_saving_pct": 100.0 * float(np.mean(radio_savings)),
    }


# ---------------------------------------------------------------------------
# Fig. 11 — emulation
# ---------------------------------------------------------------------------


def fig11_emulation_latency(
    num_tasks: int = 5, duration_s: float = 20.0, seed: int = 0
) -> dict[str, object]:
    """Per-task end-to-end latency series from the emulator run."""
    problem, result = run_small_scale_emulation(
        num_tasks=num_tasks, duration_s=duration_s, seed=seed
    )
    series: dict[int, dict[str, object]] = {}
    for task in problem.tasks:
        times, latencies = result.timeline.series(task.task_id, window=3)
        series[task.task_id] = {
            "times_s": times,
            "latency_s": latencies,
            "limit_s": task.max_latency_s,
            "mean_latency_s": result.timeline.mean_latency(task.task_id),
        }
    return {
        "series": series,
        "within_limits": result.all_within_limits(problem),
        "events": result.events_processed,
    }
