"""Plain-text rendering of the evaluation artifacts.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them consistently for the terminal and for
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "render_figure_report", "format_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 3
) -> str:
    """Render a fixed-width text table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], precision: int = 3) -> str:
    """One labelled numeric series on a single line."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"


def render_figure_report(title: str, sections: dict[str, str]) -> str:
    """Compose a titled multi-section text report."""
    lines = [f"=== {title} ===", ""]
    for heading, body in sections.items():
        lines.append(f"--- {heading} ---")
        lines.append(body)
        lines.append("")
    return "\n".join(lines)
