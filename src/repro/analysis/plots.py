"""Terminal plotting utilities for the evaluation artifacts.

The paper's figures are line/bar charts; these helpers render the same
data as unicode text so benches and examples can show the *shape* of a
result (trends, crossovers, saturation) directly in a terminal or a
text report without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "line_plot"]

_SPARK_MARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], maximum: float | None = None) -> str:
    """One-line intensity strip of a series (used for latency traces)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return ""
    top = maximum if maximum is not None else float(data.max())
    if top <= 0:
        return _SPARK_MARKS[0] * data.size
    levels = np.clip(data / top, 0.0, 1.0)
    indices = np.minimum((levels * len(_SPARK_MARKS)).astype(int), len(_SPARK_MARKS) - 1)
    return "".join(_SPARK_MARKS[i] for i in indices)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values disagree in length")
    if not labels:
        return ""
    data = np.asarray(values, dtype=float)
    top = float(data.max()) if data.max() > 0 else 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, data):
        filled = int(round(width * value / top))
        lines.append(
            f"{str(label).ljust(label_width)} |{'█' * filled}{' ' * (width - filled)}| "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def line_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    logy: bool = False,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a distinct marker; the legend maps markers to
    series names.  ``logy`` plots log10 of the values (the Fig. 6
    runtime axis).
    """
    if not series:
        return ""
    markers = "ox+*#@%&"
    xs = np.asarray(x, dtype=float)
    all_y = []
    transformed: dict[str, np.ndarray] = {}
    for name, values in series.items():
        ys = np.asarray(values, dtype=float)
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        if logy:
            ys = np.log10(np.clip(ys, 1e-12, None))
        transformed[name] = ys
        all_y.append(ys)
    stacked = np.concatenate(all_y)
    y_min, y_max = float(stacked.min()), float(stacked.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(transformed.items()):
        marker = markers[index % len(markers)]
        for xv, yv in zip(xs, ys):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker
    axis_label = "log10(y)" if logy else "y"
    lines = [f"{axis_label} in [{y_min:.3g}, {y_max:.3g}], x in [{x_min:g}, {x_max:g}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(transformed)
    )
    lines.append(legend)
    return "\n".join(lines)
