"""CSV export of the evaluation data.

Writes each figure's series as a plain CSV so results can be plotted or
diffed outside Python (the benches' text reports are for humans; these
files are for tooling).
"""

from __future__ import annotations

import csv
import pathlib
from collections.abc import Iterable, Sequence

__all__ = ["write_csv", "export_fig6", "export_fig9", "export_fig10", "export_all"]


def write_csv(
    path: str | pathlib.Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> pathlib.Path:
    """Write one CSV file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def export_fig6(out_dir: str | pathlib.Path, max_tasks: int = 5) -> pathlib.Path:
    """Fig. 6 runtime series -> fig6_runtime.csv."""
    from repro.analysis.figures import fig6_runtime_comparison

    data = fig6_runtime_comparison(max_tasks=max_tasks)
    rows = zip(data["num_tasks"], data["offloadnn_s"], data["optimum_s"])
    return write_csv(
        pathlib.Path(out_dir) / "fig6_runtime.csv",
        ["num_tasks", "offloadnn_s", "optimum_s"],
        rows,
    )


def export_fig9(out_dir: str | pathlib.Path, seed: int = 0) -> pathlib.Path:
    """Fig. 9 admission ratios -> fig9_admission.csv (long format)."""
    from repro.analysis.figures import fig9_admission_ratios

    data = fig9_admission_ratios(seed=seed)
    rows = []
    for rate, series in data.items():
        for task_id, off, sem in zip(
            series["task_ids"], series["offloadnn"], series["semoran"]
        ):
            rows.append([rate, int(task_id), off, sem])
    return write_csv(
        pathlib.Path(out_dir) / "fig9_admission.csv",
        ["rate", "task_id", "offloadnn", "semoran"],
        rows,
    )


def export_fig10(out_dir: str | pathlib.Path, seed: int = 0) -> pathlib.Path:
    """Fig. 10 resource panels -> fig10_largescale.csv."""
    from repro.analysis.figures import fig10_largescale_comparison

    data = fig10_largescale_comparison(seed=seed)
    metric_names = sorted(next(iter(data.values())))
    rows = [[rate] + [metrics[m] for m in metric_names] for rate, metrics in data.items()]
    return write_csv(
        pathlib.Path(out_dir) / "fig10_largescale.csv",
        ["rate"] + metric_names,
        rows,
    )


def export_all(out_dir: str | pathlib.Path, max_tasks: int = 5) -> list[pathlib.Path]:
    """Export every CSV artifact; returns the written paths."""
    return [
        export_fig6(out_dir, max_tasks=max_tasks),
        export_fig9(out_dir),
        export_fig10(out_dir),
    ]
