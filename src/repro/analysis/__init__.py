"""Evaluation analysis: figure/table data assembly and reporting.

One function per paper artifact (Fig. 2 .. Fig. 11, Table I/II/IV and
the headline comparison), each returning plain data structures that the
benchmark harness prints and EXPERIMENTS.md records.
"""

from repro.analysis.figures import (
    fig2_training_curves,
    fig3_pruning_effects,
    fig6_runtime_comparison,
    fig7_cost_and_memory,
    fig8_cost_breakdown,
    fig9_admission_ratios,
    fig10_largescale_comparison,
    fig11_emulation_latency,
    headline_comparison,
)
from repro.analysis.report import format_table, render_figure_report
from repro.analysis.plots import bar_chart, line_plot, sparkline
from repro.analysis.sweep import (
    sweep_alpha,
    sweep_memory_budget,
    sweep_radio_budget,
    sweep_request_rate,
)

__all__ = [
    "fig2_training_curves",
    "fig3_pruning_effects",
    "fig6_runtime_comparison",
    "fig7_cost_and_memory",
    "fig8_cost_breakdown",
    "fig9_admission_ratios",
    "fig10_largescale_comparison",
    "fig11_emulation_latency",
    "headline_comparison",
    "format_table",
    "render_figure_report",
    "bar_chart",
    "line_plot",
    "sparkline",
    "sweep_alpha",
    "sweep_memory_budget",
    "sweep_radio_budget",
    "sweep_request_rate",
]
