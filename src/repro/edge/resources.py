"""Edge compute and memory resource pools.

Models the "computing resource pool" of Fig. 4: a set of GPUs, each
with its own VRAM, aggregated into a compute-time pool ``C`` and a
memory pool ``M`` that deployments draw from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gpu", "ComputePool", "MemoryPool"]


@dataclass(frozen=True)
class Gpu:
    """One accelerator of the edge platform."""

    gpu_id: int
    vram_gb: float
    #: sustained compute-time the device contributes per wall-clock
    #: second (1.0 = one device-second per second)
    compute_share: float = 1.0

    def __post_init__(self) -> None:
        if self.vram_gb <= 0:
            raise ValueError("vram_gb must be positive")
        if self.compute_share <= 0:
            raise ValueError("compute_share must be positive")


@dataclass
class MemoryPool:
    """Tracks memory reservations against a capacity."""

    capacity_gb: float
    reservations: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("capacity must be positive")

    @property
    def used_gb(self) -> float:
        return sum(self.reservations.values())

    @property
    def free_gb(self) -> float:
        return self.capacity_gb - self.used_gb

    def reserve(self, key: str, amount_gb: float) -> None:
        if amount_gb < 0:
            raise ValueError("amount must be >= 0")
        if key in self.reservations:
            raise KeyError(f"reservation {key!r} already exists")
        if amount_gb > self.free_gb + 1e-12:
            raise MemoryError(
                f"cannot reserve {amount_gb:.3f} GB for {key!r}: "
                f"{self.free_gb:.3f} GB free of {self.capacity_gb:.3f}"
            )
        self.reservations[key] = amount_gb

    def release(self, key: str) -> float:
        return self.reservations.pop(key, 0.0)


@dataclass
class ComputePool:
    """Tracks per-second compute-time commitments against ``C``."""

    capacity_s: float
    commitments: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_s <= 0:
            raise ValueError("capacity must be positive")

    @property
    def used_s(self) -> float:
        return sum(self.commitments.values())

    @property
    def free_s(self) -> float:
        return self.capacity_s - self.used_s

    def commit(self, key: str, amount_s: float) -> None:
        if amount_s < 0:
            raise ValueError("amount must be >= 0")
        if key in self.commitments:
            raise KeyError(f"commitment {key!r} already exists")
        if amount_s > self.free_s + 1e-12:
            raise RuntimeError(
                f"cannot commit {amount_s:.3f} s for {key!r}: "
                f"{self.free_s:.3f} s free of {self.capacity_s:.3f}"
            )
        self.commitments[key] = amount_s

    def release(self, key: str) -> float:
        return self.commitments.pop(key, 0.0)
