"""Edge computing platform: resource pools, VIM and the controller.

Implements the right-hand side of Fig. 4: the Virtual Infrastructure
Manager exposing computing status (GPUs, VRAM), the DNN repository
deployment, and the OffloaDNN controller driving the 7-step workflow
from task admission requests to per-task resource allocation.
"""

from repro.edge.resources import ComputePool, MemoryPool, Gpu
from repro.edge.vim import VirtualInfrastructureManager, Deployment
from repro.edge.controller import OffloaDNNController, AdmissionTicket

__all__ = [
    "ComputePool",
    "MemoryPool",
    "Gpu",
    "VirtualInfrastructureManager",
    "Deployment",
    "OffloaDNNController",
    "AdmissionTicket",
]
