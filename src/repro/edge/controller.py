"""The OffloaDNN controller — the Fig. 4 workflow, end to end.

Steps:

1. mobile devices submit task admission requests;
2. the controller pulls DNN availability plus computing and network
   status from the VIM and the vRAN;
3. it runs the DOT solver (OffloaDNN by default);
4. it allocates the radio slices and commits the computing resources;
5. it deploys the selected DNN blocks through the VIM;
6. it notifies the devices of the admitted task rates;
7. devices transmit task inputs and receive results (the emulator's
   role; see :mod:`repro.emulator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.incremental import WarmStartSolver
from repro.core.solution import DOTSolution
from repro.core.task import Task
from repro.edge.vim import VirtualInfrastructureManager
from repro.radio.slicing import SliceManager

__all__ = ["AdmissionTicket", "OffloaDNNController"]


@dataclass(frozen=True)
class AdmissionTicket:
    """Step-6 notification returned to a mobile device."""

    task_id: int
    admitted: bool
    #: admitted fraction of the requested rate (z_τ)
    admission_ratio: float
    #: inference requests per second the device may transmit
    granted_rate: float
    #: RBs of the slice serving the task
    radio_blocks: int
    #: identifier of the DNN path serving the task (None if rejected)
    path_id: str | None


@dataclass
class OffloaDNNController:
    """Edge-side controller orchestrating admission and deployment."""

    vim: VirtualInfrastructureManager
    slice_manager: SliceManager
    radio: RadioModel = field(default_factory=RadioModel)
    solver: object = field(default_factory=OffloaDNNSolver)
    alpha: float = 0.5
    training_budget_s: float = 1000.0
    #: reuse per-task tree cliques across admission rounds (only applies
    #: when ``solver`` is a first-branch :class:`OffloaDNNSolver`;
    #: silently falls back to cold solves otherwise)
    warm_start: bool = False
    #: last DOT solution, for inspection
    last_solution: DOTSolution | None = None
    #: currently admitted tasks, for preemption decisions
    active_tasks: dict[int, Task] = field(default_factory=dict)
    _warm_solver: WarmStartSolver | None = field(default=None, repr=False)

    def handle_admission_requests(
        self, tasks: tuple[Task, ...], catalog: Catalog
    ) -> dict[int, AdmissionTicket]:
        """Run the full workflow for a batch of admission requests."""
        # step 2: pull resource status
        status = self.vim.computing_status()
        free_compute = status["compute_free_s"]
        free_memory = status["memory_free_gb"]
        free_rbs = self.slice_manager.free_rbs
        if free_compute <= 0 or free_memory <= 0 or free_rbs <= 0:
            # some resource pool is exhausted: nothing can be admitted
            return {
                task.task_id: AdmissionTicket(
                    task_id=task.task_id,
                    admitted=False,
                    admission_ratio=0.0,
                    granted_rate=0.0,
                    radio_blocks=0,
                    path_id=None,
                )
                for task in tasks
            }
        budgets = Budgets(
            compute_time_s=free_compute,
            training_budget_s=self.training_budget_s,
            memory_gb=free_memory,
            radio_blocks=free_rbs,
        )
        problem = DOTProblem(
            tasks=tasks,
            catalog=catalog,
            budgets=budgets,
            radio=self.radio,
            alpha=self.alpha,
        )
        # step 3: solve DOT
        solution = self._resolve_solver().solve(problem)
        self.last_solution = solution
        # steps 4-5: allocate slices, commit compute, deploy blocks
        tickets: dict[int, AdmissionTicket] = {}
        for task in tasks:
            assignment = solution.assignment(task)
            if not assignment.admitted:
                tickets[task.task_id] = AdmissionTicket(
                    task_id=task.task_id,
                    admitted=False,
                    admission_ratio=0.0,
                    granted_rate=0.0,
                    radio_blocks=0,
                    path_id=None,
                )
                continue
            path = assignment.path
            assert path is not None
            # The DOT radio constraint bounds Σ z·r, but a slice occupies
            # its full r RBs physically; with partial admissions the
            # slice grid can run out first — treat that as a rejection.
            try:
                self.slice_manager.allocate(
                    task.task_id,
                    assignment.radio_blocks,
                    self.radio.bits_per_rb(task),
                )
            except ValueError:
                tickets[task.task_id] = AdmissionTicket(
                    task_id=task.task_id,
                    admitted=False,
                    admission_ratio=0.0,
                    granted_rate=0.0,
                    radio_blocks=0,
                    path_id=None,
                )
                continue
            self.vim.commit_inference_load(
                task.task_id, assignment.admitted_rate * path.compute_time_s
            )
            for block in path.blocks:
                self.vim.deploy_block(block, task.task_id)
            self.active_tasks[task.task_id] = task
            # step 6: notify the device
            tickets[task.task_id] = AdmissionTicket(
                task_id=task.task_id,
                admitted=True,
                admission_ratio=assignment.admission_ratio,
                granted_rate=assignment.admitted_rate,
                radio_blocks=assignment.radio_blocks,
                path_id=path.path_id,
            )
        return tickets

    def _resolve_solver(self):
        """The configured solver, wrapped for warm starts when possible."""
        if not self.warm_start:
            return self.solver
        if self._warm_solver is None:
            if (
                not isinstance(self.solver, OffloaDNNSolver)
                or self.solver.explore_branches != 1
            ):
                self.warm_start = False
                return self.solver
            self._warm_solver = WarmStartSolver(base=self.solver)
        return self._warm_solver

    def evict_task(self, task_id: int) -> None:
        """Tear down a task: release slice, compute and orphaned blocks."""
        self.slice_manager.release(task_id)
        self.vim.release_task(task_id)
        self.active_tasks.pop(task_id, None)
        if self._warm_solver is not None:
            self._warm_solver.forget(task_id)

    def admit_with_preemption(
        self,
        task: Task,
        catalog: Catalog,
        min_admission_ratio: float = 1e-9,
    ) -> tuple[AdmissionTicket, list[int]]:
        """Admit ``task``, evicting strictly lower-priority tasks if needed.

        While the newcomer's admission ratio stays below
        ``min_admission_ratio`` (default: any admission at all), the
        lowest-priority active task is evicted and admission retried,
        as long as lower-priority victims remain.  Pass 1.0 to demand
        full-rate admission.  Returns the final ticket and the evicted
        task ids.  Victims are not restored on failure — by construction
        they only fall when the newcomer outranks them, the usual
        priority-preemption contract.
        """
        if not 0.0 < min_admission_ratio <= 1.0:
            raise ValueError("min_admission_ratio must be in (0, 1]")
        evicted: list[int] = []
        ticket = self.handle_admission_requests((task,), catalog)[task.task_id]
        while ticket.admission_ratio < min_admission_ratio:
            if ticket.admitted:
                # a partial grant holds resources; release before retry
                self.evict_task(task.task_id)
            victims = [
                tid
                for tid, active in self.active_tasks.items()
                if active.priority < task.priority and tid != task.task_id
            ]
            if not victims:
                if not ticket.admitted:
                    return ticket, evicted
                # re-admit at the best achievable partial ratio
                ticket = self.handle_admission_requests((task,), catalog)[task.task_id]
                return ticket, evicted
            victim = min(victims, key=lambda tid: self.active_tasks[tid].priority)
            self.evict_task(victim)
            evicted.append(victim)
            ticket = self.handle_admission_requests((task,), catalog)[task.task_id]
        return ticket, evicted
