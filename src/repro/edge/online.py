"""Online operation: tasks arriving and departing over time.

The paper's formulation covers a one-shot admission decision and notes
the dynamic extension (Sec. III-B); the controller already supports it
(remaining-capacity solves, reference-counted deployments).  This
module adds the *driver*: a seeded arrival/departure process and a
study loop that feeds it through the controller, recording the
time series an operator would watch — active tasks, admission rate,
deployed memory, slice usage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import RadioModel
from repro.core.task import QualityLevel, Task
from repro.edge.controller import OffloaDNNController
from repro.edge.resources import Gpu
from repro.edge.vim import VirtualInfrastructureManager
from repro.radio.slicing import SliceManager
from repro.workloads.generator import ScenarioCatalogBuilder

__all__ = ["OnlineSnapshot", "OnlineTrace", "OnlineStudy"]


@dataclass(frozen=True)
class OnlineSnapshot:
    """System state right after one arrival or departure event."""

    time_s: float
    event: str  # "arrival" or "departure"
    task_id: int
    admitted: bool | None  # None for departures
    active_tasks: int
    deployed_memory_gb: float
    active_blocks: int
    allocated_rbs: int


@dataclass
class OnlineTrace:
    """The recorded time series of an online run."""

    snapshots: list[OnlineSnapshot] = field(default_factory=list)
    arrivals: int = 0
    admissions: int = 0
    rejections: int = 0
    departures: int = 0

    @property
    def admission_fraction(self) -> float:
        if self.arrivals == 0:
            return float("nan")
        return self.admissions / self.arrivals

    def series(self, attribute: str) -> tuple[list[float], list[float]]:
        """(times, values) of one snapshot attribute."""
        times = [s.time_s for s in self.snapshots]
        values = [float(getattr(s, attribute)) for s in self.snapshots]
        return times, values


@dataclass
class OnlineStudy:
    """Drive the controller with a Poisson arrival / exponential
    lifetime task process."""

    arrival_rate_per_s: float = 0.5
    mean_lifetime_s: float = 30.0
    horizon_s: float = 120.0
    memory_gb: float = 8.0
    compute_s: float = 2.5
    radio_blocks: int = 50
    bits_per_rb: float = 350_000.0
    request_rate: float = 5.0
    seed: int = 0
    #: reuse tree cliques across admission rounds (see the controller)
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0 or self.mean_lifetime_s <= 0:
            raise ValueError("rates and lifetimes must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")

    def _make_task(self, task_id: int, rng: np.random.Generator) -> Task:
        quality = QualityLevel("full", 350_000.0)
        return Task(
            task_id=task_id,
            name=f"online-task-{task_id}",
            method="classification",
            priority=float(rng.uniform(0.2, 1.0)),
            request_rate=self.request_rate,
            min_accuracy=float(rng.uniform(0.5, 0.85)),
            max_latency_s=float(rng.uniform(0.25, 0.6)),
            qualities=(quality,),
        )

    def run(self, solver=None) -> OnlineTrace:
        """Run the arrival/departure process through the controller."""
        rng = np.random.default_rng(self.seed)
        vim = VirtualInfrastructureManager(
            gpus=(Gpu(0, vram_gb=self.memory_gb, compute_share=self.compute_s),)
        )
        controller = OffloaDNNController(
            vim=vim,
            slice_manager=SliceManager(capacity_rbs=self.radio_blocks),
            radio=RadioModel(default_bits_per_rb=self.bits_per_rb),
            solver=solver or OffloaDNNSolver(),
            warm_start=self.warm_start,
        )
        trace = OnlineTrace()
        # event queue: (time, sequence, kind, task_id)
        events: list[tuple[float, int, str, int]] = []
        sequence = 0
        now = float(rng.exponential(1.0 / self.arrival_rate_per_s))
        next_task_id = 1
        while now < self.horizon_s:
            heapq.heappush(events, (now, sequence, "arrival", next_task_id))
            sequence += 1
            next_task_id += 1
            now += float(rng.exponential(1.0 / self.arrival_rate_per_s))

        active: set[int] = set()
        while events:
            time_s, _, kind, task_id = heapq.heappop(events)
            if kind == "arrival":
                trace.arrivals += 1
                task = self._make_task(task_id, rng)
                # per-task seeded builder keeps catalogs reproducible and
                # shared trunk blocks identical across arrivals
                builder = ScenarioCatalogBuilder(seed=0)
                catalog = builder.build((task,), task.qualities[0])
                tickets = controller.handle_admission_requests((task,), catalog)
                ticket = tickets[task.task_id]
                if ticket.admitted:
                    trace.admissions += 1
                    active.add(task_id)
                    lifetime = float(rng.exponential(self.mean_lifetime_s))
                    heapq.heappush(
                        events, (time_s + lifetime, sequence, "departure", task_id)
                    )
                    sequence += 1
                else:
                    trace.rejections += 1
                admitted: bool | None = ticket.admitted
            else:
                trace.departures += 1
                controller.evict_task(task_id)
                active.discard(task_id)
                admitted = None
            trace.snapshots.append(
                OnlineSnapshot(
                    time_s=time_s,
                    event=kind,
                    task_id=task_id,
                    admitted=admitted,
                    active_tasks=len(active),
                    deployed_memory_gb=vim.deployed_memory_gb(),
                    active_blocks=len(vim.deployments),
                    allocated_rbs=controller.slice_manager.allocated_rbs,
                )
            )
        return trace
