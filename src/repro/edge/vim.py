"""Virtual Infrastructure Manager (VIM).

The VIM of Fig. 4 reports the computing status (step 2 of the workflow)
and performs DNN block deployment (step 5).  Block deployments are
reference counted: a block shared by several tasks is loaded once and
released only when its last user leaves — the ``m(s^d)`` semantics of
constraint (1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Block
from repro.edge.resources import ComputePool, Gpu, MemoryPool

__all__ = ["Deployment", "VirtualInfrastructureManager"]


@dataclass
class Deployment:
    """An active DNN block with its reference count."""

    block: Block
    users: set[int] = field(default_factory=set)

    @property
    def reference_count(self) -> int:
        return len(self.users)


@dataclass
class VirtualInfrastructureManager:
    """Reference-counted block deployment over the edge resource pools."""

    gpus: tuple[Gpu, ...]
    compute: ComputePool = field(init=False)
    memory: MemoryPool = field(init=False)
    deployments: dict[str, Deployment] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ValueError("need at least one GPU")
        self.memory = MemoryPool(capacity_gb=sum(g.vram_gb for g in self.gpus))
        self.compute = ComputePool(capacity_s=sum(g.compute_share for g in self.gpus))

    # ------------------------------------------------------------------
    # status (workflow step 2)
    # ------------------------------------------------------------------

    def computing_status(self) -> dict[str, float]:
        """Snapshot the controller pulls before solving DOT."""
        return {
            "memory_capacity_gb": self.memory.capacity_gb,
            "memory_free_gb": self.memory.free_gb,
            "compute_capacity_s": self.compute.capacity_s,
            "compute_free_s": self.compute.free_s,
            "active_blocks": float(len(self.deployments)),
        }

    # ------------------------------------------------------------------
    # deployment (workflow step 5)
    # ------------------------------------------------------------------

    def deploy_block(self, block: Block, task_id: int) -> Deployment:
        """Activate ``block`` for ``task_id`` (idempotent per task).

        Memory is reserved only on first activation — the block-sharing
        memory saving the paper exploits.
        """
        deployment = self.deployments.get(block.block_id)
        if deployment is None:
            self.memory.reserve(block.block_id, block.memory_gb)
            deployment = Deployment(block=block)
            self.deployments[block.block_id] = deployment
        deployment.users.add(task_id)
        return deployment

    def release_task(self, task_id: int) -> list[str]:
        """Drop ``task_id`` from every block; unload orphaned blocks."""
        unloaded: list[str] = []
        for block_id in list(self.deployments):
            deployment = self.deployments[block_id]
            deployment.users.discard(task_id)
            if not deployment.users:
                self.memory.release(block_id)
                del self.deployments[block_id]
                unloaded.append(block_id)
        self.compute.release(f"task{task_id}")
        return unloaded

    def commit_inference_load(self, task_id: int, load_s: float) -> None:
        """Reserve per-second compute for an admitted task's inferences."""
        self.compute.commit(f"task{task_id}", load_s)

    def deployed_memory_gb(self) -> float:
        return self.memory.used_gb

    def is_deployed(self, block_id: str) -> bool:
        return block_id in self.deployments
