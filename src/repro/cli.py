"""Command-line interface.

Exposes the main entry points of the reproduction without writing any
Python::

    python -m repro solve-small --tasks 5 --optimal
    python -m repro solve-large --rate high
    python -m repro emulate --tasks 5 --duration 20
    python -m repro serve-sim --tasks 5 --load 2.0
    python -m repro profile --arch mobilenetv2
    python -m repro reproduce fig9

``reproduce`` regenerates one paper artifact (or ``headline``) and
prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.report import format_series, format_table

__all__ = ["main", "build_parser"]


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="OUT.json",
        help="record an execution trace; with a path, write Perfetto-"
        "loadable Chrome trace-event JSON there (bare --trace just "
        "prints the flamegraph summary)",
    )


def _finish_trace(obs, trace_arg: str) -> None:
    """Write/print one recorded session (shared --trace epilogue)."""
    if trace_arg:
        obs.write_trace(trace_arg)
        print(f"wrote {obs.span_count} spans to {trace_arg}")
    print(obs.summary())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OffloaDNN (ICDCS 2024) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    small = sub.add_parser("solve-small", help="solve the Table IV small-scale scenario")
    small.add_argument("--tasks", type=int, default=5, help="number of tasks (1..5)")
    small.add_argument(
        "--optimal", action="store_true", help="also solve with the exhaustive optimum"
    )
    small.add_argument("--seed", type=int, default=0)

    large = sub.add_parser("solve-large", help="solve the Table IV large-scale scenario")
    large.add_argument(
        "--rate", choices=["low", "medium", "high"], default="medium",
        help="task request load",
    )
    large.add_argument("--seed", type=int, default=0)

    scale = sub.add_parser(
        "solve-scale",
        help="solve a replicated large-scale instance (10^4-10^6 users)",
    )
    scale.add_argument(
        "--users", type=int, default=10_000,
        help="modeled users (rounded up to a multiple of 20 tasks)",
    )
    scale.add_argument(
        "--rate", choices=["low", "medium", "high"], default="medium"
    )
    scale.add_argument(
        "--no-aggregate", action="store_true",
        help="solve per-task with the vector engine instead of aggregating",
    )
    scale.add_argument("--seed", type=int, default=0)
    _add_trace_arg(scale)

    emulate = sub.add_parser("emulate", help="run the Fig. 11 emulation")
    emulate.add_argument("--tasks", type=int, default=5)
    emulate.add_argument("--duration", type=float, default=20.0, help="seconds")
    emulate.add_argument("--seed", type=int, default=0)
    _add_trace_arg(emulate)

    profile = sub.add_parser("profile", help="profile a DNN substrate model")
    profile.add_argument(
        "--arch", choices=["resnet18", "mobilenetv2"], default="resnet18"
    )
    profile.add_argument("--input-size", type=int, default=32)
    profile.add_argument("--classes", type=int, default=60)
    profile.add_argument("--repeats", type=int, default=5)
    profile.add_argument(
        "--compiled", action="store_true",
        help="time fused execution plans instead of eager forwards",
    )
    profile.add_argument(
        "--int8", action="store_true",
        help="time the int8-quantized compiled plan (implies --compiled)",
    )

    reproduce = sub.add_parser("reproduce", help="regenerate a paper artifact")
    reproduce.add_argument(
        "artifact",
        choices=["fig2", "fig3", "fig6", "fig7", "fig9", "fig10", "fig11", "headline"],
    )

    def _add_serve_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--tasks", type=int, default=5, help="number of tasks (1..5)"
        )
        parser.add_argument("--duration", type=float, default=10.0, help="seconds")
        parser.add_argument(
            "--load", type=float, default=1.0, help="offered-load multiplier on λ"
        )
        parser.add_argument("--policy", choices=["fifo", "edf"], default="edf")
        parser.add_argument(
            "--window", type=float, default=0.005, help="batch window (s)"
        )
        parser.add_argument("--workers", type=int, default=1)
        parser.add_argument(
            "--procs", type=int, default=1,
            help="data-parallel processes per batching window "
            "(models repro.serving.parallel sharding; single-node only)",
        )
        parser.add_argument(
            "--slice-margin", type=int, default=2,
            help="extra RBs per admitted slice (uplink headroom for batching)",
        )
        parser.add_argument(
            "--no-prefix-cache", action="store_true",
            help="disable shared-block prefix fusion in the executor",
        )
        parser.add_argument(
            "--int8-activations", action="store_true",
            help="ship cluster-hop activations as int8+scale wire frames "
            "(4x fewer payload bytes than fp32; multi-node only)",
        )
        parser.add_argument("--poisson", action="store_true", help="Poisson arrivals")
        parser.add_argument(
            "--engine", choices=["vector", "scalar"], default="vector",
            help="data plane: vectorized arrival waves (default) or the "
            "per-request DES reference it is bit-identical to",
        )
        parser.add_argument("--seed", type=int, default=0)
        _add_trace_arg(parser)

    serve = sub.add_parser(
        "serve-sim", help="run the serving runtime on the small-scale scenario"
    )
    _add_serve_args(serve)
    serve.add_argument(
        "--cluster", default=None, metavar="NODES",
        help="serve across a multi-node fabric: a nodes.json topology "
        "file or an integer edge-node count",
    )

    serve_cluster = sub.add_parser(
        "serve-cluster",
        help="serve the small-scale scenario across a multi-node fabric",
    )
    serve_cluster.add_argument(
        "nodes",
        help="nodes.json topology file or an integer edge-node count",
    )
    _add_serve_args(serve_cluster)

    trace_summary = sub.add_parser(
        "trace-summary", help="validate and summarize a recorded trace file"
    )
    trace_summary.add_argument("input", help="Chrome trace JSON or span JSONL file")
    trace_summary.add_argument(
        "--top", type=int, default=40, help="max root spans shown per clock domain"
    )

    sweep = sub.add_parser("sweep", help="sensitivity sweep on the large scenario")
    sweep.add_argument("--knob", choices=["radio", "memory", "rate"], default="radio")
    sweep.add_argument(
        "--values", type=str, default="",
        help="comma-separated knob values (defaults per knob)",
    )

    export = sub.add_parser("export-problem", help="serialize a scenario to JSON")
    export.add_argument("output", help="destination JSON file")
    export.add_argument(
        "--scenario", choices=["small", "large"], default="small"
    )
    export.add_argument("--tasks", type=int, default=5, help="small-scenario size")
    export.add_argument(
        "--rate", choices=["low", "medium", "high"], default="medium"
    )

    solve_file = sub.add_parser("solve-file", help="solve a serialized problem")
    solve_file.add_argument("input", help="problem JSON file")
    solve_file.add_argument(
        "--solution-out", default=None, help="write the solution JSON here"
    )
    return parser


def _cmd_solve_small(args: argparse.Namespace) -> int:
    from repro.core.heuristic import OffloaDNNSolver
    from repro.core.objective import objective_value
    from repro.core.optimal import OptimalSolver
    from repro.workloads.smallscale import small_scale_problem

    problem = small_scale_problem(args.tasks, seed=args.seed)
    solvers = [OffloaDNNSolver()]
    if args.optimal:
        solvers.append(OptimalSolver())
    for solver in solvers:
        solution = solver.solve(problem)
        print(f"\n[{solution.solver_name}] solved in {solution.solve_time_s:.4f} s")
        rows = []
        for task in problem.tasks:
            a = solution.assignment(task)
            rows.append(
                [
                    task.task_id,
                    a.path.path_id if a.path else "-",
                    a.admission_ratio,
                    a.radio_blocks,
                ]
            )
        print(format_table(["task", "path", "z", "RBs"], rows, precision=2))
        print(
            f"objective {objective_value(problem, solution):.4f}  "
            f"memory {solution.total_memory_gb:.2f} GB  "
            f"RBs {solution.total_radio_blocks:.1f}"
        )
    return 0


def _cmd_solve_large(args: argparse.Namespace) -> int:
    from repro.baselines.semoran import SemORANSolver
    from repro.core.heuristic import OffloaDNNSolver
    from repro.workloads.largescale import RequestRate, large_scale_problem

    rate = RequestRate[args.rate.upper()]
    problem = large_scale_problem(rate, seed=args.seed)
    for solver in (OffloaDNNSolver(), SemORANSolver()):
        solution = solver.solve(problem)
        ratios = [solution.assignment(t).admission_ratio for t in range(1, 21)]
        print(f"\n[{solution.solver_name}] {rate.label} rate")
        print(format_series("admission", ratios, precision=2))
        print(
            f"admitted {solution.admitted_task_count}/20  "
            f"memory {solution.total_memory_gb:.2f}/{problem.budgets.memory_gb} GB  "
            f"RBs {solution.total_radio_blocks:.1f}/{problem.budgets.radio_blocks}  "
            f"inference {solution.total_inference_compute_s:.2f}/"
            f"{problem.budgets.compute_time_s} s"
        )
    return 0


def _cmd_solve_scale(args: argparse.Namespace) -> int:
    import contextlib

    from repro.core.aggregate import AggregateSolver
    from repro.core.heuristic import OffloaDNNSolver
    from repro.workloads.largescale import RequestRate, replicated_large_scale_problem

    obs = None
    scope = contextlib.nullcontext()
    if args.trace is not None:
        from repro.obs import ObsSession, use_tracer

        obs = ObsSession()
        scope = use_tracer(obs.wall)
    rate = RequestRate[args.rate.upper()]
    replicas = max(1, -(-args.users // 20))
    problem = replicated_large_scale_problem(rate, replicas, seed=args.seed)
    with scope:
        if args.no_aggregate:
            solution = OffloaDNNSolver(engine="vector").solve(problem)
        else:
            solver = AggregateSolver()
            solution = solver.solve(problem)
    print(
        f"[{solution.solver_name}] {len(problem.tasks)} tasks "
        f"({rate.label} rate)"
    )
    if not args.no_aggregate:
        assert solver.last_plan is not None
        print(
            f"aggregated to {solver.last_plan.num_groups} meta-tasks "
            f"({solver.last_plan.compression:.0f}x compression)"
        )
    print(
        f"admitted {solution.admitted_task_count}/{len(problem.tasks)}  "
        f"weighted admission {solution.weighted_admission_ratio:.2f}  "
        f"RBs {solution.total_radio_blocks:.1f}/{problem.budgets.radio_blocks}"
    )
    print(
        f"tree build {solution.tree_build_time_s:.4f} s  "
        f"solve {solution.solve_time_s:.4f} s  "
        f"total {solution.total_time_s:.4f} s"
    )
    if obs is not None:
        _finish_trace(obs, args.trace)
    return 0


def _cmd_emulate(args: argparse.Namespace) -> int:
    from repro.emulator.scenario import run_small_scale_emulation

    obs = None
    if args.trace is not None:
        from repro.obs import ObsSession

        obs = ObsSession()
    problem, result = run_small_scale_emulation(
        num_tasks=args.tasks, duration_s=args.duration, seed=args.seed, obs=obs
    )
    rows = []
    for task in problem.tasks:
        mean = result.timeline.mean_latency(task.task_id)
        peak = result.timeline.max_latency(task.task_id)
        rows.append(
            [task.task_id, mean * 1e3, peak * 1e3, task.max_latency_s * 1e3]
        )
    print(format_table(["task", "mean ms", "max ms", "limit ms"], rows, precision=1))
    verdict = result.all_within_limits(problem)
    print(f"all within latency targets: {verdict}")
    if obs is not None:
        result.statistics(problem, registry=obs.registry)
        _finish_trace(obs, args.trace)
    return 0 if verdict else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.dnn.profiler import profile_model

    if args.arch == "resnet18":
        from repro.dnn.resnet import build_resnet18

        model = build_resnet18(num_classes=args.classes, input_size=args.input_size)
    else:
        from repro.dnn.mobilenet import build_mobilenetv2

        model = build_mobilenetv2(
            num_classes=args.classes, input_size=args.input_size, width_multiplier=1.0
        )
    quantize = "int8" if args.int8 else None
    profile = profile_model(
        model, repeats=args.repeats, compiled=args.compiled, quantize=quantize
    )
    rows = [
        [b.name, b.compute_time_s * 1e3, b.params, b.flops / 1e6, b.memory_bytes / 1e6]
        for b in profile.blocks
    ]
    mode = " (int8 plan)" if args.int8 else (" (compiled)" if args.compiled else "")
    print(f"{args.arch} @ {args.input_size}px, {args.classes} classes{mode}")
    print(
        format_table(
            ["block", "time ms", "params", "MFLOPs", "mem MB"], rows, precision=2
        )
    )
    print(
        f"total: {profile.total_compute_time_s * 1e3:.2f} ms, "
        f"{profile.total_params:,} params"
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.analysis import figures

    artifact = args.artifact
    if artifact == "fig2":
        data = figures.fig2_training_curves(epochs=250)
        for name, entry in data.items():
            print(
                f"{name}: epochs-to-80% {entry['epochs_to_80pct']}, "
                f"final acc {entry['final_accuracy']:.3f}, "
                f"peak memory {entry['peak_memory_mib']:.0f} MiB"
            )
    elif artifact == "fig3":
        data = figures.fig3_pruning_effects()
        rows = [
            [name, d["inference_time_ms"], 100 * d["class_accuracy"]]
            for name, d in sorted(data.items())
        ]
        print(format_table(["config", "time ms", "acc %"], rows, precision=2))
    elif artifact == "fig6":
        data = figures.fig6_runtime_comparison(max_tasks=4)
        rows = list(zip(data["num_tasks"], data["offloadnn_s"], data["optimum_s"]))
        print(format_table(["T", "OffloaDNN s", "Optimum s"], rows, precision=4))
    elif artifact == "fig7":
        data = figures.fig7_cost_and_memory(max_tasks=4)
        rows = list(
            zip(
                data["num_tasks"],
                data["offloadnn_cost"],
                data["optimum_cost"],
                data["offloadnn_memory"],
            )
        )
        print(format_table(["T", "Off cost", "Opt cost", "Off mem"], rows))
    elif artifact == "fig9":
        data = figures.fig9_admission_ratios()
        for rate, series in data.items():
            print(f"[{rate}]")
            print(format_series("  OffloaDNN", series["offloadnn"], precision=2))
            print(format_series("  SEM-O-RAN", series["semoran"], precision=2))
    elif artifact == "fig10":
        data = figures.fig10_largescale_comparison()
        for rate, metrics in data.items():
            print(f"[{rate}] " + ", ".join(f"{k}={v:.3f}" for k, v in metrics.items()))
    elif artifact == "fig11":
        data = figures.fig11_emulation_latency()
        for task_id, entry in sorted(data["series"].items()):
            print(
                f"task {task_id}: mean {float(entry['mean_latency_s']) * 1e3:.1f} ms "
                f"(limit {entry['limit_s'] * 1e3:.0f} ms)"
            )
        print(f"within limits: {data['within_limits']}")
    else:  # headline
        data = figures.headline_comparison()
        for metric, value in data.items():
            print(f"{metric}: {value:+.1f}%")
    return 0


def _load_topology(spec: str):
    """Resolve a --cluster value: integer mesh size or nodes.json path."""
    from repro.cluster import ClusterTopology, default_topology

    try:
        num_nodes = int(spec)
    except ValueError:
        return ClusterTopology.load(spec)
    return default_topology(num_nodes)


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.core.heuristic import OffloaDNNSolver
    from repro.serving import ServingConfig, ServingRuntime
    from repro.workloads.smallscale import serving_small_scale_problem

    import contextlib

    cluster_spec = getattr(args, "cluster", None) or getattr(args, "nodes", None)
    obs = None
    scope = contextlib.nullcontext()
    if args.trace is not None:
        from repro.obs import ObsSession, use_tracer

        obs = ObsSession()
        scope = use_tracer(obs.wall)
    problem = serving_small_scale_problem(args.tasks, seed=args.seed)
    config = ServingConfig(
        duration_s=args.duration,
        batch_window_s=args.window,
        queue_policy=args.policy,
        num_workers=args.workers,
        num_procs=args.procs,
        prefix_cache=not args.no_prefix_cache,
        poisson=args.poisson,
        load_factor=args.load,
        engine=args.engine,
        seed=args.seed,
    )
    with scope:
        runtime = ServingRuntime.from_problem(
            problem, config, solver=OffloaDNNSolver(slice_margin_rbs=args.slice_margin)
        )
    runtime.obs = obs
    topology = None
    if cluster_spec is not None:
        import dataclasses

        from repro.cluster import ClusterDeployment

        topology = _load_topology(cluster_spec)
        if args.int8_activations:
            topology = dataclasses.replace(topology, int8_activations=True)
        runtime.cluster = ClusterDeployment.place(
            problem, runtime.solution, runtime.tickets, topology
        )
    metrics = runtime.run()
    print(
        f"serving {args.tasks} tasks for {args.duration:g} s "
        f"at {args.load:g}x offered load ({config.queue_policy}, "
        f"prefix cache {'on' if config.prefix_cache else 'off'}, "
        f"{config.num_procs} proc{'s' if config.num_procs != 1 else ''})"
    )
    print(
        format_table(
            list(metrics.SUMMARY_HEADER), metrics.summary_rows(), precision=1
        )
    )
    print(
        f"throughput {metrics.throughput_rps:.1f} req/s  "
        f"deadline-miss rate {metrics.deadline_miss_rate:.3f}  "
        f"windows {metrics.windows}"
    )
    print(
        f"simulated compute {metrics.total_compute_s:.4f} s"
        + (
            f"  (prefix cache saved {metrics.compute_saved_s:.4f} s, "
            f"{metrics.prefix_merges} merges)"
            if config.prefix_cache
            else ""
        )
    )
    if topology is not None:
        qos = runtime.executor.qos
        print(
            f"cluster: {len(topology.nodes)} nodes, "
            f"{runtime.cluster.plan.split_tasks} split paths, "
            f"{qos.bytes_streamed} bytes streamed"
        )
        print(
            format_table(
                list(qos.NODE_HEADER), qos.node_rows(metrics.duration_s), precision=1
            )
        )
        link_rows = qos.link_rows()
        if link_rows:
            print(format_table(list(qos.LINK_HEADER), link_rows, precision=0))
    if obs is not None:
        _finish_trace(obs, args.trace)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import sweep as sweep_module

    defaults = {
        "radio": [20, 40, 60, 80, 100, 140],
        "memory": [0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
        "rate": [2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
    }
    if args.values:
        values = [float(v) for v in args.values.split(",")]
    else:
        values = defaults[args.knob]
    if args.knob == "radio":
        points = sweep_module.sweep_radio_budget([int(v) for v in values])
    elif args.knob == "memory":
        points = sweep_module.sweep_memory_budget(values)
    else:
        points = sweep_module.sweep_request_rate(values)
    rows = [
        [p.value, p.weighted_admission, p.admitted_tasks, p.memory_gb, p.radio_blocks]
        for p in points
    ]
    print(
        format_table(
            [args.knob, "w. admission", "admitted", "memory GB", "RBs"], rows,
            precision=2,
        )
    )
    return 0


def _cmd_export_problem(args: argparse.Namespace) -> int:
    from repro.core.serialize import dump_problem

    if args.scenario == "small":
        from repro.workloads.smallscale import small_scale_problem

        problem = small_scale_problem(args.tasks)
    else:
        from repro.workloads.largescale import RequestRate, large_scale_problem

        problem = large_scale_problem(RequestRate[args.rate.upper()])
    dump_problem(problem, args.output)
    print(f"wrote {len(problem.tasks)}-task problem to {args.output}")
    return 0


def _cmd_solve_file(args: argparse.Namespace) -> int:
    from repro.core.heuristic import OffloaDNNSolver
    from repro.core.objective import objective_value
    from repro.core.serialize import dump_solution, load_problem

    problem = load_problem(args.input)
    solution = OffloaDNNSolver().solve(problem)
    rows = [
        [
            t.task_id,
            solution.assignment(t).path.path_id if solution.assignment(t).path else "-",
            solution.assignment(t).admission_ratio,
            solution.assignment(t).radio_blocks,
        ]
        for t in problem.tasks
    ]
    print(format_table(["task", "path", "z", "RBs"], rows, precision=2))
    print(f"objective: {objective_value(problem, solution):.4f}")
    if args.solution_out:
        dump_solution(solution, args.solution_out)
        print(f"wrote solution to {args.solution_out}")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import flame_summary, load_records

    try:
        tracers = load_records(args.input)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    total = sum(len(t.records) for t in tracers)
    domains = ", ".join(
        f"{t.domain} ({len(t.records)})" for t in tracers
    ) or "none"
    print(f"{args.input}: {total} records; domains: {domains}")
    print(flame_summary(tracers, top=args.top))
    return 0


_COMMANDS = {
    "solve-small": _cmd_solve_small,
    "solve-large": _cmd_solve_large,
    "solve-scale": _cmd_solve_scale,
    "emulate": _cmd_emulate,
    "profile": _cmd_profile,
    "reproduce": _cmd_reproduce,
    "serve-sim": _cmd_serve_sim,
    "serve-cluster": _cmd_serve_sim,
    "trace-summary": _cmd_trace_summary,
    "sweep": _cmd_sweep,
    "export-problem": _cmd_export_problem,
    "solve-file": _cmd_solve_file,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
