"""Dynamic (incremental) DOT — the extension sketched in Sec. III-B.

The paper: *"it is indeed enough to consider the training cost and
memory occupancy of already-deployed DNN blocks equal to zero, discount
the radio, compute, and memory capacity, and only account for the
additional blocks and RBs that may be needed by the set of newly
requested tasks."*

:func:`discount_problem` applies exactly that transformation to a DOT
instance, given the state of a running edge platform (deployed block
ids and consumed capacities).  Solving the discounted instance with any
solver then yields the incremental decision for newly arrived tasks —
with already-deployed blocks naturally preferred, since they cost
nothing.

The runtime realization of the same idea lives in
:class:`repro.edge.controller.OffloaDNNController`, which pulls the
*remaining* capacities from the VIM before every solve; this module
provides the problem-level transformation for offline studies and for
solvers that are not wired to a live platform.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.catalog import Block, Catalog, Path
from repro.core.problem import Budgets, DOTProblem

__all__ = ["discount_problem", "deployed_block_ids"]


def deployed_block_ids(solution) -> frozenset[str]:
    """Block ids deployed by an existing solution's admitted tasks."""
    return frozenset(solution.active_blocks())


def _discount_block(block: Block, deployed: frozenset[str]) -> Block:
    if block.block_id not in deployed:
        return block
    return replace(block, memory_gb=0.0, training_cost_s=0.0)


def discount_problem(
    problem: DOTProblem,
    deployed: frozenset[str] | set[str],
    used_memory_gb: float = 0.0,
    used_compute_s: float = 0.0,
    used_radio_blocks: float = 0.0,
) -> DOTProblem:
    """The incremental DOT instance for newly requested tasks.

    Parameters
    ----------
    problem:
        The instance describing the *new* tasks and their candidate
        paths (which may reference blocks already at the edge).
    deployed:
        Block ids already active at the edge: their memory and training
        costs become zero.
    used_memory_gb, used_compute_s, used_radio_blocks:
        Capacity already consumed by previously admitted tasks,
        subtracted from the budgets.
    """
    deployed = frozenset(deployed)
    new_catalog = Catalog()
    block_cache: dict[str, Block] = {}
    for task_id, paths in problem.catalog.paths_by_task.items():
        for path in paths:
            blocks = tuple(
                block_cache.setdefault(b.block_id, _discount_block(b, deployed))
                for b in path.blocks
            )
            new_catalog.add_path(replace(path, blocks=blocks))

    budgets = problem.budgets
    remaining_memory = budgets.memory_gb - used_memory_gb
    remaining_compute = budgets.compute_time_s - used_compute_s
    remaining_radio = int(budgets.radio_blocks - used_radio_blocks)
    if remaining_memory <= 0 or remaining_compute <= 0 or remaining_radio <= 0:
        raise ValueError(
            "no remaining capacity to admit new tasks "
            f"(memory {remaining_memory:.3f} GB, compute {remaining_compute:.3f} s, "
            f"radio {remaining_radio} RBs)"
        )
    return DOTProblem(
        tasks=problem.tasks,
        catalog=new_catalog,
        budgets=Budgets(
            compute_time_s=remaining_compute,
            training_budget_s=budgets.training_budget_s,
            memory_gb=remaining_memory,
            radio_blocks=remaining_radio,
        ),
        radio=problem.radio,
        alpha=problem.alpha,
    )
