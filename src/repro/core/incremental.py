"""Dynamic (incremental) DOT — the extension sketched in Sec. III-B.

The paper: *"it is indeed enough to consider the training cost and
memory occupancy of already-deployed DNN blocks equal to zero, discount
the radio, compute, and memory capacity, and only account for the
additional blocks and RBs that may be needed by the set of newly
requested tasks."*

:func:`discount_problem` applies exactly that transformation to a DOT
instance, given the state of a running edge platform (deployed block
ids and consumed capacities).  Solving the discounted instance with any
solver then yields the incremental decision for newly arrived tasks —
with already-deployed blocks naturally preferred, since they cost
nothing.

The runtime realization of the same idea lives in
:class:`repro.edge.controller.OffloaDNNController`, which pulls the
*remaining* capacities from the VIM before every solve; this module
provides the problem-level transformation for offline studies and for
solvers that are not wired to a live platform.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.core.catalog import Block, Catalog, Path
from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import Budgets, DOTProblem
from repro.core.solution import DOTSolution
from repro.core.task import Task
from repro.core.tree import (
    BlockRegistry,
    VectorClique,
    VectorTree,
    build_task_clique,
)

__all__ = ["discount_problem", "deployed_block_ids", "WarmStartSolver"]


def deployed_block_ids(solution) -> frozenset[str]:
    """Block ids deployed by an existing solution's admitted tasks."""
    return frozenset(solution.active_blocks())


def _discount_block(block: Block, deployed: frozenset[str]) -> Block:
    if block.block_id not in deployed:
        return block
    return replace(block, memory_gb=0.0, training_cost_s=0.0)


def discount_problem(
    problem: DOTProblem,
    deployed: frozenset[str] | set[str],
    used_memory_gb: float = 0.0,
    used_compute_s: float = 0.0,
    used_radio_blocks: float = 0.0,
) -> DOTProblem:
    """The incremental DOT instance for newly requested tasks.

    Parameters
    ----------
    problem:
        The instance describing the *new* tasks and their candidate
        paths (which may reference blocks already at the edge).
    deployed:
        Block ids already active at the edge: their memory and training
        costs become zero.
    used_memory_gb, used_compute_s, used_radio_blocks:
        Capacity already consumed by previously admitted tasks,
        subtracted from the budgets.
    """
    deployed = frozenset(deployed)
    new_catalog = Catalog()
    # keyed by the Block value itself: two paths may carry *different*
    # Block objects sharing a block_id (e.g. differently-costed
    # variants); a block_id-keyed cache would silently return whichever
    # was seen first
    block_cache: dict[Block, Block] = {}
    for task_id, paths in problem.catalog.paths_by_task.items():
        for path in paths:
            blocks = tuple(
                block_cache.setdefault(b, _discount_block(b, deployed))
                for b in path.blocks
            )
            new_catalog.add_path(replace(path, blocks=blocks))

    budgets = problem.budgets
    # a saturated platform yields a valid zero-headroom instance: every
    # solver then rejects all tasks, which is the correct online answer
    # (an exception here would crash churn loops at momentary peaks)
    remaining_memory = max(0.0, budgets.memory_gb - used_memory_gb)
    remaining_compute = max(0.0, budgets.compute_time_s - used_compute_s)
    # explicit floor with a tolerance: plain int() truncation would eat
    # a whole RB whenever Σ z·r accumulates to fractionally below an
    # integer (e.g. 12.999999999 -> 37 free, not 38)
    remaining_radio = max(
        0, math.floor(budgets.radio_blocks - used_radio_blocks + 1e-9)
    )
    return DOTProblem(
        tasks=problem.tasks,
        catalog=new_catalog,
        budgets=Budgets(
            compute_time_s=remaining_compute,
            training_budget_s=budgets.training_budget_s,
            memory_gb=remaining_memory,
            radio_blocks=remaining_radio,
        ),
        radio=problem.radio,
        alpha=problem.alpha,
    )


# ---------------------------------------------------------------------------
# Warm start across arrival/departure churn
# ---------------------------------------------------------------------------


@dataclass
class _CliqueEntry:
    """Cache validity record for one task's vectorized clique."""

    task: Task
    paths: tuple[Path, ...]
    bits_per_rb: float
    clique: VectorClique


@dataclass
class WarmStartSolver:
    """Reuses surviving per-task cliques across churn re-solves.

    A task's clique — its feasibility-filtered, sorted (path × quality)
    variants — depends only on the task itself, its candidate paths and
    its radio capacity ``B(σ_τ)``, not on the other tasks or the edge
    budgets (the radio filter is applied per solve).  So when the active
    set changes by a few arrivals/departures, only the *new* tasks need
    clique construction; everything else is tree assembly plus the
    selection/allocation passes.  At 10⁴ tasks the from-scratch build
    dominates the solve, which is where the speedup comes from.

    Entries are validated by task equality, path-tuple identity and the
    task's bits-per-RB — a changed task definition or catalog rebuilds
    its clique transparently.
    """

    base: OffloaDNNSolver = field(default_factory=OffloaDNNSolver)

    def __post_init__(self) -> None:
        if self.base.explore_branches != 1:
            raise ValueError(
                "warm start supports the first-branch rule only "
                "(explore_branches == 1)"
            )
        self.registry = BlockRegistry()
        self._entries: dict[int, _CliqueEntry] = {}
        #: churn statistics of the most recent solve
        self.last_reused = 0
        self.last_built = 0

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def cached_tasks(self) -> int:
        return len(self._entries)

    def solve(self, problem: DOTProblem) -> DOTSolution:
        start = time.perf_counter()
        cliques: list[VectorClique] = []
        reused = built = 0
        for task in problem.tasks_by_priority():
            paths = problem.catalog.paths_for(task)
            bits_per_rb = problem.radio.bits_per_rb(task)
            entry = self._entries.get(task.task_id)
            if (
                entry is not None
                and entry.paths is paths
                and entry.bits_per_rb == bits_per_rb
                and entry.task == task
            ):
                cliques.append(entry.clique)
                reused += 1
                continue
            clique = build_task_clique(task, paths, bits_per_rb, self.registry)
            self._entries[task.task_id] = _CliqueEntry(
                task=task, paths=paths, bits_per_rb=bits_per_rb, clique=clique
            )
            cliques.append(clique)
            built += 1
        self.last_reused, self.last_built = reused, built
        vtree = VectorTree(
            problem=problem,
            cliques=cliques,
            registry=self.registry,
            build_time_s=time.perf_counter() - start,
            cached_cliques=reused,
        )
        return self.base.solve_from_vector_tree(problem, vtree)

    def forget(self, task_id: int) -> None:
        """Drop a departed task's clique."""
        self._entries.pop(task_id, None)

    def prune(self, active_task_ids) -> None:
        """Keep only the given tasks' cliques (bulk departure)."""
        keep = set(active_task_ids)
        for task_id in list(self._entries):
            if task_id not in keep:
                del self._entries[task_id]

    def clear(self) -> None:
        self._entries.clear()
        self.registry = BlockRegistry()
