"""Per-branch optimization of the admission ratios ``z`` and RB counts ``r``.

Once a tree branch fixes the DNN path of every task (the ``x``/``y``
variables), the remaining problem in ``(z, r)`` is convex (Sec. IV-B).
Two solvers are provided:

* :func:`solve_branch` — an exact *structured* solver exploiting the
  problem's separability: tasks couple only through the radio budget
  Σ z·r ≤ R and the compute budget Σ z·λ·Σc ≤ C.  It processes tasks in
  branch (priority) order and gives each the largest feasible admission
  ratio with the smallest RB allocation that still meets the latency and
  rate constraints — reproducing the published behaviour (top-priority
  tasks admitted fully, then diminishing ratios, then rejections as the
  radio pool saturates).
* :func:`solve_branch_convex` — scipy SLSQP on the relaxed continuous
  program, used as an independent cross-check in tests and for the
  "any convex optimizer" variant the paper mentions.

The structured solver maximizes admission lexicographically by priority
(what the paper's evaluation shows both OffloaDNN and the optimum doing)
while always choosing the cheapest feasible ``r`` — which also minimizes
the Eq. (1a) radio term for the chosen ``z``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.catalog import Path
from repro.core.problem import Budgets, DOTProblem
from repro.core.task import Task
from repro.obs.trace import current_tracer

__all__ = [
    "BranchItem",
    "BranchAllocation",
    "minimum_latency_rbs",
    "solve_branch",
    "solve_branch_convex",
]

#: tie-break tolerance of the admission scan: a candidate must beat the
#: incumbent by more than this to displace it (ties prefer smaller r)
_SCAN_EPS = 1e-12


@dataclass(frozen=True)
class BranchItem:
    """One (task, chosen path) pair on a branch, with radio constants."""

    task: Task
    path: Path
    bits_per_rb: float

    @property
    def compute_time_s(self) -> float:
        return self.path.compute_time_s

    def min_latency_rbs(self) -> int:
        """Smallest ``r`` meeting the latency constraint (1g) for z > 0."""
        return minimum_latency_rbs(
            self.path.bits_per_image,
            self.bits_per_rb,
            self.task.max_latency_s,
            self.path.compute_time_s,
        )

    def min_rate_rbs(self, z: float) -> int:
        """Smallest ``r`` meeting the slice-rate constraint (1e) at ``z``."""
        if z <= 0:
            return 0
        need = z * self.task.request_rate * self.path.bits_per_image
        return max(1, math.ceil(need / self.bits_per_rb - 1e-12))

    def required_rbs(self, z: float) -> int:
        if z <= 0:
            return 0
        return max(self.min_latency_rbs(), self.min_rate_rbs(z))


def minimum_latency_rbs(
    bits_per_image: float,
    bits_per_rb: float,
    max_latency_s: float,
    compute_time_s: float,
) -> int:
    """Smallest RB count for which transmission + compute fits the limit.

    Returns a value > any practical budget when the compute time alone
    already exceeds the latency limit.
    """
    slack = max_latency_s - compute_time_s
    if slack <= 0:
        return 10**9
    return max(1, math.ceil(bits_per_image / (bits_per_rb * slack) - 1e-12))


@dataclass
class BranchAllocation:
    """Solver output: per-item admission ratio and RB count."""

    admission: list[float]
    radio_blocks: list[int]

    def __post_init__(self) -> None:
        if len(self.admission) != len(self.radio_blocks):
            raise ValueError("admission and radio vectors disagree in length")


def _candidate_rbs(
    r_latency: int,
    r_upper: int,
    rate_bits: float,
    bits_per_rb: float,
    remaining_radio: float,
    z_compute: float,
) -> list[int]:
    """The integer RB counts at which ``z(r)`` can change regime.

    ``z(r) = min(z_rate(r), z_radio(r), z_compute)`` is the minimum of a
    nondecreasing line, a nonincreasing hyperbola and a constant, so its
    maximum over ``[r_latency, r_upper]`` — and the first integer within
    the scan tolerance of it — lies at an interval endpoint or next to
    one of the pairwise crossings.  Every crossing contributes its
    neighbouring integers, which keeps the scan equivalent to the full
    enumeration (proved empirically in the parity test suite).
    """
    candidates = {r_latency, min(r_latency + 1, r_upper), r_upper}
    crossings: list[float] = []
    if rate_bits > 0 and bits_per_rb > 0:
        slope = bits_per_rb / rate_bits
        # z_rate meets the flat caps (compute bound, full admission)
        crossings.append(min(1.0, z_compute) / slope)
        crossings.append(1.0 / slope)
        if remaining_radio > 0:
            # z_rate meets the declining radio bound: r² = remaining/slope
            crossings.append(math.sqrt(remaining_radio / slope))
    if remaining_radio > 0 and z_compute > 0:
        # the radio bound drops below the compute bound
        crossings.append(remaining_radio / z_compute)
    for x in crossings:
        if not math.isfinite(x):
            continue
        x = min(max(x, float(r_latency)), float(r_upper))
        base = math.floor(x)
        for r in (base - 1, base, base + 1, base + 2):
            if r_latency <= r <= r_upper:
                candidates.add(r)
    return sorted(candidates)


def _best_admission_for_item(
    item: BranchItem,
    remaining_radio: float,
    remaining_compute: float,
    max_rbs: int,
) -> tuple[float, int]:
    """Largest feasible ``z`` (and its cheapest ``r``) for one item.

    Closed form: instead of enumerating every integer in
    ``[r_latency, r_upper]`` (O(R) per item), scan only the O(1)
    candidate counts where the admission bound can peak — the interval
    endpoints and the integers surrounding the crossings of the rate
    (1e), radio (1d) and compute (1c) bounds.  The scan applies the same
    update rule as the full enumeration (see
    :func:`_best_admission_for_item_reference`), so ties on ``z`` still
    prefer the smaller ``r``.
    """
    r_latency = item.min_latency_rbs()
    if r_latency > max_rbs:
        return 0.0, 0
    rate_bits = item.task.request_rate * item.path.bits_per_image
    compute_per_unit_z = item.task.request_rate * item.compute_time_s
    z_compute = (
        1.0
        if compute_per_unit_z <= 0
        else min(1.0, remaining_compute / compute_per_unit_z)
    )
    if z_compute <= 0:
        return 0.0, 0

    best_z, best_r = 0.0, 0
    r_upper = min(max_rbs, max(r_latency, item.min_rate_rbs(1.0)))
    for r in _candidate_rbs(
        r_latency, r_upper, rate_bits, item.bits_per_rb, remaining_radio, z_compute
    ):
        z_rate = min(1.0, r * item.bits_per_rb / rate_bits) if rate_bits > 0 else 1.0
        z_radio = min(1.0, remaining_radio / r) if r > 0 else 1.0
        z = min(z_rate, z_radio, z_compute)
        if z > best_z + _SCAN_EPS:
            best_z, best_r = z, r
    if best_z <= 1e-9:
        return 0.0, 0
    return best_z, best_r


def _best_admission_for_item_reference(
    item: BranchItem,
    remaining_radio: float,
    remaining_compute: float,
    max_rbs: int,
) -> tuple[float, int]:
    """The original O(R) enumeration, kept as the parity oracle.

    The tests assert :func:`_best_admission_for_item` returns exactly
    the same ``(z, r)`` pair across randomized items and pool states.
    """
    r_latency = item.min_latency_rbs()
    if r_latency > max_rbs:
        return 0.0, 0
    rate_bits = item.task.request_rate * item.path.bits_per_image
    compute_per_unit_z = item.task.request_rate * item.compute_time_s
    z_compute = (
        1.0
        if compute_per_unit_z <= 0
        else min(1.0, remaining_compute / compute_per_unit_z)
    )
    if z_compute <= 0:
        return 0.0, 0

    best_z, best_r = 0.0, 0
    r_upper = min(max_rbs, max(r_latency, item.min_rate_rbs(1.0)))
    for r in range(r_latency, r_upper + 1):
        z_rate = min(1.0, r * item.bits_per_rb / rate_bits) if rate_bits > 0 else 1.0
        z_radio = min(1.0, remaining_radio / r) if r > 0 else 1.0
        z = min(z_rate, z_radio, z_compute)
        if z > best_z + _SCAN_EPS:
            best_z, best_r = z, r
    if best_z <= 1e-9:
        return 0.0, 0
    return best_z, best_r


def solve_branch(
    items: list[BranchItem],
    budgets: Budgets,
    admission_floor: float = 1e-6,
) -> BranchAllocation:
    """Exact structured solver (see module docstring).

    ``items`` must be in descending priority order — the branch order of
    the weighted tree.  An item that cannot obtain an admission ratio of
    at least ``admission_floor`` is rejected outright (``z = 0``), which
    releases its radio and compute demand for lower-priority tasks and
    lets the caller drop its otherwise-unused blocks.
    """
    tracer = current_tracer()
    start = tracer.clock() if tracer.enabled else 0.0
    remaining_radio = float(budgets.radio_blocks)
    remaining_compute = float(budgets.compute_time_s)
    admission: list[float] = []
    rbs: list[int] = []
    for item in items:
        z, r = _best_admission_for_item(
            item, remaining_radio, remaining_compute, budgets.radio_blocks
        )
        if z < admission_floor:
            admission.append(0.0)
            rbs.append(0)
            continue
        admission.append(z)
        rbs.append(r)
        remaining_radio -= z * r
        remaining_compute -= z * item.task.request_rate * item.compute_time_s
    if tracer.enabled:
        tracer.record(
            "solver.water_fill",
            start,
            tracer.clock() - start,
            cat="solver",
            track="solver",
            args={"items": len(items)},
        )
    return BranchAllocation(admission=admission, radio_blocks=rbs)


def solve_branch_convex(
    items: list[BranchItem],
    budgets: Budgets,
    alpha: float,
    training_cost_s: float = 0.0,
) -> BranchAllocation:
    """SLSQP solve of the relaxed continuous subproblem.

    Minimizes the Eq. (1a) objective restricted to the branch (paths
    given, so the training term is a constant) over ``z ∈ [0, 1]`` and
    continuous ``r``, subject to (1c)-(1e) and (1g); the returned ``r``
    is rounded up to integers and ``z`` re-clipped to feasibility.

    Because Eq. (1a) rewards rejecting low-priority tasks whose resource
    cost exceeds ``α·p``, this solver can return lower admission than
    :func:`solve_branch`; it exists as the faithful "convex optimizer"
    variant and as a cross-check of the structured solver's feasibility.
    """
    from scipy.optimize import minimize  # local import: scipy is heavy

    n = len(items)
    if n == 0:
        return BranchAllocation(admission=[], radio_blocks=[])
    if budgets.radio_blocks <= 0 or budgets.compute_time_s <= 0:
        # zero-headroom instance (e.g. an exhausted online platform):
        # nothing can be admitted, and the normalized objective below
        # would divide by the zero budget
        return BranchAllocation(admission=[0.0] * n, radio_blocks=[0] * n)

    lam = np.array([it.task.request_rate for it in items])
    prio = np.array([it.task.priority for it in items])
    comp = np.array([it.compute_time_s for it in items])
    beta = np.array([it.path.bits_per_image for it in items])
    bpr = np.array([it.bits_per_rb for it in items])
    r_lat = np.array([it.min_latency_rbs() for it in items], dtype=float)
    r_cap = float(budgets.radio_blocks)

    infeasible = r_lat > r_cap

    def objective(xs: np.ndarray) -> float:
        z, r = xs[:n], xs[n:]
        rejection = float(((1.0 - z) * prio).sum())
        radio = float((z * lam * r).sum()) / budgets.radio_blocks
        inference = float((z * lam * comp).sum()) / budgets.compute_time_s
        training = training_cost_s / budgets.training_budget_s
        return alpha * rejection + (1 - alpha) * (training + radio + inference)

    constraints = [
        {  # (1d)
            "type": "ineq",
            "fun": lambda xs: budgets.radio_blocks - float((xs[:n] * xs[n:]).sum()),
        },
        {  # (1c)
            "type": "ineq",
            "fun": lambda xs: budgets.compute_time_s - float((xs[:n] * lam * comp).sum()),
        },
        {  # (1e) per task
            "type": "ineq",
            "fun": lambda xs: bpr * xs[n:] - xs[:n] * lam * beta,
        },
    ]
    bounds = [(0.0, 1.0)] * n + [
        (float(r_lat[i]) if not infeasible[i] else 0.0, r_cap) for i in range(n)
    ]
    x0 = np.concatenate([np.full(n, 0.5), np.maximum(r_lat, 1.0)])
    x0[n:] = np.minimum(x0[n:], r_cap)
    result = minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 300, "ftol": 1e-9},
    )
    z = np.clip(result.x[:n], 0.0, 1.0)
    r = np.ceil(result.x[n:] - 1e-9).astype(int)
    # re-clip to integer feasibility
    admission: list[float] = []
    rbs: list[int] = []
    remaining_radio = float(budgets.radio_blocks)
    remaining_compute = float(budgets.compute_time_s)
    for i, item in enumerate(items):
        if infeasible[i] or z[i] <= 1e-6:
            admission.append(0.0)
            rbs.append(0)
            continue
        ri = max(int(r[i]), item.min_latency_rbs())
        if ri <= 0:
            admission.append(0.0)
            rbs.append(0)
            continue
        rate_bits = lam[i] * beta[i]
        zi = min(
            z[i],
            # a zero-bits quality level (beta == 0) puts no load on the
            # slice, so the rate constraint (1e) never binds
            ri * item.bits_per_rb / rate_bits if rate_bits > 0 else 1.0,
            remaining_radio / ri,
            remaining_compute / (lam[i] * comp[i]) if comp[i] > 0 else 1.0,
        )
        zi = float(np.clip(zi, 0.0, 1.0))
        if zi <= 1e-6:
            admission.append(0.0)
            rbs.append(0)
            continue
        admission.append(zi)
        rbs.append(ri)
        remaining_radio -= zi * ri
        remaining_compute -= zi * lam[i] * comp[i]
    return BranchAllocation(admission=admission, radio_blocks=rbs)
