"""The OffloaDNN heuristic (Sec. IV-B).

OffloaDNN traverses the weighted tree from the root and, at every layer,
selects the *first* vertex of the clique — the feasible path with the
smallest inference compute time — whose incremental memory still fits
the budget.  The rationale: the total inference term of Eq. (1a) is
minimized when every task's compute time is minimal, and the clique
ordering makes that the leftmost branch.  The traversal is ``O(T²)``
(each layer scans at most one clique and block-set updates are bounded),
at the price of sub-optimality in the training-cost term, the trade-off
the paper's Fig. 8 documents.

After the branch is fixed, the admission ratios and RB allocations come
from the structured per-branch solver (:mod:`repro.core.subproblem`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import BranchItem, solve_branch
from repro.obs.trace import current_tracer
from repro.core.tree import (
    BranchState,
    SolutionTree,
    VectorTree,
    Vertex,
    build_tree,
    build_vector_tree,
)

__all__ = ["OffloaDNNSolver"]


@dataclass
class OffloaDNNSolver:
    """First-branch weighted-tree heuristic for the DOT problem.

    ``ordering`` selects how vertices are ranked within each clique:
    ``"compute"`` (the paper's inference-compute-time ordering),
    ``"memory"`` (incremental memory — an ablation) or ``"accuracy"``
    (highest accuracy first — another ablation).
    """

    #: minimum admission ratio below which a task is rejected outright
    admission_floor: float = 1e-6
    #: clique ordering criterion (see class docstring)
    ordering: str = "compute"
    #: number of (lexicographically first) branches to evaluate; 1 is the
    #: paper's first-branch rule, larger values trade runtime for cost
    explore_branches: int = 1
    #: extra RBs granted to each admitted slice (when the pool allows),
    #: providing headroom against channel fading — the minimal
    #: allocation runs slices at 100% utilization, which is unstable
    #: under any sustained throughput loss
    slice_margin_rbs: int = 0
    #: control-plane engine: ``"vector"`` runs the numpy-batched tree
    #: construction and selection (the scaled path), ``"scalar"`` the
    #: per-vertex reference, ``"auto"`` picks vector unless a pre-built
    #: scalar tree is supplied.  Both produce bit-identical solutions.
    engine: str = "auto"

    name: str = "OffloaDNN"

    def __post_init__(self) -> None:
        if self.ordering not in ("compute", "memory", "accuracy"):
            raise ValueError(f"unknown ordering {self.ordering!r}")
        if self.explore_branches < 1:
            raise ValueError("explore_branches must be >= 1")
        if self.slice_margin_rbs < 0:
            raise ValueError("slice_margin_rbs must be >= 0")
        if self.engine not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown engine {self.engine!r}")

    def solve(self, problem: DOTProblem, tree: SolutionTree | None = None) -> DOTSolution:
        """Solve ``problem``; optionally reuse a pre-built tree."""
        if tree is not None or self.engine == "scalar":
            build_start = time.perf_counter()
            prebuilt = tree is not None
            tree = tree if tree is not None else build_tree(problem)
            build_time = (
                tree.build_time_s
                if prebuilt
                else time.perf_counter() - build_start
            )
            return self._finish(problem, tree, build_time)
        vtree = build_vector_tree(problem)
        return self.solve_from_vector_tree(problem, vtree)

    def solve_from_vector_tree(
        self, problem: DOTProblem, vtree: VectorTree
    ) -> DOTSolution:
        """Solve on an already-built (possibly warm-started) vector tree."""
        if self.explore_branches > 1:
            # branch exploration runs on the legacy DFS; materializing
            # the Vertex tree is construction work, so it counts toward
            # the build time, not the solve time
            build_start = time.perf_counter()
            tree = vtree.materialize()
            build_time = vtree.build_time_s + (time.perf_counter() - build_start)
            return self._finish(problem, tree, build_time)
        start = time.perf_counter()
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("solver.select_branch", cat="solver", track="solver"):
                chosen = self._select_branch_vector(problem, vtree)
            with tracer.span("solver.allocate", cat="solver", track="solver"):
                solution = self._allocate(problem, chosen)
        else:
            chosen = self._select_branch_vector(problem, vtree)
            solution = self._allocate(problem, chosen)
        solution.solve_time_s = time.perf_counter() - start
        solution.tree_build_time_s = vtree.build_time_s
        solution.solver_name = self.name
        return solution

    def _finish(
        self, problem: DOTProblem, tree: SolutionTree, build_time: float
    ) -> DOTSolution:
        start = time.perf_counter()
        tracer = current_tracer()
        if self.explore_branches == 1:
            if tracer.enabled:
                with tracer.span("solver.select_branch", cat="solver", track="solver"):
                    chosen = self._select_branch(problem, tree)
                with tracer.span("solver.allocate", cat="solver", track="solver"):
                    solution = self._allocate(problem, chosen)
            else:
                chosen = self._select_branch(problem, tree)
                solution = self._allocate(problem, chosen)
        else:
            solution = self._solve_multi_branch(problem, tree)
        solution.solve_time_s = time.perf_counter() - start
        solution.tree_build_time_s = build_time
        solution.solver_name = self.name
        return solution

    def _select_branch_vector(
        self, problem: DOTProblem, vtree: VectorTree
    ) -> list[tuple[int, Vertex | None]]:
        """Vectorized twin of :meth:`_select_branch`.

        Per clique: mask radio-infeasible variants, compute every
        variant's incremental memory in one ``np.add.reduceat`` over the
        interned block table, and pick the first fitting variant under
        the configured ordering.  Only the chosen variant's ``Path`` is
        materialized, so a 10⁵-task solve allocates 10⁵ paths instead of
        millions of vertices.
        """
        radio_blocks = problem.budgets.radio_blocks
        memory_budget = problem.budgets.memory_gb
        block_mem = vtree.registry.block_memory()
        deployed = np.zeros(len(vtree.registry), dtype=bool)
        mem_used = 0.0
        chosen: list[tuple[int, Vertex | None]] = []
        for clique in vtree.cliques:
            feasible = np.flatnonzero(clique.min_latency_rbs <= radio_blocks)
            if feasible.size == 0:
                chosen.append((clique.task.task_id, None))
                continue
            rows = clique.block_rows
            contrib = np.where(deployed[rows], 0.0, block_mem[rows])
            # segments are never empty (a path has >= 1 block), so
            # reduceat's segment sums are well defined; numpy sums short
            # segments sequentially, matching the scalar accumulation
            inc_all = np.add.reduceat(contrib, clique.block_ptr[:-1])
            if self.ordering == "compute":
                candidates = feasible.tolist()
            elif self.ordering == "memory":
                candidates = sorted(
                    feasible.tolist(),
                    key=lambda i: (inc_all[i], clique.path_ids[i]),
                )
            else:
                candidates = sorted(
                    feasible.tolist(),
                    key=lambda i: (-clique.accuracy[i], clique.path_ids[i]),
                )
            pick = -1
            for i in candidates:
                if mem_used + inc_all[i] <= memory_budget + 1e-12:
                    pick = i
                    break
            if pick < 0:
                chosen.append((clique.task.task_id, None))
                continue
            # deploy: accumulate block by block, the scalar float order
            for b in clique.variant_blocks(pick):
                if not deployed[b]:
                    deployed[b] = True
                    mem_used += float(block_mem[b])
            vertex = Vertex(
                task=clique.task,
                path=clique.variant_path(pick),
                bits_per_rb=clique.bits_per_rb,
            )
            chosen.append((clique.task.task_id, vertex))
        return chosen

    def _solve_multi_branch(
        self, problem: DOTProblem, tree: SolutionTree
    ) -> DOTSolution:
        """Evaluate the first ``explore_branches`` feasible branches.

        Branches are enumerated in the tree's lexicographic (leftmost-
        first) order, so the first candidate is exactly the first-branch
        solution; any further candidate can only lower the Eq. (1a)
        cost.
        """
        from repro.core.objective import objective_value

        best: DOTSolution | None = None
        best_cost = float("inf")
        memory_budget = problem.budgets.memory_gb
        cliques = tree.cliques
        found = 0
        prefix: list[tuple[int, Vertex | None]] = []

        def dfs(layer: int, state: BranchState) -> None:
            nonlocal best, best_cost, found
            if found >= self.explore_branches:
                return
            if layer == len(cliques):
                found += 1
                candidate = self._allocate(problem, list(prefix))
                cost = objective_value(problem, candidate)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best = candidate
                return
            clique = cliques[layer]
            descended = False
            for vertex in self._ordered(clique.vertices, state):
                if found >= self.explore_branches:
                    return
                extra = state.incremental_memory(vertex)
                if state.memory_gb + extra > memory_budget + 1e-12:
                    continue
                descended = True
                prefix.append((clique.task.task_id, vertex))
                dfs(layer + 1, state.extend(vertex))
                prefix.pop()
            if not descended:
                prefix.append((clique.task.task_id, None))
                dfs(layer + 1, state)
                prefix.pop()

        dfs(0, BranchState())
        assert best is not None, "at least the first branch must be evaluated"
        return best

    def _select_branch(
        self, problem: DOTProblem, tree: SolutionTree
    ) -> list[tuple[int, Vertex | None]]:
        """Pick the leftmost memory-feasible vertex at every layer.

        Returns (task_id, vertex-or-None) in priority order; ``None``
        marks a task with no deployable path (rejected).
        """
        state = BranchState()
        chosen: list[tuple[int, Vertex | None]] = []
        memory_budget = problem.budgets.memory_gb
        for clique in tree.cliques:
            picked: Vertex | None = None
            for vertex in self._ordered(clique.vertices, state):
                if state.memory_gb + state.incremental_memory(vertex) <= memory_budget + 1e-12:
                    picked = vertex
                    break
            if picked is not None:
                state = state.extend(picked)
            chosen.append((clique.task.task_id, picked))
        return chosen

    def _apply_margin(self, problem: DOTProblem, allocation) -> None:
        """Grant up to ``slice_margin_rbs`` extra RBs per admitted task.

        Extra RBs are added one task at a time, in order, as long as the
        total ``Σ z·r`` stays within the pool — a leftover-spreading pass
        like SEM-O-RAN's balanced allocation, but bounded per task.
        """
        pool = float(problem.budgets.radio_blocks)
        used = sum(
            z * r for z, r in zip(allocation.admission, allocation.radio_blocks)
        )
        for _ in range(self.slice_margin_rbs):
            for index, z in enumerate(allocation.admission):
                if z <= 0:
                    continue
                if used + z <= pool + 1e-9:
                    allocation.radio_blocks[index] += 1
                    used += z

    def _ordered(self, vertices: list[Vertex], state: BranchState) -> list[Vertex]:
        """Apply the configured clique ordering.

        Cliques are pre-sorted by compute time, so the paper's ordering
        is a no-op; the ablation orderings re-rank against the current
        branch state.
        """
        if self.ordering == "compute":
            return vertices
        if self.ordering == "memory":
            return sorted(vertices, key=lambda v: (state.incremental_memory(v), v.path.path_id))
        return sorted(vertices, key=lambda v: (-v.accuracy, v.path.path_id))

    def _allocate(
        self, problem: DOTProblem, chosen: list[tuple[int, Vertex | None]]
    ) -> DOTSolution:
        """Run the per-branch (z, r) solver and assemble the solution."""
        placed = [(tid, v) for tid, v in chosen if v is not None]
        items = [
            BranchItem(task=v.task, path=v.path, bits_per_rb=v.bits_per_rb)
            for _, v in placed
        ]
        allocation = solve_branch(items, problem.budgets, self.admission_floor)
        if self.slice_margin_rbs > 0:
            self._apply_margin(problem, allocation)

        solution = DOTSolution()
        for (task_id, vertex), z, r in zip(
            placed, allocation.admission, allocation.radio_blocks
        ):
            assert vertex is not None
            solution.assignments[task_id] = Assignment(
                task=vertex.task,
                path=vertex.path,
                admission_ratio=z,
                radio_blocks=r,
            )
        rejected = [task_id for task_id, vertex in chosen if vertex is None]
        if rejected:
            # one O(T) index build instead of an O(T) scan per rejection
            tasks_by_id = {t.task_id: t for t in problem.tasks}
            for task_id in rejected:
                solution.assignments[task_id] = Assignment(
                    task=tasks_by_id[task_id],
                    path=None,
                    admission_ratio=0.0,
                    radio_blocks=0,
                )
        return solution
