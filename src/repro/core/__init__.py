"""The paper's primary contribution: the DOT problem and OffloaDNN solver.

* :mod:`repro.core.task` -- inference tasks and quality levels
* :mod:`repro.core.catalog` -- DNN blocks, paths and the repository catalog
* :mod:`repro.core.problem` -- DOT problem instance (budgets, radio, alpha)
* :mod:`repro.core.solution` -- solutions and per-task assignments
* :mod:`repro.core.objective` -- Eq. (1a) objective and (1b)-(1i) checks
* :mod:`repro.core.subproblem` -- per-branch convex (z, r) optimization
* :mod:`repro.core.tree` -- the weighted-tree model of the solution space
* :mod:`repro.core.heuristic` -- the OffloaDNN first-branch heuristic
* :mod:`repro.core.optimal` -- exhaustive branch enumeration (the optimum)
* :mod:`repro.core.nphard` -- knapsack reduction behind Proposition 1
"""

from repro.core.task import Task, QualityLevel
from repro.core.catalog import Block, Path, Catalog
from repro.core.problem import Budgets, DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.objective import objective_value, check_constraints
from repro.core.heuristic import OffloaDNNSolver
from repro.core.optimal import OptimalSolver
from repro.core.incremental import WarmStartSolver, discount_problem
from repro.core.aggregate import AggregateSolver, AggregationPlan, aggregate_problem
from repro.core.tree import VectorTree, build_vector_tree
from repro.core.serialize import dump_problem, dump_solution, load_problem, load_solution

__all__ = [
    "Task",
    "QualityLevel",
    "Block",
    "Path",
    "Catalog",
    "Budgets",
    "DOTProblem",
    "Assignment",
    "DOTSolution",
    "objective_value",
    "check_constraints",
    "OffloaDNNSolver",
    "OptimalSolver",
    "WarmStartSolver",
    "AggregateSolver",
    "AggregationPlan",
    "aggregate_problem",
    "VectorTree",
    "build_vector_tree",
    "discount_problem",
    "dump_problem",
    "dump_solution",
    "load_problem",
    "load_solution",
]
