"""The DOT objective (Eq. 1a) and constraint checks (Eq. 1b–1i).

The objective weights, by ``α``, the priority-weighted task rejection
term against a resource term composed of (i) the training cost of every
*active* block normalized by ``Ct`` (paid once per block regardless of
how many tasks share it), (ii) the admitted radio load ``z λ r / R``
and (iii) the admitted inference compute ``z λ Σc(s) / C``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Path
from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.task import Task

__all__ = [
    "end_to_end_latency",
    "transmission_time",
    "objective_value",
    "objective_breakdown",
    "ObjectiveBreakdown",
    "ConstraintReport",
    "check_constraints",
]


def transmission_time(path: Path, radio_blocks: int, bits_per_rb: float) -> float:
    """Networking latency: ``β(q) / (B(σ) · r)`` seconds."""
    if radio_blocks <= 0:
        return float("inf")
    return path.bits_per_image / (bits_per_rb * radio_blocks)


def end_to_end_latency(path: Path, radio_blocks: int, bits_per_rb: float) -> float:
    """``l_τ = β(q)/(B(σ)·r) + Σ_{s∈π} c(s)`` (Sec. III-A)."""
    return transmission_time(path, radio_blocks, bits_per_rb) + path.compute_time_s


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """The Eq. (1a) value split into its four terms."""

    rejection: float
    training: float
    radio: float
    inference: float
    alpha: float

    @property
    def total(self) -> float:
        return self.alpha * self.rejection + (1.0 - self.alpha) * (
            self.training + self.radio + self.inference
        )

    @property
    def resource(self) -> float:
        return self.training + self.radio + self.inference


def objective_breakdown(problem: DOTProblem, solution: DOTSolution) -> ObjectiveBreakdown:
    """Evaluate Eq. (1a) term by term."""
    budgets = problem.budgets
    rejection = sum(
        (1.0 - solution.assignment(task).admission_ratio) * task.priority
        for task in problem.tasks
    )
    training = solution.total_training_cost_s / budgets.training_budget_s
    # a zero-capacity pool admits nothing, so its normalized load term
    # is zero for any solver-produced solution; the inf fallback keeps
    # hand-built infeasible solutions from dividing by zero
    radio_cap = float(budgets.radio_blocks) or float("inf")
    compute_cap = budgets.compute_time_s or float("inf")
    radio = 0.0
    inference = 0.0
    for task in problem.tasks:
        assignment = solution.assignment(task)
        if not assignment.admitted:
            continue
        assert assignment.path is not None
        rate = assignment.admitted_rate
        radio += rate * assignment.radio_blocks / radio_cap
        inference += rate * assignment.path.compute_time_s / compute_cap
    return ObjectiveBreakdown(
        rejection=rejection,
        training=training,
        radio=radio,
        inference=inference,
        alpha=problem.alpha,
    )


def objective_value(problem: DOTProblem, solution: DOTSolution) -> float:
    """The Eq. (1a) objective value (lower is better)."""
    return objective_breakdown(problem, solution).total


@dataclass
class ConstraintReport:
    """Outcome of checking a solution against Eq. (1b)-(1g)."""

    memory_used_gb: float
    compute_used_s: float
    radio_used_blocks: float
    violations: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.violations


def _check_task(
    problem: DOTProblem,
    task: Task,
    assignment: Assignment,
    violations: list[str],
) -> None:
    if not assignment.admitted:
        return
    path = assignment.path
    assert path is not None
    bits_per_rb = problem.radio.bits_per_rb(task)
    # (1e) slice bandwidth must sustain the admitted input rate
    required = assignment.admitted_rate * path.bits_per_image
    available = bits_per_rb * assignment.radio_blocks
    if required > available * (1 + 1e-9):
        violations.append(
            f"task {task.task_id}: rate needs {required:.0f} b/s "
            f"but slice carries {available:.0f} b/s (1e)"
        )
    # (1f) accuracy
    if path.effective_accuracy < task.min_accuracy - 1e-9:
        violations.append(
            f"task {task.task_id}: accuracy {path.effective_accuracy:.3f} "
            f"< required {task.min_accuracy:.3f} (1f)"
        )
    # (1g) end-to-end latency
    latency = end_to_end_latency(path, assignment.radio_blocks, bits_per_rb)
    if latency > task.max_latency_s * (1 + 1e-9):
        violations.append(
            f"task {task.task_id}: latency {latency * 1e3:.1f} ms "
            f"> limit {task.max_latency_s * 1e3:.1f} ms (1g)"
        )


def check_constraints(problem: DOTProblem, solution: DOTSolution) -> ConstraintReport:
    """Verify Eq. (1b)-(1g); (1h)/(1i) hold by construction because
    ``m(s)`` is derived from the admitted paths."""
    violations: list[str] = []
    missing = [t.task_id for t in problem.tasks if t.task_id not in solution.assignments]
    if missing:
        violations.append(f"tasks without an assignment: {missing}")

    memory = solution.total_memory_gb
    compute = solution.total_inference_compute_s
    radio = solution.total_radio_blocks

    if memory > problem.budgets.memory_gb * (1 + 1e-9):
        violations.append(
            f"memory {memory:.3f} GB exceeds budget {problem.budgets.memory_gb} GB (1b)"
        )
    if compute > problem.budgets.compute_time_s * (1 + 1e-9):
        violations.append(
            f"compute {compute:.3f} s exceeds budget {problem.budgets.compute_time_s} s (1c)"
        )
    if radio > problem.budgets.radio_blocks * (1 + 1e-9):
        violations.append(
            f"radio {radio:.2f} RBs exceeds budget {problem.budgets.radio_blocks} (1d)"
        )
    for task in problem.tasks:
        if task.task_id in solution.assignments:
            _check_task(problem, task, solution.assignment(task), violations)

    return ConstraintReport(
        memory_used_gb=memory,
        compute_used_s=compute,
        radio_used_blocks=radio,
        violations=violations,
    )
