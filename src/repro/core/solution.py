"""Solutions of the DOT problem.

A solution assigns each task a path (``x``/``y`` in the formulation), an
admission ratio ``z ∈ [0, 1]`` and a radio allocation ``r`` (RBs).  A
rejected task has ``z = 0``; its path, if any, deploys no blocks
(``m(s)`` auxiliary variables are derived from the admitted set only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Block, Path
from repro.core.task import Task

__all__ = ["Assignment", "DOTSolution"]


@dataclass(frozen=True)
class Assignment:
    """Decision for one task."""

    task: Task
    #: selected DNN path, or None when the task was never placed
    path: Path | None
    #: admission ratio ``z_τ``
    admission_ratio: float
    #: number of radio resource blocks ``r_τ``
    radio_blocks: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.admission_ratio <= 1.0:
            raise ValueError("admission ratio must be in [0, 1]")
        if self.radio_blocks < 0:
            raise ValueError("radio_blocks must be >= 0")
        if self.admitted and self.path is None:
            raise ValueError("an admitted task needs a path")

    @property
    def admitted(self) -> bool:
        return self.admission_ratio > 0.0

    @property
    def admitted_rate(self) -> float:
        """``z_τ * λ_τ`` requests per second actually served."""
        return self.admission_ratio * self.task.request_rate


@dataclass
class DOTSolution:
    """A complete solution: one assignment per task."""

    assignments: dict[int, Assignment] = field(default_factory=dict)
    #: wall-clock seconds of selection + allocation, excluding tree
    #: construction — uniform whether the solver built the tree itself
    #: or was handed a pre-built one
    solve_time_s: float = 0.0
    #: wall-clock seconds spent building the solution tree (0 for
    #: solvers that use none, e.g. SEM-O-RAN)
    tree_build_time_s: float = 0.0
    solver_name: str = ""

    @property
    def total_time_s(self) -> float:
        """End-to-end solver time (tree build + solve) — Fig. 6 input."""
        return self.tree_build_time_s + self.solve_time_s

    def assignment(self, task: Task | int) -> Assignment:
        task_id = task.task_id if isinstance(task, Task) else task
        return self.assignments[task_id]

    def admitted_assignments(self) -> list[Assignment]:
        return [a for a in self.assignments.values() if a.admitted]

    def active_blocks(self) -> dict[str, Block]:
        """Blocks used by at least one admitted task (``m(s) = 1``)."""
        blocks: dict[str, Block] = {}
        for assignment in self.admitted_assignments():
            assert assignment.path is not None
            for block in assignment.path.blocks:
                blocks.setdefault(block.block_id, block)
        return blocks

    # ------------------------------------------------------------------
    # Aggregate metrics (consumed by the evaluation figures)
    # ------------------------------------------------------------------

    @property
    def total_memory_gb(self) -> float:
        """Memory of active blocks, shared blocks counted once (1b LHS)."""
        return sum(b.memory_gb for b in self.active_blocks().values())

    @property
    def total_training_cost_s(self) -> float:
        """Training cost of active blocks, paid once per block."""
        return sum(b.training_cost_s for b in self.active_blocks().values())

    @property
    def total_inference_compute_s(self) -> float:
        """``Σ_τ z_τ λ_τ Σ_{s∈π_τ} c(s)`` (1c LHS)."""
        total = 0.0
        for assignment in self.admitted_assignments():
            assert assignment.path is not None
            total += assignment.admitted_rate * assignment.path.compute_time_s
        return total

    @property
    def total_radio_blocks(self) -> float:
        """``Σ_τ z_τ r_τ`` (1d LHS)."""
        return sum(
            a.admission_ratio * a.radio_blocks for a in self.assignments.values()
        )

    @property
    def weighted_admission_ratio(self) -> float:
        """``Σ_τ z_τ p_τ`` — the Fig. 8/10 left-panel metric."""
        return sum(
            a.admission_ratio * a.task.priority for a in self.assignments.values()
        )

    @property
    def admitted_task_count(self) -> int:
        return len(self.admitted_assignments())

    def admission_vector(self) -> dict[int, float]:
        """Task id -> admission ratio (the Fig. 9 series)."""
        return {tid: a.admission_ratio for tid, a in self.assignments.items()}
