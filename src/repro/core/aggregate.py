"""Task aggregation: the 10⁴–10⁶-user control plane.

At metro scale most admission requests are *replicas*: thousands of
devices running the same CV method with the same accuracy/latency class,
the same quality set and the same per-RB capacity.  The DOT decision for
two such tasks is interchangeable — they see the same candidate paths
and the same constraints — so the control plane need not carry one tree
clique per device.

:func:`aggregate_problem` groups the tasks of a DOT instance by their
*decision signature* and builds a meta-problem over one representative
per group.  :class:`AggregateSolver` then

1. runs the vectorized first-branch selection on the meta-problem
   (path/quality choice is per *group*, which is exact: every member
   would pick the same variant);
2. replays the admission cascade over the group weights: each round
   computes one member's ``(z, r)`` against the live pools with the
   closed-form subproblem and assigns it to as many remaining members
   as the pools allow in one subtraction.  A pool-bound member yields a
   run of one, so the replay degrades to the per-task cascade exactly
   where it matters and stays O(#groups) everywhere else;
3. expands back to per-task assignments (members in ascending task-id
   order, all sharing the representative's chosen ``Path`` object).

The expansion is feasibility-preserving by construction; it is *not*
promised bit-identical to the per-task scalar solve when distinct
groups share a priority level (the scalar cascade would interleave
their members by task id, the replay keeps groups contiguous).  The
test suite checks feasibility and admission-equivalence instead.

Grouping keys on the *identity* of the candidate-path tuple
(``id(paths)``), not its value: two tasks are poolable only when they
share the very same catalog entry, which is how the replicated
workloads are built (see :mod:`repro.workloads.largescale`) and the
only case where equality is O(1) at 10⁶ tasks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.catalog import Catalog, Path
from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import BranchItem, _best_admission_for_item
from repro.core.task import Task
from repro.core.tree import build_vector_tree
from repro.obs.trace import current_tracer

__all__ = ["TaskGroup", "AggregationPlan", "aggregate_problem", "AggregateSolver"]


@dataclass(frozen=True)
class TaskGroup:
    """Tasks sharing one decision signature."""

    representative: Task
    #: member task ids, ascending (includes the representative)
    member_ids: tuple[int, ...]

    @property
    def weight(self) -> int:
        return len(self.member_ids)


@dataclass(frozen=True)
class AggregationPlan:
    """The meta-problem plus the bookkeeping to expand its solution."""

    problem: DOTProblem
    meta_problem: DOTProblem
    #: representative task id -> group
    groups: dict[int, TaskGroup]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def compression(self) -> float:
        """Tasks per meta-task (1.0 = no aggregation happened)."""
        return len(self.problem.tasks) / max(1, len(self.groups))


def _signature(task: Task, paths: tuple[Path, ...], bits_per_rb: float):
    return (
        id(paths),
        task.method,
        task.priority,
        task.request_rate,
        task.min_accuracy,
        task.max_latency_s,
        task.qualities,
        bits_per_rb,
    )


def aggregate_problem(problem: DOTProblem) -> AggregationPlan:
    """Group interchangeable tasks into a meta-problem of representatives."""
    buckets: dict[tuple, list[Task]] = {}
    for task in problem.tasks_by_priority():
        paths = problem.catalog.paths_for(task)
        sig = _signature(task, paths, problem.radio.bits_per_rb(task))
        buckets.setdefault(sig, []).append(task)

    reps: list[Task] = []
    groups: dict[int, TaskGroup] = {}
    meta_catalog = Catalog()
    for members in buckets.values():
        # tasks_by_priority breaks ties by ascending task id, so the
        # first member is the group's canonical representative and
        # member_ids are already sorted
        rep = members[0]
        reps.append(rep)
        # assign the shared tuple directly to keep its identity (the
        # warm-start cache and re-aggregation key on it)
        meta_catalog.paths_by_task[rep.task_id] = problem.catalog.paths_for(rep)
        groups[rep.task_id] = TaskGroup(
            representative=rep,
            member_ids=tuple(t.task_id for t in members),
        )
    meta_problem = DOTProblem(
        tasks=tuple(reps),
        catalog=meta_catalog,
        budgets=problem.budgets,
        radio=problem.radio,
        alpha=problem.alpha,
    )
    return AggregationPlan(problem=problem, meta_problem=meta_problem, groups=groups)


@dataclass
class AggregateSolver:
    """OffloaDNN over meta-tasks, expanded to per-task assignments.

    Wraps a first-branch :class:`OffloaDNNSolver` (``explore_branches``
    must be 1 and ``slice_margin_rbs`` 0 — branch exploration and margin
    spreading are defined on per-task cascades, not weighted replays).
    """

    base: OffloaDNNSolver = field(default_factory=OffloaDNNSolver)
    name: str = "OffloaDNN-aggregated"
    #: plan of the most recent solve, for inspection
    last_plan: AggregationPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.base.explore_branches != 1:
            raise ValueError("aggregation requires explore_branches == 1")
        if self.base.slice_margin_rbs != 0:
            raise ValueError("aggregation requires slice_margin_rbs == 0")

    def solve(self, problem: DOTProblem) -> DOTSolution:
        build_start = time.perf_counter()
        plan = aggregate_problem(problem)
        self.last_plan = plan
        vtree = build_vector_tree(plan.meta_problem)
        build_time = time.perf_counter() - build_start

        start = time.perf_counter()
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("solver.select_branch", cat="solver", track="solver"):
                chosen = self.base._select_branch_vector(plan.meta_problem, vtree)
            with tracer.span("solver.allocate", cat="solver", track="solver"):
                solution = self._allocate_groups(problem, plan, chosen)
        else:
            chosen = self.base._select_branch_vector(plan.meta_problem, vtree)
            solution = self._allocate_groups(problem, plan, chosen)
        solution.solve_time_s = time.perf_counter() - start
        solution.tree_build_time_s = build_time
        solution.solver_name = self.name
        return solution

    def _allocate_groups(
        self,
        problem: DOTProblem,
        plan: AggregationPlan,
        chosen: list[tuple[int, object]],
    ) -> DOTSolution:
        budgets = problem.budgets
        floor_z = self.base.admission_floor
        remaining_radio = float(budgets.radio_blocks)
        remaining_compute = float(budgets.compute_time_s)
        tasks_by_id = {t.task_id: t for t in problem.tasks}
        solution = DOTSolution()
        for rep_id, vertex in chosen:
            group = plan.groups[rep_id]
            members = group.member_ids
            if vertex is None:
                for member_id in members:
                    solution.assignments[member_id] = Assignment(
                        task=tasks_by_id[member_id],
                        path=None,
                        admission_ratio=0.0,
                        radio_blocks=0,
                    )
                continue
            item = BranchItem(
                task=vertex.task, path=vertex.path, bits_per_rb=vertex.bits_per_rb
            )
            compute_per_z = vertex.task.request_rate * vertex.path.compute_time_s
            index = 0
            while index < len(members):
                z, r = _best_admission_for_item(
                    item, remaining_radio, remaining_compute, budgets.radio_blocks
                )
                if z < floor_z:
                    break
                radio_demand = z * r
                compute_demand = z * compute_per_z
                run = len(members) - index
                if radio_demand > 0:
                    run = min(
                        run, math.floor(remaining_radio / radio_demand + 1e-9)
                    )
                if compute_demand > 0:
                    run = min(
                        run, math.floor(remaining_compute / compute_demand + 1e-9)
                    )
                # the member the closed form was computed for always fits
                run = max(1, run)
                for member_id in members[index : index + run]:
                    solution.assignments[member_id] = Assignment(
                        task=tasks_by_id[member_id],
                        path=vertex.path,
                        admission_ratio=z,
                        radio_blocks=r,
                    )
                remaining_radio = max(0.0, remaining_radio - run * radio_demand)
                remaining_compute = max(
                    0.0, remaining_compute - run * compute_demand
                )
                index += run
            for member_id in members[index:]:
                solution.assignments[member_id] = Assignment(
                    task=tasks_by_id[member_id],
                    path=None,
                    admission_ratio=0.0,
                    radio_blocks=0,
                )
        return solution
