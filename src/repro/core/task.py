"""Inference tasks and quality levels (Sec. III-A).

A task ``τ`` is a CV method (e.g. image classification) applied to the
image stream of one or more mobile devices, with a request rate ``λ_τ``,
a priority ``p_τ ∈ [0, 1]``, a minimum accuracy ``A_τ`` and a maximum
end-to-end latency ``L_τ``.  The task context fixes a quality level
``q_τ`` which determines the number of bits per offloaded image
``β(q_τ)`` and influences the attainable accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QualityLevel", "Task"]


@dataclass(frozen=True)
class QualityLevel:
    """Input-data quality level ``q ∈ Q_τ``.

    ``bits_per_image`` is ``β(q)``; ``accuracy_factor`` multiplies the
    accuracy a DNN path attains on full-quality input (semantic
    compression trades bits for accuracy, the SEM-O-RAN mechanism).
    ``bits_per_image == 0`` is legal and models inputs already present
    at the edge (cached or pre-staged frames): such a task consumes no
    slice bandwidth beyond its 1-RB control minimum.
    """

    name: str
    bits_per_image: float
    accuracy_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.bits_per_image < 0:
            raise ValueError("bits_per_image must be >= 0")
        if not 0.0 < self.accuracy_factor <= 1.0:
            raise ValueError("accuracy_factor must be in (0, 1]")


#: Default quality: the paper's fixed 350 Kb per image (Table IV).
DEFAULT_QUALITY = QualityLevel(name="full", bits_per_image=350_000.0)


@dataclass(frozen=True)
class Task:
    """One offloadable inference task ``τ ∈ T``."""

    task_id: int
    name: str
    #: CV method implemented by the DNNs, e.g. "classification"
    method: str
    #: priority ``p_τ``: 0 lowest .. 1 highest
    priority: float
    #: request rate ``λ_τ`` in requests per second
    request_rate: float
    #: minimum tolerable accuracy ``A_τ`` (e.g. top-1)
    min_accuracy: float
    #: maximum tolerable end-to-end latency ``L_τ`` in seconds
    max_latency_s: float
    #: possible data quality levels ``Q_τ``
    qualities: tuple[QualityLevel, ...] = field(default=(DEFAULT_QUALITY,))
    #: average SINR ``σ_τ`` (dB) of the devices offloading this task
    sinr_db: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.priority <= 1.0:
            raise ValueError(f"priority must be in [0, 1], got {self.priority}")
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if not 0.0 <= self.min_accuracy <= 1.0:
            raise ValueError("min_accuracy must be in [0, 1]")
        if self.max_latency_s <= 0:
            raise ValueError("max_latency_s must be positive")
        if not self.qualities:
            raise ValueError("a task needs at least one quality level")

    @property
    def default_quality(self) -> QualityLevel:
        """The highest-fidelity quality level."""
        return max(self.qualities, key=lambda q: q.accuracy_factor)
