"""DOT problem instances (Sec. III-B).

Bundles the tasks, the DNN catalog, the edge resource budgets, the radio
model and the objective weight ``α`` into one immutable description that
solvers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Catalog
from repro.core.task import Task

__all__ = ["Budgets", "RadioModel", "DOTProblem"]


@dataclass(frozen=True)
class Budgets:
    """Edge and radio capacity limits.

    Compute, memory and radio capacities may be zero: a zero-headroom
    instance describes a momentarily exhausted platform (the online
    churn case), and every solver then rejects all tasks rather than
    the caller having to special-case it.  The training normalizer
    ``Ct`` stays strictly positive because it divides the objective.
    """

    #: available inference compute time ``C`` (device-seconds per second)
    compute_time_s: float
    #: full-DNN training cost normalizer ``Ct`` (device-seconds)
    training_budget_s: float
    #: available memory ``M`` in GB (RAM/VRAM)
    memory_gb: float
    #: available radio resource blocks ``R``
    radio_blocks: int

    def __post_init__(self) -> None:
        if self.compute_time_s < 0:
            raise ValueError("compute budget must be >= 0")
        if self.training_budget_s <= 0:
            raise ValueError("training budget must be positive")
        if self.memory_gb < 0:
            raise ValueError("memory budget must be >= 0")
        if self.radio_blocks < 0:
            raise ValueError("radio budget must be >= 0")


@dataclass(frozen=True)
class RadioModel:
    """Maps a task's channel state to the RB capacity ``B(σ_τ)``.

    The default reproduces Table IV: every RB carries 0.35 Mbps
    regardless of SINR.  :mod:`repro.radio.phy` provides an SINR-driven
    alternative built on a CQI/MCS table.
    """

    default_bits_per_rb: float = 350_000.0
    per_task_bits_per_rb: dict[int, float] = field(default_factory=dict)

    def bits_per_rb(self, task: Task) -> float:
        """``B(σ_τ)`` in bits/s carried by one RB for this task."""
        return self.per_task_bits_per_rb.get(task.task_id, self.default_bits_per_rb)


@dataclass(frozen=True)
class DOTProblem:
    """One instance of the DNNs-for-scalable-Offloading-of-Tasks problem."""

    tasks: tuple[Task, ...]
    catalog: Catalog
    budgets: Budgets
    radio: RadioModel = field(default_factory=RadioModel)
    #: objective weight between task rejection and resource consumption
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a problem needs at least one task")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")
        self.catalog.validate(self.tasks)

    def tasks_by_priority(self) -> tuple[Task, ...]:
        """Tasks in descending priority order (ties by id for determinism)."""
        return tuple(sorted(self.tasks, key=lambda t: (-t.priority, t.task_id)))

    def task(self, task_id: int) -> Task:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)
