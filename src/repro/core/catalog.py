"""DNN blocks, paths, and the repository catalog (Sec. III-A).

A *dynamic DNN structure* ``d ∈ D`` is built from blocks ``s^d ∈ S^d``
(one or more layers, possibly pruned by an arbitrary factor).  The
sequence of blocks serving task ``τ`` is a *path* ``π^d_τ ∈ Π^d_τ``.
Two paths that contain the same block (same ``block_id``) share its
memory and its training cost — the central coupling the DOT problem
optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.task import QualityLevel, Task

__all__ = ["Block", "Path", "Catalog"]


@dataclass(frozen=True)
class Block:
    """A DNN block ``s^d`` with its experimentally derived costs.

    Blocks with equal ``block_id`` are *the same* block: deploying it
    once serves every path that contains it (memory counted once,
    training paid once).
    """

    block_id: str
    #: the dynamic DNN structure this block belongs to
    dnn_id: str
    #: inference compute time ``c(s)`` in seconds, per request
    compute_time_s: float
    #: memory ``mu(s)`` in GB while deployed
    memory_gb: float
    #: training / fine-tuning cost ``ct(s)`` in device-seconds
    #: (0 for pretrained blocks inherited from the base DNN)
    training_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_time_s < 0:
            raise ValueError("compute_time_s must be >= 0")
        if self.memory_gb < 0:
            raise ValueError("memory_gb must be >= 0")
        if self.training_cost_s < 0:
            raise ValueError("training_cost_s must be >= 0")


@dataclass(frozen=True)
class Path:
    """A path ``π^d_τ``: the block sequence serving one task.

    ``accuracy`` is the experimentally derived accuracy the path attains
    for its task on full-quality input; the effective accuracy under a
    quality level ``q`` is ``accuracy * q.accuracy_factor``.
    """

    path_id: str
    dnn_id: str
    task_id: int
    blocks: tuple[Block, ...]
    accuracy: float
    quality: QualityLevel

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a path needs at least one block")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        # Note: a dynamic DNN structure may compose blocks inherited from
        # the shared base DNN with task-specific blocks, so a path's
        # blocks may carry different provenance (``dnn_id``) than the
        # composed structure itself.

    @property
    def compute_time_s(self) -> float:
        """Per-inference processing time ``Σ_{s∈π} c(s)``."""
        return sum(b.compute_time_s for b in self.blocks)

    @property
    def effective_accuracy(self) -> float:
        """Accuracy after the quality level's semantic compression."""
        return self.accuracy * self.quality.accuracy_factor

    @property
    def bits_per_image(self) -> float:
        """``β(q_τ)`` of the path's quality level."""
        return self.quality.bits_per_image

    def block_ids(self) -> frozenset[str]:
        return frozenset(b.block_id for b in self.blocks)


@dataclass
class Catalog:
    """The DNN repository: candidate paths per task.

    ``paths_by_task[task_id]`` lists every path (over every DNN ``d``)
    that can execute the task — the union of the ``Π^d_τ`` sets.
    """

    paths_by_task: dict[int, tuple[Path, ...]] = field(default_factory=dict)

    def add_path(self, path: Path) -> None:
        existing = self.paths_by_task.get(path.task_id, ())
        if any(p.path_id == path.path_id for p in existing):
            raise ValueError(f"duplicate path_id {path.path_id!r} for task {path.task_id}")
        self.paths_by_task[path.task_id] = existing + (path,)

    def paths_for(self, task: Task | int) -> tuple[Path, ...]:
        task_id = task.task_id if isinstance(task, Task) else task
        return self.paths_by_task.get(task_id, ())

    def all_blocks(self) -> dict[str, Block]:
        """Every distinct block in the catalog, keyed by ``block_id``."""
        blocks: dict[str, Block] = {}
        # replicated workloads map many task ids to the *same* path
        # tuple; scanning it once keeps validation O(distinct paths)
        # instead of O(tasks x paths) at 10^6 tasks
        seen_tuples: set[int] = set()
        for paths in self.paths_by_task.values():
            if id(paths) in seen_tuples:
                continue
            seen_tuples.add(id(paths))
            for path in paths:
                for block in path.blocks:
                    known = blocks.setdefault(block.block_id, block)
                    if known != block:
                        raise ValueError(
                            f"block_id {block.block_id!r} bound to inconsistent costs"
                        )
        return blocks

    def dnn_ids(self) -> frozenset[str]:
        return frozenset(
            p.dnn_id for paths in self.paths_by_task.values() for p in paths
        )

    def validate(self, tasks: tuple[Task, ...]) -> None:
        """Check every task has candidates and block costs are coherent."""
        self.all_blocks()  # raises on inconsistency
        missing = [t.task_id for t in tasks if not self.paths_for(t)]
        if missing:
            raise ValueError(f"tasks without candidate paths: {missing}")
