"""Exhaustive branch enumeration — the DOT optimum benchmark (Sec. IV-B).

Traverses *every* branch of the weighted tree with a depth-first search,
halting a branch as soon as its cumulative memory exceeds ``M`` (the
paper's pruning rule), solving the per-branch ``(z, r)`` subproblem at
each leaf, and returning the branch with the least Eq. (1a) cost.

Complexity is ``O(N_max^T · T²)`` — practical only for small scenarios,
which is exactly the Fig. 6 comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.objective import objective_value
from repro.core.problem import DOTProblem
from repro.core.solution import Assignment, DOTSolution
from repro.core.subproblem import BranchItem, solve_branch
from repro.core.tree import BranchState, SolutionTree, Vertex, build_tree

__all__ = ["OptimalSolver"]


@dataclass
class OptimalSolver:
    """Exact solver by full tree traversal.

    ``allow_reject`` adds an explicit "serve no path" option per layer;
    the paper's tree does not include it (rejection emerges from
    ``z = 0`` in the subproblem), so it defaults to off.  ``max_branches``
    guards against accidentally launching astronomically large searches.
    """

    allow_reject: bool = False
    max_branches: int = 20_000_000
    admission_floor: float = 1e-6
    name: str = "Optimum"

    def solve(self, problem: DOTProblem, tree: SolutionTree | None = None) -> DOTSolution:
        build_start = time.perf_counter()
        prebuilt = tree is not None
        tree = tree if tree is not None else build_tree(problem)
        build_time = (
            tree.build_time_s if prebuilt else time.perf_counter() - build_start
        )
        start = time.perf_counter()
        bound = tree.num_branches()
        if self.allow_reject:
            bound = 1
            for clique in tree.cliques:
                bound *= len(clique.vertices) + 1
        if bound > self.max_branches:
            raise ValueError(
                f"tree has ~{bound} branches, above the max_branches guard "
                f"({self.max_branches}); use the OffloaDNN heuristic instead"
            )

        best_solution: DOTSolution | None = None
        best_cost = float("inf")
        branches_explored = 0

        cliques = tree.cliques
        memory_budget = problem.budgets.memory_gb
        prefix: list[Vertex | None] = []

        def dfs(layer: int, state: BranchState) -> None:
            nonlocal best_solution, best_cost, branches_explored
            if layer == len(cliques):
                branches_explored += 1
                candidate = self._evaluate_leaf(problem, cliques, prefix)
                cost = objective_value(problem, candidate)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_solution = candidate
                return
            clique = cliques[layer]
            descended = False
            for vertex in clique.vertices:
                extra = state.incremental_memory(vertex)
                if state.memory_gb + extra > memory_budget + 1e-12:
                    continue  # halt this branch (memory pruning)
                descended = True
                prefix.append(vertex)
                dfs(layer + 1, state.extend(vertex))
                prefix.pop()
            # Skip the task when rejection is explicitly explored, or
            # when no vertex fits the remaining memory (otherwise the
            # whole subtree would dead-end and lower-priority tasks
            # could never be placed).
            if self.allow_reject or not descended:
                prefix.append(None)
                dfs(layer + 1, state)
                prefix.pop()

        dfs(0, BranchState())
        if best_solution is None:
            # every branch was memory-infeasible: reject everything
            best_solution = DOTSolution(
                assignments={
                    t.task_id: Assignment(
                        task=t, path=None, admission_ratio=0.0, radio_blocks=0
                    )
                    for t in problem.tasks
                }
            )
        best_solution.solve_time_s = time.perf_counter() - start
        best_solution.tree_build_time_s = build_time
        best_solution.solver_name = self.name
        best_solution.branches_explored = branches_explored  # type: ignore[attr-defined]
        return best_solution

    def _evaluate_leaf(
        self,
        problem: DOTProblem,
        cliques,
        prefix: list[Vertex | None],
    ) -> DOTSolution:
        placed = [v for v in prefix if v is not None]
        items = [
            BranchItem(task=v.task, path=v.path, bits_per_rb=v.bits_per_rb)
            for v in placed
        ]
        allocation = solve_branch(items, problem.budgets, self.admission_floor)
        solution = DOTSolution()
        for vertex, z, r in zip(placed, allocation.admission, allocation.radio_blocks):
            solution.assignments[vertex.task.task_id] = Assignment(
                task=vertex.task,
                path=vertex.path,
                admission_ratio=z,
                radio_blocks=r,
            )
        for clique, vertex in zip(cliques, prefix):
            if vertex is None:
                task = clique.task
                solution.assignments[task.task_id] = Assignment(
                    task=task, path=None, admission_ratio=0.0, radio_blocks=0
                )
        return solution
