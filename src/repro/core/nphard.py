"""NP-hardness machinery behind Proposition 1.

The paper proves DOT NP-hard by reduction from the binary
multi-dimensional knapsack problem (MDK).  This module makes the
argument executable:

* an exact MDK solver (branch and bound with a fractional upper bound),
* the polynomial reduction from 0/1 knapsack instances to DOT instances
  (:func:`knapsack_to_dot`), using the *memory* dimension — the one DOT
  resource that is consumed binarily (a block's memory is paid in full
  whenever any admitted task uses it, regardless of the admission
  ratio), which is what makes admission combinatorial.

Tests verify that solving the reduced DOT instance to optimality with
explicit rejection recovers the knapsack optimum, i.e. the reduction is
answer-preserving on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.catalog import Block, Catalog, Path
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task

__all__ = ["KnapsackInstance", "solve_mdk", "knapsack_to_dot", "dot_solution_to_selection"]


@dataclass(frozen=True)
class KnapsackInstance:
    """Binary multi-dimensional knapsack: max value, weights <= capacity."""

    values: tuple[float, ...]
    #: weights[i][k] — weight of item i in dimension k
    weights: tuple[tuple[float, ...], ...]
    capacities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ValueError("values and weights disagree on item count")
        dims = {len(w) for w in self.weights}
        if dims and dims != {len(self.capacities)}:
            raise ValueError("weight vectors must match capacity dimensions")
        if any(v < 0 for v in self.values):
            raise ValueError("values must be non-negative")

    @property
    def num_items(self) -> int:
        return len(self.values)

    @property
    def num_dims(self) -> int:
        return len(self.capacities)


def _fractional_bound(
    instance: KnapsackInstance, chosen_value: float, remaining: np.ndarray, items: list[int]
) -> float:
    """Upper bound: fractional relaxation on the tightest dimension."""
    bound = chosen_value
    for i in items:
        w = np.array(instance.weights[i])
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(w > 0, remaining / np.maximum(w, 1e-300), np.inf)
        fit = min(1.0, float(fractions.min()) if len(fractions) else 1.0)
        if fit <= 0:
            continue
        bound += instance.values[i] * fit
    return bound


def solve_mdk(instance: KnapsackInstance) -> tuple[float, frozenset[int]]:
    """Exact solve by depth-first branch and bound.

    Returns (optimal value, chosen item indices).  Intended for the small
    instances used in the reduction tests (exponential worst case).
    """
    order = sorted(
        range(instance.num_items),
        key=lambda i: -(instance.values[i] / (1e-12 + sum(instance.weights[i]))),
    )
    best_value = 0.0
    best_set: frozenset[int] = frozenset()
    capacities = np.array(instance.capacities, dtype=float)

    def dfs(pos: int, value: float, remaining: np.ndarray, chosen: list[int]) -> None:
        nonlocal best_value, best_set
        if value > best_value:
            best_value = value
            best_set = frozenset(chosen)
        if pos == len(order):
            return
        tail = order[pos:]
        if _fractional_bound(instance, value, remaining, tail) <= best_value + 1e-12:
            return
        item = order[pos]
        weight = np.array(instance.weights[item], dtype=float)
        if np.all(weight <= remaining + 1e-12):
            chosen.append(item)
            dfs(pos + 1, value + instance.values[item], remaining - weight, chosen)
            chosen.pop()
        dfs(pos + 1, value, remaining, chosen)

    dfs(0, 0.0, capacities.copy(), [])
    return best_value, best_set


def knapsack_to_dot(
    instance: KnapsackInstance,
    alpha: float = 1.0,
) -> DOTProblem:
    """Polynomial reduction: single-dimension 0/1 knapsack -> DOT.

    Gadget: item ``i`` becomes task ``i`` with priority proportional to
    its value; its only candidate path uses one dedicated block whose
    *memory* equals the item weight.  Memory is binary in DOT — blocks
    deploy in full whenever ``z_i > 0`` — so admission is combinatorial.
    Radio/compute/latency budgets are made non-binding, and ``α = 1``
    focuses the objective on the rejection term: minimizing it equals
    maximizing the admitted value, i.e. the knapsack objective.

    Multi-dimensional instances encode each extra dimension as another
    set of single-purpose blocks on a second DNN; for clarity we support
    the 1-D case here, which already yields NP-hardness (the MDK argument
    stacks the same gadget per dimension).
    """
    if instance.num_dims != 1:
        raise ValueError("the executable reduction covers 1-D knapsack instances")
    max_value = max(instance.values) if instance.values else 1.0
    quality = QualityLevel(name="unit", bits_per_image=1.0)
    catalog = Catalog()
    tasks = []
    for i in range(instance.num_items):
        task = Task(
            task_id=i,
            name=f"item{i}",
            method="knapsack",
            priority=instance.values[i] / max_value if max_value > 0 else 0.0,
            request_rate=1.0,
            min_accuracy=0.0,
            max_latency_s=1.0,
            qualities=(quality,),
        )
        tasks.append(task)
        block = Block(
            block_id=f"item{i}-block",
            dnn_id=f"dnn{i}",
            compute_time_s=0.0,
            memory_gb=float(instance.weights[i][0]),
            training_cost_s=0.0,
        )
        catalog.add_path(
            Path(
                path_id=f"item{i}-path",
                dnn_id=f"dnn{i}",
                task_id=i,
                blocks=(block,),
                accuracy=1.0,
                quality=quality,
            )
        )
    budgets = Budgets(
        compute_time_s=1e9,
        training_budget_s=1.0,
        memory_gb=float(instance.capacities[0]),
        radio_blocks=10 * max(1, instance.num_items),
    )
    return DOTProblem(
        tasks=tuple(tasks),
        catalog=catalog,
        budgets=budgets,
        radio=RadioModel(default_bits_per_rb=1e9),
        alpha=alpha,
    )


def dot_solution_to_selection(solution) -> frozenset[int]:
    """Admitted task ids of a DOT solution = chosen knapsack items."""
    return frozenset(
        task_id for task_id, a in solution.assignments.items() if a.admitted
    )
