"""The weighted-tree model of the DOT solution space (Sec. IV-A).

The tree has one layer per task, in descending priority order.  Each
layer is a *clique* of vertices, one per feasible DNN path for that
task, arranged left-to-right by increasing inference compute time.  A
branch (root to leaf) picks one vertex per layer and therefore one path
per task; the memory and training-cost attributes of a branch update
dynamically while traversing, because blocks already deployed by
higher-priority tasks are free for lower-priority ones.

Feasibility filtering during construction removes vertices that violate
the accuracy constraint (1f) or whose inference compute time alone
already exceeds the latency limit (1g) — plus vertices whose minimum RB
demand can never fit the radio capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Path
from repro.core.problem import DOTProblem
from repro.core.subproblem import minimum_latency_rbs
from repro.core.task import Task

__all__ = ["Vertex", "Clique", "BranchState", "SolutionTree", "build_tree"]


@dataclass(frozen=True)
class Vertex:
    """One feasible (task, path) decision — a tree vertex ``v_j = π^j_τ``.

    Static attributes (accuracy, compute time, bits to transmit) live on
    the path; the dynamic attributes (cumulative memory, training cost)
    belong to :class:`BranchState` since they depend on the traversal.
    """

    task: Task
    path: Path
    bits_per_rb: float

    @property
    def compute_time_s(self) -> float:
        return self.path.compute_time_s

    @property
    def accuracy(self) -> float:
        return self.path.effective_accuracy

    def min_latency_rbs(self) -> int:
        return minimum_latency_rbs(
            self.path.bits_per_image,
            self.bits_per_rb,
            self.task.max_latency_s,
            self.path.compute_time_s,
        )

    def sort_key(self) -> tuple[float, float, float, str]:
        """Clique ordering: increasing inference compute time.

        Ties break toward smaller memory, then fewer bits per image
        (cheaper radio), then path id for determinism.
        """
        memory = sum(b.memory_gb for b in self.path.blocks)
        return (
            self.path.compute_time_s,
            memory,
            self.path.bits_per_image,
            self.path.path_id,
        )


@dataclass
class Clique:
    """All feasible vertices of one layer, compute-time sorted."""

    task: Task
    vertices: list[Vertex]

    def __post_init__(self) -> None:
        self.vertices.sort(key=Vertex.sort_key)

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class BranchState:
    """Dynamic attributes accumulated along a branch.

    Immutable: :meth:`extend` returns a new state, which keeps the DFS
    of the optimal solver trivially correct.
    """

    used_block_ids: frozenset[str] = frozenset()
    memory_gb: float = 0.0
    training_cost_s: float = 0.0

    def extend(self, vertex: Vertex) -> "BranchState":
        """State after deploying ``vertex``'s blocks (new blocks only)."""
        new_memory = self.memory_gb
        new_training = self.training_cost_s
        new_ids = set(self.used_block_ids)
        for block in vertex.path.blocks:
            if block.block_id not in new_ids:
                new_ids.add(block.block_id)
                new_memory += block.memory_gb
                new_training += block.training_cost_s
        return BranchState(
            used_block_ids=frozenset(new_ids),
            memory_gb=new_memory,
            training_cost_s=new_training,
        )

    def incremental_memory(self, vertex: Vertex) -> float:
        """Memory added by ``vertex`` beyond already-deployed blocks."""
        return sum(
            b.memory_gb
            for b in vertex.path.blocks
            if b.block_id not in self.used_block_ids
        )


@dataclass
class SolutionTree:
    """Cliques in priority order, plus construction statistics."""

    problem: DOTProblem
    cliques: list[Clique]
    #: vertices removed by the (1f)/(1g) feasibility filter, per task id
    filtered_out: dict[int, int] = field(default_factory=dict)

    def num_branches(self) -> int:
        """Branches in the complete tree (product of clique sizes)."""
        total = 1
        for clique in self.cliques:
            total *= max(len(clique), 1)
        return total

    def tasks_without_options(self) -> list[Task]:
        return [c.task for c in self.cliques if not c.vertices]


def _vertex_feasible(vertex: Vertex, problem: DOTProblem) -> bool:
    task = vertex.task
    # (1f): accuracy requirement
    if vertex.accuracy < task.min_accuracy - 1e-12:
        return False
    # (1g), compute part: processing alone must leave room for transmission
    if vertex.compute_time_s >= task.max_latency_s:
        return False
    # the latency-driven RB demand must fit the radio capacity at all
    if vertex.min_latency_rbs() > problem.budgets.radio_blocks:
        return False
    return True


def _expand_qualities(path: Path, task: Task) -> list[Path]:
    """One path variant per quality level ``q ∈ Q_τ``.

    The quality sets ``β(q)`` and scales the attainable accuracy —
    picking a lower quality is the semantic-compression lever of the
    formulation.  Tasks with a single quality keep the path verbatim.
    """
    from dataclasses import replace

    variants: list[Path] = []
    for quality in task.qualities:
        if quality == path.quality:
            variants.append(path)
        else:
            variants.append(
                replace(
                    path,
                    path_id=f"{path.path_id}@{quality.name}",
                    quality=quality,
                )
            )
    return variants


def build_tree(problem: DOTProblem) -> SolutionTree:
    """Construct the feasibility-filtered, compute-time-sorted tree."""
    cliques: list[Clique] = []
    filtered: dict[int, int] = {}
    for task in problem.tasks_by_priority():
        bits_per_rb = problem.radio.bits_per_rb(task)
        vertices = [
            Vertex(task=task, path=variant, bits_per_rb=bits_per_rb)
            for path in problem.catalog.paths_for(task)
            for variant in _expand_qualities(path, task)
        ]
        feasible = [v for v in vertices if _vertex_feasible(v, problem)]
        filtered[task.task_id] = len(vertices) - len(feasible)
        cliques.append(Clique(task=task, vertices=feasible))
    return SolutionTree(problem=problem, cliques=cliques, filtered_out=filtered)
