"""The weighted-tree model of the DOT solution space (Sec. IV-A).

The tree has one layer per task, in descending priority order.  Each
layer is a *clique* of vertices, one per feasible DNN path for that
task, arranged left-to-right by increasing inference compute time.  A
branch (root to leaf) picks one vertex per layer and therefore one path
per task; the memory and training-cost attributes of a branch update
dynamically while traversing, because blocks already deployed by
higher-priority tasks are free for lower-priority ones.

Feasibility filtering during construction removes vertices that violate
the accuracy constraint (1f) or whose inference compute time alone
already exceeds the latency limit (1g) — plus vertices whose minimum RB
demand can never fit the radio capacity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.catalog import Block, Path
from repro.core.problem import DOTProblem
from repro.core.subproblem import minimum_latency_rbs
from repro.core.task import QualityLevel, Task
from repro.obs.trace import current_tracer

__all__ = [
    "Vertex",
    "Clique",
    "BranchState",
    "SolutionTree",
    "build_tree",
    "BlockRegistry",
    "VectorClique",
    "VectorTree",
    "build_task_clique",
    "build_vector_tree",
]


@dataclass(frozen=True)
class Vertex:
    """One feasible (task, path) decision — a tree vertex ``v_j = π^j_τ``.

    Static attributes (accuracy, compute time, bits to transmit) live on
    the path; the dynamic attributes (cumulative memory, training cost)
    belong to :class:`BranchState` since they depend on the traversal.
    """

    task: Task
    path: Path
    bits_per_rb: float

    @property
    def compute_time_s(self) -> float:
        return self.path.compute_time_s

    @property
    def accuracy(self) -> float:
        return self.path.effective_accuracy

    def min_latency_rbs(self) -> int:
        return minimum_latency_rbs(
            self.path.bits_per_image,
            self.bits_per_rb,
            self.task.max_latency_s,
            self.path.compute_time_s,
        )

    def sort_key(self) -> tuple[float, float, float, str]:
        """Clique ordering: increasing inference compute time.

        Ties break toward smaller memory, then fewer bits per image
        (cheaper radio), then path id for determinism.
        """
        memory = sum(b.memory_gb for b in self.path.blocks)
        return (
            self.path.compute_time_s,
            memory,
            self.path.bits_per_image,
            self.path.path_id,
        )


@dataclass
class Clique:
    """All feasible vertices of one layer, compute-time sorted."""

    task: Task
    vertices: list[Vertex]

    def __post_init__(self) -> None:
        self.vertices.sort(key=Vertex.sort_key)

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class BranchState:
    """Dynamic attributes accumulated along a branch.

    Immutable: :meth:`extend` returns a new state, which keeps the DFS
    of the optimal solver trivially correct.
    """

    used_block_ids: frozenset[str] = frozenset()
    memory_gb: float = 0.0
    training_cost_s: float = 0.0

    def extend(self, vertex: Vertex) -> "BranchState":
        """State after deploying ``vertex``'s blocks (new blocks only)."""
        new_memory = self.memory_gb
        new_training = self.training_cost_s
        new_ids = set(self.used_block_ids)
        for block in vertex.path.blocks:
            if block.block_id not in new_ids:
                new_ids.add(block.block_id)
                new_memory += block.memory_gb
                new_training += block.training_cost_s
        return BranchState(
            used_block_ids=frozenset(new_ids),
            memory_gb=new_memory,
            training_cost_s=new_training,
        )

    def incremental_memory(self, vertex: Vertex) -> float:
        """Memory added by ``vertex`` beyond already-deployed blocks."""
        return sum(
            b.memory_gb
            for b in vertex.path.blocks
            if b.block_id not in self.used_block_ids
        )


@dataclass
class SolutionTree:
    """Cliques in priority order, plus construction statistics."""

    problem: DOTProblem
    cliques: list[Clique]
    #: vertices removed by the (1f)/(1g) feasibility filter, per task id
    filtered_out: dict[int, int] = field(default_factory=dict)
    #: wall-clock seconds spent constructing the tree (0 if hand-built)
    build_time_s: float = 0.0

    def num_branches(self) -> int:
        """Branches in the complete tree (product of clique sizes)."""
        total = 1
        for clique in self.cliques:
            total *= max(len(clique), 1)
        return total

    def tasks_without_options(self) -> list[Task]:
        return [c.task for c in self.cliques if not c.vertices]


def _vertex_feasible(vertex: Vertex, problem: DOTProblem) -> bool:
    task = vertex.task
    # (1f): accuracy requirement
    if vertex.accuracy < task.min_accuracy - 1e-12:
        return False
    # (1g), compute part: processing alone must leave room for transmission
    if vertex.compute_time_s >= task.max_latency_s:
        return False
    # the latency-driven RB demand must fit the radio capacity at all
    if vertex.min_latency_rbs() > problem.budgets.radio_blocks:
        return False
    return True


def _variant_path(path: Path, quality: QualityLevel) -> Path:
    """The path re-expressed at ``quality`` (verbatim for its own)."""
    if quality == path.quality:
        return path
    return replace(path, path_id=f"{path.path_id}@{quality.name}", quality=quality)


def _variant_path_id(path: Path, quality: QualityLevel) -> str:
    if quality == path.quality:
        return path.path_id
    return f"{path.path_id}@{quality.name}"


def _expand_qualities(path: Path, task: Task) -> list[Path]:
    """One path variant per quality level ``q ∈ Q_τ``.

    The quality sets ``β(q)`` and scales the attainable accuracy —
    picking a lower quality is the semantic-compression lever of the
    formulation.  Tasks with a single quality keep the path verbatim.
    """
    return [_variant_path(path, quality) for quality in task.qualities]


def build_tree(problem: DOTProblem) -> SolutionTree:
    """Construct the feasibility-filtered, compute-time-sorted tree."""
    start = time.perf_counter()
    tracer = current_tracer()
    cliques: list[Clique] = []
    filtered: dict[int, int] = {}
    for task in problem.tasks_by_priority():
        bits_per_rb = problem.radio.bits_per_rb(task)
        vertices = [
            Vertex(task=task, path=variant, bits_per_rb=bits_per_rb)
            for path in problem.catalog.paths_for(task)
            for variant in _expand_qualities(path, task)
        ]
        feasible = [v for v in vertices if _vertex_feasible(v, problem)]
        filtered[task.task_id] = len(vertices) - len(feasible)
        cliques.append(Clique(task=task, vertices=feasible))
    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.record(
            "solver.tree_build",
            start,
            elapsed,
            cat="solver",
            track="solver",
            args={"tasks": len(cliques), "engine": "scalar"},
        )
    return SolutionTree(
        problem=problem,
        cliques=cliques,
        filtered_out=filtered,
        build_time_s=elapsed,
    )


# ---------------------------------------------------------------------------
# Vectorized tree construction (the 10⁴–10⁶-task control plane)
# ---------------------------------------------------------------------------


class BlockRegistry:
    """Interned block table backing the vectorized cliques.

    Maps ``block_id`` to a dense index so clique traversal can compute
    incremental memory with array arithmetic instead of per-vertex
    Python set operations.  The registry is append-only and may outlive
    a single problem: the warm-start solver shares one across churn
    re-solves, and per-``Path`` derived rows (block indices, compute
    time, total memory) are cached by object identity so replicated
    workloads sharing path tuples pay the derivation once.
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._memory: list[float] = []
        self._memory_arr: np.ndarray | None = None
        # id(path) -> (path, block index row, compute_time_s, memory_gb)
        self._path_rows: dict[int, tuple[Path, np.ndarray, float, float]] = {}

    def __len__(self) -> int:
        return len(self._index)

    def intern(self, block: Block) -> int:
        index = self._index.get(block.block_id)
        if index is None:
            index = len(self._index)
            self._index[block.block_id] = index
            self._memory.append(block.memory_gb)
            self._memory_arr = None
        return index

    def path_entry(self, path: Path) -> tuple[np.ndarray, float, float]:
        """(block index row, compute time, total memory) for a path."""
        cached = self._path_rows.get(id(path))
        if cached is not None and cached[0] is path:
            return cached[1], cached[2], cached[3]
        row = np.array([self.intern(b) for b in path.blocks], dtype=np.int64)
        compute = path.compute_time_s
        memory = sum(b.memory_gb for b in path.blocks)
        self._path_rows[id(path)] = (path, row, compute, memory)
        return row, compute, memory

    def block_memory(self) -> np.ndarray:
        """Per-index memory (GB), rebuilt lazily after growth."""
        if self._memory_arr is None or len(self._memory_arr) != len(self._memory):
            self._memory_arr = np.array(self._memory, dtype=np.float64)
        return self._memory_arr


@dataclass
class VectorClique:
    """One task's feasible (path × quality) variants as flat arrays.

    Variants are stored in the scalar clique order — sorted by
    ``(compute, memory, bits, path_id)`` — after the radio-independent
    (1f)/(1g) feasibility filters.  The radio filter ``min_latency_rbs
    ≤ R`` is applied per solve (a mask over ``min_latency_rbs``), which
    keeps a clique reusable across budget changes: the warm-start cache
    relies on that.
    """

    task: Task
    bits_per_rb: float
    #: the catalog tuple this clique was derived from (identity check
    #: for cache validity)
    source_paths: tuple[Path, ...]
    #: surviving (base path, quality) pairs in clique order
    variants: list[tuple[Path, QualityLevel]]
    compute_s: np.ndarray
    memory_gb: np.ndarray
    bits_per_image: np.ndarray
    accuracy: np.ndarray
    min_latency_rbs: np.ndarray
    #: concatenated registry rows of the variants' blocks
    block_rows: np.ndarray
    #: row pointers into ``block_rows`` (len(variants) + 1)
    block_ptr: np.ndarray
    #: variant path ids in clique order (ordering-ablation tie-break)
    path_ids: list[str]
    #: variants removed by the (1f)/(1g) filters (radio filter excluded)
    filtered_static: int

    def __len__(self) -> int:
        return len(self.variants)

    def variant_path(self, index: int) -> Path:
        path, quality = self.variants[index]
        return _variant_path(path, quality)

    def variant_blocks(self, index: int) -> np.ndarray:
        return self.block_rows[self.block_ptr[index] : self.block_ptr[index + 1]]


def build_task_clique(
    task: Task,
    paths: tuple[Path, ...],
    bits_per_rb: float,
    registry: BlockRegistry,
) -> VectorClique:
    """One vectorized pass over a task's path × quality variants.

    Replicates the scalar pipeline exactly — same feasibility
    comparisons, same float expressions for the latency RB demand, same
    sort keys — so a materialized clique is vertex-for-vertex identical
    to :func:`build_tree`'s.
    """
    qualities = task.qualities
    n_q = len(qualities)
    n_p = len(paths)
    rows: list[np.ndarray] = []
    comp_path = np.empty(n_p, dtype=np.float64)
    mem_path = np.empty(n_p, dtype=np.float64)
    acc_path = np.empty(n_p, dtype=np.float64)
    for j, path in enumerate(paths):
        row, compute, memory = registry.path_entry(path)
        rows.append(row)
        comp_path[j] = compute
        mem_path[j] = memory
        acc_path[j] = path.accuracy

    q_factor = np.array([q.accuracy_factor for q in qualities], dtype=np.float64)
    q_bits = np.array([q.bits_per_image for q in qualities], dtype=np.float64)

    # variant layout: paths outer, qualities inner (the scalar order)
    comp = np.repeat(comp_path, n_q)
    mem = np.repeat(mem_path, n_q)
    acc = np.repeat(acc_path, n_q) * np.tile(q_factor, n_p)
    bits = np.tile(q_bits, n_p)

    # (1f) accuracy and (1g) compute-vs-latency, radio-independent
    feasible = (acc >= task.min_accuracy - 1e-12) & (comp < task.max_latency_s)
    kept = np.flatnonzero(feasible)
    filtered_static = int(comp.size - kept.size)

    comp_k = comp[kept]
    mem_k = mem[kept]
    acc_k = acc[kept]
    bits_k = bits[kept]
    # slack > 0 is guaranteed by the (1g) filter; replicate the exact
    # float expression of minimum_latency_rbs
    slack = task.max_latency_s - comp_k
    r_lat = np.maximum(
        1, np.ceil(bits_k / (bits_per_rb * slack) - 1e-12).astype(np.int64)
    )

    pairs = [(paths[i // n_q], qualities[i % n_q]) for i in kept]
    pids = [_variant_path_id(p, q) for p, q in pairs]
    # the scalar Vertex.sort_key, applied with identical tuple semantics
    order = sorted(
        range(len(pairs)),
        key=lambda i: (comp_k[i], mem_k[i], bits_k[i], pids[i]),
    )
    order_arr = np.array(order, dtype=np.int64)

    sorted_rows = [rows[kept[i] // n_q] for i in order]
    if sorted_rows:
        block_rows = np.concatenate(sorted_rows)
        lengths = np.array([r.size for r in sorted_rows], dtype=np.int64)
    else:
        block_rows = np.empty(0, dtype=np.int64)
        lengths = np.empty(0, dtype=np.int64)
    block_ptr = np.zeros(len(sorted_rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=block_ptr[1:])

    return VectorClique(
        task=task,
        bits_per_rb=bits_per_rb,
        source_paths=paths,
        variants=[pairs[i] for i in order],
        compute_s=comp_k[order_arr] if order else comp_k,
        memory_gb=mem_k[order_arr] if order else mem_k,
        bits_per_image=bits_k[order_arr] if order else bits_k,
        accuracy=acc_k[order_arr] if order else acc_k,
        min_latency_rbs=r_lat[order_arr] if order else r_lat,
        block_rows=block_rows,
        block_ptr=block_ptr,
        path_ids=[pids[i] for i in order],
        filtered_static=filtered_static,
    )


@dataclass
class VectorTree:
    """Per-task vectorized cliques in priority order."""

    problem: DOTProblem
    cliques: list[VectorClique]
    registry: BlockRegistry
    build_time_s: float = 0.0
    #: cliques served from a warm-start cache instead of being rebuilt
    cached_cliques: int = 0

    def materialize(self) -> SolutionTree:
        """The equivalent legacy :class:`SolutionTree` (Vertex objects).

        Applies the radio filter the scalar builder applies inline, so
        clique contents and ``filtered_out`` counts match exactly.
        """
        radio_blocks = self.problem.budgets.radio_blocks
        cliques: list[Clique] = []
        filtered: dict[int, int] = {}
        for vclique in self.cliques:
            mask = vclique.min_latency_rbs <= radio_blocks
            vertices = [
                Vertex(
                    task=vclique.task,
                    path=vclique.variant_path(i),
                    bits_per_rb=vclique.bits_per_rb,
                )
                for i in np.flatnonzero(mask)
            ]
            filtered[vclique.task.task_id] = vclique.filtered_static + int(
                (~mask).sum()
            )
            cliques.append(Clique(task=vclique.task, vertices=vertices))
        return SolutionTree(
            problem=self.problem,
            cliques=cliques,
            filtered_out=filtered,
            build_time_s=self.build_time_s,
        )


def build_vector_tree(
    problem: DOTProblem, registry: BlockRegistry | None = None
) -> VectorTree:
    """Vectorized counterpart of :func:`build_tree`.

    Clique contents depend only on the candidate-path tuple, the quality
    set, the accuracy/latency requirements and the per-RB capacity — not
    on a task's identity, priority or rate — so replicated populations
    (many tasks sharing one catalog entry by identity) build each
    distinct clique once and share its arrays read-only.
    """
    start = time.perf_counter()
    tracer = current_tracer()
    registry = registry if registry is not None else BlockRegistry()
    cliques: list[VectorClique] = []
    memo: dict[tuple, VectorClique] = {}
    built = 0
    for task in problem.tasks_by_priority():
        paths = problem.catalog.paths_for(task)
        bits_per_rb = problem.radio.bits_per_rb(task)
        key = (
            id(paths),
            bits_per_rb,
            task.min_accuracy,
            task.max_latency_s,
            task.qualities,
        )
        cached = memo.get(key)
        if cached is not None and cached.source_paths is paths:
            cliques.append(replace(cached, task=task))
            continue
        if tracer.enabled:
            with tracer.span(
                "solver.clique_filter",
                cat="solver",
                track="solver",
                task=task.task_id,
            ):
                clique = build_task_clique(task, paths, bits_per_rb, registry)
        else:
            clique = build_task_clique(task, paths, bits_per_rb, registry)
        built += 1
        memo[key] = clique
        cliques.append(clique)
    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.record(
            "solver.tree_build",
            start,
            elapsed,
            cat="solver",
            track="solver",
            args={"tasks": len(cliques), "built": built, "engine": "vector"},
        )
    return VectorTree(
        problem=problem,
        cliques=cliques,
        registry=registry,
        build_time_s=elapsed,
    )
