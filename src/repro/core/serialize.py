"""JSON (de)serialization of DOT problems and solutions.

Lets experiments be persisted, diffed and replayed: a problem instance
(tasks, catalog, budgets, radio model) and a solver's solution both
round-trip through plain JSON-compatible dictionaries.

The format is versioned; loaders reject unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.catalog import Block, Catalog, Path
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.solution import Assignment, DOTSolution
from repro.core.task import QualityLevel, Task

__all__ = [
    "FORMAT_VERSION",
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "dump_problem",
    "load_problem",
    "dump_solution",
    "load_solution",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# element codecs
# ---------------------------------------------------------------------------


def _quality_to_dict(quality: QualityLevel) -> dict[str, Any]:
    return {
        "name": quality.name,
        "bits_per_image": quality.bits_per_image,
        "accuracy_factor": quality.accuracy_factor,
    }


def _quality_from_dict(data: dict[str, Any]) -> QualityLevel:
    return QualityLevel(
        name=data["name"],
        bits_per_image=data["bits_per_image"],
        accuracy_factor=data["accuracy_factor"],
    )


def _task_to_dict(task: Task) -> dict[str, Any]:
    return {
        "task_id": task.task_id,
        "name": task.name,
        "method": task.method,
        "priority": task.priority,
        "request_rate": task.request_rate,
        "min_accuracy": task.min_accuracy,
        "max_latency_s": task.max_latency_s,
        "sinr_db": task.sinr_db,
        "qualities": [_quality_to_dict(q) for q in task.qualities],
    }


def _task_from_dict(data: dict[str, Any]) -> Task:
    return Task(
        task_id=data["task_id"],
        name=data["name"],
        method=data["method"],
        priority=data["priority"],
        request_rate=data["request_rate"],
        min_accuracy=data["min_accuracy"],
        max_latency_s=data["max_latency_s"],
        sinr_db=data.get("sinr_db", 20.0),
        qualities=tuple(_quality_from_dict(q) for q in data["qualities"]),
    )


def _block_to_dict(block: Block) -> dict[str, Any]:
    return {
        "block_id": block.block_id,
        "dnn_id": block.dnn_id,
        "compute_time_s": block.compute_time_s,
        "memory_gb": block.memory_gb,
        "training_cost_s": block.training_cost_s,
    }


def _block_from_dict(data: dict[str, Any]) -> Block:
    return Block(
        block_id=data["block_id"],
        dnn_id=data["dnn_id"],
        compute_time_s=data["compute_time_s"],
        memory_gb=data["memory_gb"],
        training_cost_s=data["training_cost_s"],
    )


def _path_to_dict(path: Path) -> dict[str, Any]:
    return {
        "path_id": path.path_id,
        "dnn_id": path.dnn_id,
        "task_id": path.task_id,
        "accuracy": path.accuracy,
        "quality": _quality_to_dict(path.quality),
        "block_ids": [b.block_id for b in path.blocks],
    }


def _path_from_dict(data: dict[str, Any], blocks: dict[str, Block]) -> Path:
    return Path(
        path_id=data["path_id"],
        dnn_id=data["dnn_id"],
        task_id=data["task_id"],
        accuracy=data["accuracy"],
        quality=_quality_from_dict(data["quality"]),
        blocks=tuple(blocks[bid] for bid in data["block_ids"]),
    )


# ---------------------------------------------------------------------------
# problem
# ---------------------------------------------------------------------------


def problem_to_dict(problem: DOTProblem) -> dict[str, Any]:
    """Encode a problem as a JSON-compatible dictionary."""
    blocks = problem.catalog.all_blocks()
    return {
        "version": FORMAT_VERSION,
        "alpha": problem.alpha,
        "budgets": {
            "compute_time_s": problem.budgets.compute_time_s,
            "training_budget_s": problem.budgets.training_budget_s,
            "memory_gb": problem.budgets.memory_gb,
            "radio_blocks": problem.budgets.radio_blocks,
        },
        "radio": {
            "default_bits_per_rb": problem.radio.default_bits_per_rb,
            "per_task_bits_per_rb": {
                str(k): v for k, v in problem.radio.per_task_bits_per_rb.items()
            },
        },
        "tasks": [_task_to_dict(t) for t in problem.tasks],
        "blocks": [_block_to_dict(b) for b in blocks.values()],
        "paths": [
            _path_to_dict(p)
            for paths in problem.catalog.paths_by_task.values()
            for p in paths
        ],
    }


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported serialization version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )


def problem_from_dict(data: dict[str, Any]) -> DOTProblem:
    """Decode a problem previously encoded by :func:`problem_to_dict`."""
    _check_version(data)
    blocks = {b["block_id"]: _block_from_dict(b) for b in data["blocks"]}
    catalog = Catalog()
    for path_data in data["paths"]:
        catalog.add_path(_path_from_dict(path_data, blocks))
    return DOTProblem(
        tasks=tuple(_task_from_dict(t) for t in data["tasks"]),
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=data["budgets"]["compute_time_s"],
            training_budget_s=data["budgets"]["training_budget_s"],
            memory_gb=data["budgets"]["memory_gb"],
            radio_blocks=data["budgets"]["radio_blocks"],
        ),
        radio=RadioModel(
            default_bits_per_rb=data["radio"]["default_bits_per_rb"],
            per_task_bits_per_rb={
                int(k): v for k, v in data["radio"]["per_task_bits_per_rb"].items()
            },
        ),
        alpha=data["alpha"],
    )


# ---------------------------------------------------------------------------
# solution
# ---------------------------------------------------------------------------


def solution_to_dict(solution: DOTSolution) -> dict[str, Any]:
    """Encode a solution; paths are referenced by id within the problem."""
    assignments = []
    for task_id, assignment in sorted(solution.assignments.items()):
        assignments.append(
            {
                "task_id": task_id,
                "path_id": assignment.path.path_id if assignment.path else None,
                "quality": (
                    _quality_to_dict(assignment.path.quality) if assignment.path else None
                ),
                "admission_ratio": assignment.admission_ratio,
                "radio_blocks": assignment.radio_blocks,
            }
        )
    return {
        "version": FORMAT_VERSION,
        "solver_name": solution.solver_name,
        "solve_time_s": solution.solve_time_s,
        "tree_build_time_s": solution.tree_build_time_s,
        "assignments": assignments,
    }


def solution_from_dict(data: dict[str, Any], problem: DOTProblem) -> DOTSolution:
    """Decode a solution against its problem (for path resolution).

    Quality-expanded paths (``<path_id>@<quality>``) are reconstructed
    from the base path plus the recorded quality level.
    """
    from dataclasses import replace

    _check_version(data)
    paths_by_id: dict[str, Path] = {
        p.path_id: p
        for paths in problem.catalog.paths_by_task.values()
        for p in paths
    }
    solution = DOTSolution(
        solver_name=data.get("solver_name", ""),
        solve_time_s=data.get("solve_time_s", 0.0),
        # absent in pre-scaling dumps, where solve_time_s was end-to-end
        tree_build_time_s=data.get("tree_build_time_s", 0.0),
    )
    for entry in data["assignments"]:
        task = problem.task(entry["task_id"])
        path_id = entry["path_id"]
        path: Path | None = None
        if path_id is not None:
            base_id = path_id.split("@")[0]
            if base_id not in paths_by_id:
                raise KeyError(f"solution references unknown path {path_id!r}")
            path = paths_by_id[base_id]
            if entry["quality"] is not None:
                quality = _quality_from_dict(entry["quality"])
                if quality != path.quality:
                    path = replace(path, path_id=path_id, quality=quality)
        solution.assignments[task.task_id] = Assignment(
            task=task,
            path=path,
            admission_ratio=entry["admission_ratio"],
            radio_blocks=entry["radio_blocks"],
        )
    return solution


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------


def dump_problem(problem: DOTProblem, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2)


def load_problem(path: str) -> DOTProblem:
    with open(path) as handle:
        return problem_from_dict(json.load(handle))


def dump_solution(solution: DOTSolution, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(solution_to_dict(solution), handle, indent=2)


def load_solution(path: str, problem: DOTProblem) -> DOTSolution:
    with open(path) as handle:
        return solution_from_dict(json.load(handle), problem)
