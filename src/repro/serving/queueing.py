"""Per-slice request queues with deadlines and backpressure.

Each admitted task owns one radio slice and, on the edge side, one
serving queue.  Queues are bounded (``max_depth``) so an overloaded
task exerts backpressure instead of growing without bound, and they
are deadline-aware: a request that can no longer meet its latency
target ``L_τ`` is dropped at dispatch time rather than wasting GPU
time (the preemptive-dropping regime of deadline-constrained serving).

Two disciplines are provided:

* ``fifo`` — arrival order, the paper's Colosseum behaviour;
* ``edf``  — earliest deadline first, the classical optimal single-
  machine policy for feasible deadline sets.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.core.catalog import Path

__all__ = ["DropReason", "ServingRequest", "ServingQueue"]


class DropReason(enum.Enum):
    """Why a request left the pipeline without being served."""

    #: gated by the token bucket (the solved ``z_τ`` says: shed it)
    ADMISSION = "admission"
    #: the task's serving queue was full (backpressure)
    QUEUE_FULL = "queue_full"
    #: its deadline expired (or became unreachable) before service
    DEADLINE = "deadline"
    #: a remote segment dispatch failed on its node *and* on the retry
    #: target (cluster serving; see :mod:`repro.cluster.executor`)
    REMOTE_ERROR = "remote_error"
    #: a cross-node activation transfer stalled past its timeout twice
    TRANSFER_TIMEOUT = "transfer_timeout"


@dataclass(slots=True)
class ServingRequest:
    """Lifecycle record of one inference request.

    Slotted: a million-request run allocates these in bulk, and slot
    storage roughly halves the per-record footprint while keeping field
    access a fixed-offset load.  Records are recycled between runs
    through :class:`repro.serving.pool.RequestPool`.
    """

    task_id: int
    request_id: int
    path: Path
    created_at: float
    deadline_at: float
    #: uplink payload β(q) in bits
    bits: float
    uplink_done_at: float = float("nan")
    #: when the dispatcher pulled the request out of its queue
    dispatched_at: float = float("nan")
    started_at: float = float("nan")
    completed_at: float = float("nan")
    #: simulated GPU time attributed to this request's window share
    compute_time_s: float = 0.0
    drop_reason: DropReason | None = None
    #: when the last segment finished (cluster runs; NaN on one node,
    #: where every request in a window finishes with the window)
    service_done_at: float = float("nan")
    #: per-hop journey through the cluster fabric (None on one node)
    hops: list | None = None

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None

    @property
    def completed(self) -> bool:
        return not self.dropped and self.completed_at == self.completed_at

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.created_at

    @property
    def missed_deadline(self) -> bool:
        """Served, but past its latency target."""
        return self.completed and self.completed_at > self.deadline_at + 1e-12


@dataclass
class ServingQueue:
    """Bounded, deadline-aware queue for one task's slice."""

    task_id: int
    policy: str = "fifo"
    max_depth: int = 32
    _fifo: deque[ServingRequest] = field(default_factory=deque)
    _heap: list[tuple[float, int, ServingRequest]] = field(default_factory=list)
    _sequence: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("fifo", "edf"):
            raise ValueError(f"unknown queue policy {self.policy!r}")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")

    def __len__(self) -> int:
        return len(self._fifo) + len(self._heap)

    def push(self, request: ServingRequest) -> ServingRequest | None:
        """Enqueue; returns the request dropped by backpressure, if any.

        FIFO rejects the newcomer when full.  EDF keeps the most urgent
        ``max_depth`` requests, so the victim is whichever of (queue ∪
        newcomer) has the latest deadline.
        """
        if self.policy == "fifo":
            if len(self._fifo) >= self.max_depth:
                request.drop_reason = DropReason.QUEUE_FULL
                return request
            self._fifo.append(request)
            return None
        heapq.heappush(self._heap, (request.deadline_at, self._sequence, request))
        self._sequence += 1
        if len(self._heap) > self.max_depth:
            # nlargest(1) over a heap is O(n); depth is small and bounded
            victim_key = max(self._heap)
            self._heap.remove(victim_key)
            heapq.heapify(self._heap)
            victim = victim_key[2]
            victim.drop_reason = DropReason.QUEUE_FULL
            return victim
        return None

    def pop_ready(self, now: float) -> tuple[ServingRequest | None, list[ServingRequest]]:
        """Next serviceable request plus any expired ones dropped on the way.

        A request is expired when even zero queueing cannot meet its
        deadline: ``now + Σc(s) > deadline``.
        """
        expired: list[ServingRequest] = []
        while True:
            request = self._pop()
            if request is None:
                return None, expired
            if now + request.path.compute_time_s > request.deadline_at + 1e-12:
                request.drop_reason = DropReason.DEADLINE
                expired.append(request)
                continue
            return request, expired

    def _pop(self) -> ServingRequest | None:
        if self.policy == "fifo":
            return self._fifo.popleft() if self._fifo else None
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]
