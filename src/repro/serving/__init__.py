"""Edge inference serving runtime — executing admitted request streams.

Where :mod:`repro.edge` *decides* (which tasks, which paths, which
slices), this package *serves*: it drives per-task request streams
through the deployed DNN paths on the discrete-event simulator, with

* :mod:`repro.serving.admission` — token buckets enforcing the solved
  admission ratios ``z_τ``;
* :mod:`repro.serving.queueing` — bounded, deadline-aware per-slice
  queues (FIFO or EDF) with drop accounting;
* :mod:`repro.serving.executor` — a worker-pool batch executor whose
  shared-block prefix cache fuses requests across paths that share
  frozen blocks, plus a tensor-level blockwise runner;
* :mod:`repro.serving.metrics` — per-task latency histograms
  (p50/p95/p99), deadline-miss rates and drop reasons;
* :mod:`repro.serving.parallel` — a multi-core execution backend:
  shared-memory weight arenas, a persistent process pool sharding
  batches across workers, and an adaptive micro-batching dispatcher;
* :mod:`repro.serving.runtime` — the end-to-end loop on the emulator
  clock, reusing the LTE uplink for transfer time;
* :mod:`repro.serving.waves` / :mod:`repro.serving.engine` — the
  vectorized data plane: whole arrival waves precomputed with numpy,
  closed-form token-bucket admission, pooled request records
  (:mod:`repro.serving.pool`), one DES event per batching window —
  bit-identical to the scalar path and the default engine.

Entry points: ``ServingRuntime.from_problem(problem).run()`` or the
``repro serve-sim`` CLI command.
"""

from repro.serving.admission import AdmissionGate, TokenBucket
from repro.serving.engine import TaskWave, WavePlan
from repro.serving.executor import BatchExecutor, BlockwiseRunner, WindowReport
from repro.serving.pool import RequestPool
from repro.serving.metrics import LatencyStats, ServingMetrics, TaskServingMetrics
from repro.serving.parallel import (
    MicroBatcher,
    ParallelBackend,
    WeightArena,
    shared_memory_available,
)
from repro.serving.queueing import DropReason, ServingQueue, ServingRequest
from repro.serving.runtime import ServingConfig, ServingRuntime

__all__ = [
    "AdmissionGate",
    "BatchExecutor",
    "BlockwiseRunner",
    "DropReason",
    "LatencyStats",
    "MicroBatcher",
    "ParallelBackend",
    "RequestPool",
    "ServingConfig",
    "ServingMetrics",
    "ServingQueue",
    "ServingRequest",
    "ServingRuntime",
    "TaskServingMetrics",
    "TaskWave",
    "TokenBucket",
    "WavePlan",
    "WeightArena",
    "WindowReport",
    "shared_memory_available",
]
