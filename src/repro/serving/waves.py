"""Vectorized arrival waves: the numpy half of the serving data plane.

The scalar serving runtime generates one DES event per offered request
(an ``emit`` closure that draws the next inter-arrival gap, meters the
token bucket, and enqueues the uplink frame).  That is perfectly fine
at paper scale — a few hundred requests — and hopeless at 10⁵–10⁶.

This module computes the same quantities as whole numpy arrays, one
*wave* per task, with **bit-identical** results to the scalar event
chain:

* :func:`arrival_times` reproduces the emit chain's accumulated-float
  arrival instants (``t_k = fl(t_{k-1} + gap_k)``) via ``np.cumsum``,
  which accumulates sequentially in C and therefore rounds exactly like
  the scalar loop.  Poisson gaps are drawn in bulk from the same
  ``Generator`` — numpy fills arrays from the identical bitstream a
  sequence of scalar draws would consume, so the values match float for
  float.
* :func:`wave_admissions` evaluates the token bucket over a whole wave
  in closed form.  The bucket's documented admission law — request
  ``k`` is admitted iff ``⌊k·z⌋`` increments — is evaluated with the
  exact float expression the scalar :class:`~repro.serving.admission.
  TokenBucket` uses, including its clamp to one admission per offered
  request, so decisions *and* credit levels agree bit-for-bit.
* :func:`fifo_deliveries` replays the per-slice FIFO uplink (``start =
  max(arrival, busy); finish = fl(start + airtime)``).  When the slice
  never queues (the common case at solved operating points) the whole
  wave vectorizes; queued stretches fall back to an exact scan.
* :func:`merge_arrival_order` recovers the scalar runtime's *global*
  request numbering: the DES interleaves per-task emit chains by
  ``(time, schedule sequence)``, which for simultaneous arrivals
  resolves to comparing when each chain's previous event fired, and
  ultimately to task scheduling order.  A stable lexsort over
  ``(time, previous arrival, task position)`` reproduces it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "arrival_times",
    "wave_admissions",
    "admission_credits",
    "fifo_deliveries",
    "merge_arrival_order",
]

#: the token bucket's admission epsilon (see ``repro.serving.admission``)
ADMIT_EPS = 1e-12


def arrival_times(
    rate: float,
    duration_s: float,
    poisson: bool,
    rng: np.random.Generator,
) -> np.ndarray:
    """All arrival instants of one task's wave, first at ``t = 0``.

    Bit-identical to the scalar emit chain: deterministic gaps are the
    accumulated float sums of ``fl(1/rate)``; Poisson gaps consume the
    task ``rng``'s stream exactly as per-request scalar draws would
    (numpy array fills use the same underlying bitstream sequentially).
    Arrivals stop once the *next* instant would pass ``duration_s`` —
    the same ``now + gap <= duration`` test the scalar chain applies.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not poisson:
        gap = 1.0 / rate
        # enough constant gaps to overshoot the horizon, then filter
        n = int(duration_s / gap) + 2
        times = np.cumsum(np.full(n, gap))
        times = times[times <= duration_s]
        return np.concatenate(([0.0], times))
    # draw in bulk; extend until the accumulated sum passes the horizon.
    # Over-drawing only advances this task's private generator, which
    # nothing else consumes — the *used* prefix matches scalar draws.
    scale = 1.0 / rate
    expected = rate * duration_s
    chunk = max(16, int(expected + 6.0 * np.sqrt(expected) + 16))
    gaps = rng.exponential(scale, size=chunk)
    while float(np.sum(gaps)) <= duration_s:
        gaps = np.concatenate((gaps, rng.exponential(scale, size=chunk)))
    # cumsum over the full gap array: sequential accumulation, so the
    # rounding matches the scalar chain even across extension chunks
    times = np.cumsum(gaps)
    times = times[times <= duration_s]
    return np.concatenate(([0.0], times))


def wave_admissions(ratio: float, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Token-bucket decisions for ``n`` offered requests, in closed form.

    Returns ``(mask, admitted)`` where ``mask[k]`` is the admit/shed
    decision for offered request ``k`` (0-indexed) and ``admitted[k]``
    the running admitted count *after* request ``k``.

    The scalar bucket admits request ``k`` (1-indexed) iff
    ``⌊fl(k·z) + ε⌋`` exceeds the admitted count so far, which can grow
    by at most one per request.  The closed form is therefore the
    clamped running minimum ``a_k = min_{j≤k}(target_j + (k − j))`` —
    an exact integer computation once the float targets are fixed, so
    the decisions and bucket levels match the scalar loop bit for bit.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        empty = np.empty(0)
        return empty.astype(bool), empty.astype(np.int64)
    k = np.arange(1, n + 1, dtype=np.float64)
    target = np.floor(k * ratio + ADMIT_EPS)
    # clamp to one admission per offered request (relevant only if a
    # float target ever jumped by 2, which z <= 1 precludes in practice)
    admitted = (np.minimum.accumulate(target - k) + k).astype(np.int64)
    mask = np.diff(admitted, prepend=np.int64(0)) > 0
    return mask, admitted


def admission_credits(
    ratio: float, admitted: np.ndarray, burst: float
) -> np.ndarray:
    """Bucket credit after each offered request (float-exact).

    ``admitted`` is the running admitted count from
    :func:`wave_admissions`; the credit level after offered request
    ``k`` is ``min(fl(k·z) − a_k, burst)``, exactly the expression the
    scalar bucket maintains.
    """
    k = np.arange(1, len(admitted) + 1, dtype=np.float64)
    return np.minimum(k * ratio - admitted, burst)


def fifo_deliveries(arrivals: np.ndarray, airtime_s: float) -> np.ndarray:
    """Delivery instants of a FIFO slice serving fixed-airtime frames.

    Replays ``finish_i = fl(max(arrival_i, finish_{i-1}) + airtime)``.
    The uncontended case (every frame finds the slice idle) vectorizes
    to one elementwise add; contended stretches use an exact scan so
    the floats match the scalar :meth:`LteCell.enqueue_frame` sequence.
    """
    if airtime_s < 0:
        raise ValueError("airtime_s must be >= 0")
    if len(arrivals) == 0:
        return np.empty(0)
    finishes = arrivals + airtime_s
    if len(arrivals) == 1 or bool(np.all(finishes[:-1] <= arrivals[1:])):
        return finishes
    busy = 0.0
    out = np.empty_like(arrivals)
    for i, arrival in enumerate(arrivals):
        start = arrival if arrival > busy else busy
        busy = start + airtime_s
        out[i] = busy
    return out


def merge_arrival_order(
    arrivals_per_task: list[np.ndarray],
) -> list[np.ndarray]:
    """Global creation order of all tasks' arrivals (scalar numbering).

    The scalar runtime numbers requests in DES event order: ``(time,
    schedule sequence)``.  Two simultaneous arrivals of different tasks
    compare by when their emit events were *scheduled* — the previous
    arrival instant of each chain — and, when those tie as well (same
    accumulated grid), by the order the chains were seeded at ``t = 0``,
    i.e. task position.  A stable lexsort over ``(time, previous
    arrival, task position)`` reproduces that order for every arrival
    process the runtime generates (exact deeper-level ties require
    identical accumulated grids, which the fallback to task position
    resolves identically).

    Returns one int64 array per task mapping each arrival to its global
    request id.
    """
    if not arrivals_per_task:
        return []
    times = np.concatenate(arrivals_per_task)
    prev = np.concatenate(
        [
            np.concatenate(([-np.inf], a[:-1]))
            for a in arrivals_per_task
        ]
    )
    pos = np.concatenate(
        [np.full(len(a), i, dtype=np.int64) for i, a in enumerate(arrivals_per_task)]
    )
    order = np.lexsort((pos, prev, times))
    ids = np.empty(len(times), dtype=np.int64)
    ids[order] = np.arange(len(times), dtype=np.int64)
    out = []
    offset = 0
    for a in arrivals_per_task:
        out.append(ids[offset : offset + len(a)])
        offset += len(a)
    return out
