"""Per-task admission-ratio enforcement (the runtime face of ``z_τ``).

The DOT solver grants each task an admission ratio ``z_τ ∈ [0, 1]``:
the fraction of the task's offered request stream the edge has
resources to serve.  At runtime the controller's notification (step 6
of the Fig. 4 workflow) must be *enforced* — devices keep producing
frames at the full rate ``λ_τ`` and the serving stack may only pass
``z_τ`` of them upstream.

:class:`TokenBucket` implements the enforcement as a deterministic
credit scheme: every offered request deposits ``z_τ`` tokens, serving
one request costs a full token.  Over any window of ``n`` requests the
served count is within one of ``n·z_τ`` (exact for ``z_τ ∈ {0, 1}``),
and the gate needs no clock, so the decision sequence is reproducible
regardless of arrival jitter.

The bucket evaluates its documented admission law in *closed form*:
request ``k`` is admitted iff the target ``⌊k·z + ε⌋`` exceeds the
admitted count so far.  The closed form is what lets the vectorized
wave engine (:mod:`repro.serving.waves`) meter a whole arrival wave as
one numpy expression with decisions and credit levels bit-identical to
this per-request loop — a property the hypothesis parity suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["TokenBucket", "AdmissionGate"]

#: tolerance absorbing float error in the credit target ``k·z``
ADMIT_EPS = 1e-12


@dataclass
class TokenBucket:
    """Deterministic token bucket metering one task's request stream.

    ``ratio`` is the admission ratio ``z_τ``; ``burst`` bounds the
    credit a quiet stream can accumulate (in requests, ≥ 1).  The
    admitted pattern is the evenly-spaced low-discrepancy sequence:
    request ``k`` is admitted iff ``⌊k·z⌋ > ⌊(k-1)·z⌋`` (clamped to one
    admission per offered request), so over any window of ``n``
    requests the served count is within one of ``n·z``.
    """

    ratio: float
    burst: float = 1.0
    _credit: float = 0.0
    offered: int = 0
    admitted: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1 request")

    def allow(self) -> bool:
        """Meter one offered request; True if it may be served."""
        self.offered += 1
        target = math.floor(self.offered * self.ratio + ADMIT_EPS)
        admitted = target > self.admitted
        if admitted:
            self.admitted += 1
        # banked credit: earned tokens not yet spent, capped at `burst`
        self._credit = min(
            self.offered * self.ratio - self.admitted, self.burst
        )
        return admitted

    def fast_forward(self, offered: int, admitted: int) -> None:
        """Jump the bucket to the state after ``offered`` requests.

        Used by the wave engine after metering a whole arrival wave in
        closed form: the bucket object stays consistent for
        observability probes and the ``served_fraction`` accessor
        without replaying the per-request loop.
        """
        if offered < 0 or not 0 <= admitted <= offered:
            raise ValueError("need 0 <= admitted <= offered")
        self.offered = int(offered)
        self.admitted = int(admitted)
        self._credit = (
            min(self.offered * self.ratio - self.admitted, self.burst)
            if offered
            else 0.0
        )

    @property
    def credit(self) -> float:
        """Currently banked credit, in requests (observability probe)."""
        return self._credit

    @property
    def served_fraction(self) -> float:
        """Fraction of offered requests admitted so far."""
        if self.offered == 0:
            return float("nan")
        return self.admitted / self.offered


@dataclass
class AdmissionGate:
    """One :class:`TokenBucket` per admitted task.

    Built from the controller's admission tickets; tasks without a
    ticket (or rejected outright) are gated at ratio 0.
    """

    buckets: dict[int, TokenBucket] = field(default_factory=dict)

    @classmethod
    def from_ratios(cls, ratios: dict[int, float], burst: float = 1.0) -> "AdmissionGate":
        return cls(
            buckets={
                task_id: TokenBucket(ratio=ratio, burst=burst)
                for task_id, ratio in ratios.items()
            }
        )

    def allow(self, task_id: int) -> bool:
        bucket = self.buckets.get(task_id)
        if bucket is None:
            return False
        return bucket.allow()

    def bucket(self, task_id: int) -> TokenBucket:
        return self.buckets[task_id]
