"""Per-task admission-ratio enforcement (the runtime face of ``z_τ``).

The DOT solver grants each task an admission ratio ``z_τ ∈ [0, 1]``:
the fraction of the task's offered request stream the edge has
resources to serve.  At runtime the controller's notification (step 6
of the Fig. 4 workflow) must be *enforced* — devices keep producing
frames at the full rate ``λ_τ`` and the serving stack may only pass
``z_τ`` of them upstream.

:class:`TokenBucket` implements the enforcement as a deterministic
credit scheme: every offered request deposits ``z_τ`` tokens, serving
one request costs a full token.  Over any window of ``n`` requests the
served count is within one of ``n·z_τ`` (exact for ``z_τ ∈ {0, 1}``),
and the gate needs no clock, so the decision sequence is reproducible
regardless of arrival jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TokenBucket", "AdmissionGate"]


@dataclass
class TokenBucket:
    """Deterministic token bucket metering one task's request stream.

    ``ratio`` is the admission ratio ``z_τ``; ``burst`` bounds the
    credit a quiet stream can accumulate (in requests, ≥ 1).  With the
    default burst of 1 the admitted pattern is the evenly-spaced
    low-discrepancy sequence: request ``k`` is admitted iff
    ``⌊k·z⌋ > ⌊(k-1)·z⌋``.
    """

    ratio: float
    burst: float = 1.0
    _credit: float = 0.0
    offered: int = 0
    admitted: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1 request")

    def allow(self) -> bool:
        """Meter one offered request; True if it may be served."""
        self.offered += 1
        self._credit += self.ratio
        admitted = self._credit >= 1.0 - 1e-12
        if admitted:
            self._credit -= 1.0
            self.admitted += 1
        # cap the banked credit AFTER spending — clipping before the
        # check would discard fractional credit and underserve high z
        self._credit = min(self._credit, self.burst)
        return admitted

    @property
    def credit(self) -> float:
        """Currently banked credit, in requests (observability probe)."""
        return self._credit

    @property
    def served_fraction(self) -> float:
        """Fraction of offered requests admitted so far."""
        if self.offered == 0:
            return float("nan")
        return self.admitted / self.offered


@dataclass
class AdmissionGate:
    """One :class:`TokenBucket` per admitted task.

    Built from the controller's admission tickets; tasks without a
    ticket (or rejected outright) are gated at ratio 0.
    """

    buckets: dict[int, TokenBucket] = field(default_factory=dict)

    @classmethod
    def from_ratios(cls, ratios: dict[int, float], burst: float = 1.0) -> "AdmissionGate":
        return cls(
            buckets={
                task_id: TokenBucket(ratio=ratio, burst=burst)
                for task_id, ratio in ratios.items()
            }
        )

    def allow(self, task_id: int) -> bool:
        bucket = self.buckets.get(task_id)
        if bucket is None:
            return False
        return bucket.allow()

    def bucket(self, task_id: int) -> TokenBucket:
        return self.buckets[task_id]
