"""The wave engine: a vectorized data plane for the serving runtime.

The scalar :class:`~repro.serving.runtime.ServingRuntime` path costs
one DES event plus one closure per *offered* request — three heap
operations, an allocation, and a token-bucket call each.  The wave
engine replaces all per-request control flow up to the serving queue
with numpy over whole arrival waves:

1. each task's arrival instants are pre-drawn as one array
   (:func:`repro.serving.waves.arrival_times`, bit-identical to the
   scalar emit chain);
2. token-bucket admission is evaluated in closed form over the wave
   (:func:`repro.serving.waves.wave_admissions`) — requests the gate
   sheds are *counted*, never materialized;
3. uplink deliveries of the admitted subset replay the slice FIFO as
   an array scan (:func:`repro.serving.waves.fifo_deliveries`);
4. admitted requests are materialized from a freelist pool and pushed
   into their serving queues in delivery order by the dispatcher tick
   itself — one DES event per batching window, not one per request.

**Bit-exactness.**  The engine reproduces the scalar path's results
exactly (served set, drop reasons, metrics) on any workload the
runtime generates.  The one subtle piece is the window boundary: when
a request's uplink delivery lands *exactly* on a dispatcher tick, the
scalar DES breaks the tie by schedule order — the arrive event wins
iff its emit chain reached the shared instant before the dispatch
chain did.  :meth:`TaskWave.arrives_before_tick` replays that
comparison from the recorded chains (it recurses past repeated exact
ties, which float-accumulated grids make vanishingly rare but the
``t = 0`` wave start makes real).

What the engine deliberately does **not** reproduce is per-request
observability *between* windows: admission-shed trace events are
emitted in bulk (same payloads, per-task order) and sampled gauge
series see queue/bucket state at window granularity.  Registry
counters, histograms, spans of served requests, and every
``ServingMetrics`` number remain bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.serving import waves
from repro.serving.pool import RequestPool
from repro.serving.queueing import ServingRequest

__all__ = ["TaskWave", "WavePlan"]


@dataclass
class TaskWave:
    """One task's precomputed arrival wave."""

    task_id: int
    path: object
    #: every arrival instant of the wave (admitted and shed)
    arrivals: np.ndarray
    #: global request ids, one per arrival (scalar numbering)
    ids: np.ndarray
    #: indices into ``arrivals`` the token bucket admitted
    admitted_idx: np.ndarray
    #: uplink delivery instant per admitted request (slice FIFO)
    deliveries: np.ndarray
    #: deadline per admitted request (``created + L_τ``)
    deadlines: np.ndarray
    bits: float
    #: next admitted request not yet pushed into the serving queue
    cursor: int = 0
    #: delivery instant of ``cursor`` as a plain float (``inf`` when
    #: exhausted) — lets an idle tick skip the wave on one compare
    next_delivery: float = float("inf")

    def __post_init__(self) -> None:
        if len(self.deliveries):
            self.next_delivery = float(self.deliveries[0])

    @property
    def offered(self) -> int:
        return len(self.arrivals)

    @property
    def admitted(self) -> int:
        return len(self.admitted_idx)

    @property
    def gated(self) -> int:
        return len(self.arrivals) - len(self.admitted_idx)

    def arrives_before_tick(self, admitted_pos: int, tick_times: list[float]) -> bool:
        """Scalar tie-break for a delivery landing exactly on a tick.

        The scalar DES orders same-time events by schedule sequence.
        The arrive event was scheduled at its request's emit instant;
        the dispatch tick was scheduled at the previous tick (the first
        tick during setup).  When those instants tie too, the
        comparison recurses one generation up each chain — emit ``k``
        was scheduled when emit ``k−1`` fired, tick ``j`` when tick
        ``j−1`` fired — until one chain reaches setup, where initial
        emits are scheduled before the first dispatch tick.
        """
        arrival_index = int(self.admitted_idx[admitted_pos])
        # depth 0 compares the schedulers of the two tied events:
        # emit[arrival_index] vs dispatch tick[len(tick_times) - 2]
        emit_i = arrival_index
        tick_i = len(tick_times) - 2
        while True:
            emit_setup = emit_i < 0
            tick_setup = tick_i < 0
            if emit_setup:
                # initial emits precede the first dispatch schedule
                return True
            if tick_setup:
                return False
            e_inst = float(self.arrivals[emit_i])
            d_inst = tick_times[tick_i]
            if e_inst != d_inst:
                return e_inst < d_inst
            emit_i -= 1
            tick_i -= 1


@dataclass
class WavePlan:
    """All tasks' waves plus the bookkeeping the dispatcher needs."""

    tasks: list[TaskWave]
    #: admission-shed count per task (never materialized)
    gated: dict[int, int]
    total_offered: int = 0
    total_admitted: int = 0
    #: every dispatcher tick instant fired so far (tie-break record)
    tick_times: list[float] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        served_tasks: list[tuple],
        config,
        gate,
        cell,
    ) -> "WavePlan":
        """Precompute every task's wave for one run.

        ``served_tasks`` is the runtime's ``(task, path)`` list; the
        gate's buckets are fast-forwarded to their end-of-run state so
        observability probes and ``served_fraction`` stay meaningful.
        """
        if cell.fading is not None or cell.harq is not None:
            raise ValueError(
                "the wave engine models a plain FIFO uplink; fading/HARQ "
                "cells need engine='scalar'"
            )
        arrivals_per_task = []
        for task, _path in served_tasks:
            rng = np.random.default_rng(config.seed * 7919 + task.task_id)
            rate = task.request_rate * config.load_factor
            arrivals_per_task.append(
                waves.arrival_times(
                    rate, config.duration_s, config.poisson, rng
                )
            )
        ids_per_task = waves.merge_arrival_order(arrivals_per_task)
        task_waves: list[TaskWave] = []
        gated: dict[int, int] = {}
        total_offered = 0
        total_admitted = 0
        for (task, path), arrivals, ids in zip(
            served_tasks, arrivals_per_task, ids_per_task
        ):
            bucket = gate.bucket(task.task_id)
            mask, counts = waves.wave_admissions(bucket.ratio, len(arrivals))
            admitted_idx = np.nonzero(mask)[0]
            n_admitted = len(admitted_idx)
            bucket.fast_forward(len(arrivals), n_admitted)
            admitted_arrivals = arrivals[admitted_idx]
            airtime = cell.transmission_duration(
                task.task_id, path.bits_per_image, now=0.0
            )
            wave = TaskWave(
                task_id=task.task_id,
                path=path,
                arrivals=arrivals,
                ids=ids,
                admitted_idx=admitted_idx,
                deliveries=waves.fifo_deliveries(admitted_arrivals, airtime),
                deadlines=admitted_arrivals + task.max_latency_s,
                bits=path.bits_per_image,
            )
            task_waves.append(wave)
            gated[task.task_id] = wave.gated
            total_offered += wave.offered
            total_admitted += n_admitted
        return cls(
            tasks=task_waves,
            gated=gated,
            total_offered=total_offered,
            total_admitted=total_admitted,
        )

    def begin_tick(self, now: float) -> None:
        """Record a dispatcher tick instant (tie-break bookkeeping)."""
        self.tick_times.append(now)

    def push_due(
        self,
        now: float,
        pool: RequestPool,
        push: Callable[[ServingRequest], None],
        collect: Callable[[int, ServingRequest], None],
    ) -> None:
        """Materialize and enqueue every request delivered by ``now``.

        Requests with delivery strictly before the tick always join it;
        a delivery exactly *on* the tick joins only when the scalar DES
        would have fired its arrive event first
        (:meth:`TaskWave.arrives_before_tick`).  ``push`` runs the
        runtime's queue-insert (backpressure, tracing); ``collect``
        files the record for metrics.
        """
        for wave in self.tasks:
            # the common tick has nothing due on most waves: one float
            # compare, no numpy, no method calls
            if wave.next_delivery > now:
                continue
            n = len(wave.deliveries)
            # everything strictly before the tick is due...
            due = int(
                np.searchsorted(wave.deliveries, now, side="left") - wave.cursor
            )
            # ...plus on-tick deliveries that win the scalar tie-break
            while (
                wave.cursor + due < n
                and wave.deliveries[wave.cursor + due] == now
                and wave.arrives_before_tick(wave.cursor + due, self.tick_times)
            ):
                due += 1
            for _ in range(due):
                i = wave.cursor
                arrival_index = int(wave.admitted_idx[i])
                request = pool.acquire(
                    task_id=wave.task_id,
                    request_id=int(wave.ids[arrival_index]),
                    path=wave.path,
                    created_at=float(wave.arrivals[arrival_index]),
                    deadline_at=float(wave.deadlines[i]),
                    bits=wave.bits,
                )
                request.uplink_done_at = float(wave.deliveries[i])
                wave.cursor = i + 1
                collect(wave.task_id, request)
                push(request)
            wave.next_delivery = (
                float(wave.deliveries[wave.cursor])
                if wave.cursor < n
                else float("inf")
            )

    def emit_shed_traces(self, tracer) -> None:
        """Replay admission-shed drop events into an enabled tracer.

        Same payloads as the scalar path's per-request events, grouped
        per task (a trace at 10⁶ offered requests is dominated by these
        lines; the grouping keeps emission a tight loop).
        """
        for wave in self.tasks:
            shed = np.setdiff1d(
                np.arange(len(wave.arrivals)), wave.admitted_idx
            )
            track = f"task{wave.task_id}"
            for i in shed:
                tracer.event_at(
                    "drop.admission",
                    float(wave.arrivals[i]),
                    cat="serving",
                    track=track,
                    args={"request": int(wave.ids[i])},
                )

    def records_in_creation_order(
        self, per_task: dict[int, list[ServingRequest]]
    ) -> list[ServingRequest]:
        """Merge per-task record lists into global creation order."""
        merged: list[ServingRequest] = []
        for records in per_task.values():
            merged.extend(records)
        if not merged:
            return merged
        ids = np.fromiter(
            (r.request_id for r in merged), dtype=np.int64, count=len(merged)
        )
        order = np.argsort(ids, kind="stable")
        out = np.empty(len(merged), dtype=object)
        out[:] = merged
        return list(out[order])
