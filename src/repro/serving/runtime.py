"""The serving runtime: executing admitted request streams.

Takes an :class:`~repro.edge.controller.OffloaDNNController` deployment
(admitted tasks, their DNN paths, slice allocations) and actually
*serves* it on the discrete-event simulator:

1. devices generate requests at the offered rate ``λ_τ`` (optionally
   scaled by ``load_factor`` to study overload);
2. the per-task :class:`~repro.serving.admission.TokenBucket` sheds
   everything beyond the solved admission ratio ``z_τ``;
3. surviving requests ride the task's radio slice through
   :class:`~repro.emulator.lte.LteCell` (TTI-granular, FIFO per slice);
4. on arrival they enter the task's bounded, deadline-aware
   :class:`~repro.serving.queueing.ServingQueue`;
5. a periodic dispatcher drains the queues into batching windows which
   the :class:`~repro.serving.executor.BatchExecutor` fuses along
   shared frozen-block prefixes and runs on its worker pool;
6. completions (and every drop, with its reason) land in
   :class:`~repro.serving.metrics.ServingMetrics`.

Everything is seeded and event-ordered, so two runs with the same
configuration produce bit-identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import DOTProblem
from repro.core.solution import DOTSolution
from repro.edge.controller import AdmissionTicket, OffloaDNNController
from repro.edge.resources import Gpu
from repro.edge.vim import VirtualInfrastructureManager
from repro.emulator.lte import LteCell
from repro.emulator.simulator import Simulator
from repro.obs.session import ObsSession
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.radio.slicing import SliceManager
from repro.serving.admission import AdmissionGate
from repro.serving.engine import WavePlan
from repro.serving.executor import BatchExecutor
from repro.serving.metrics import ServingMetrics, TaskServingMetrics
from repro.serving.pool import RequestPool
from repro.serving.queueing import DropReason, ServingQueue, ServingRequest

__all__ = ["ServingConfig", "ServingRuntime"]


def _record_request_spans(
    tracer: Tracer | NullTracer, request: ServingRequest, result_return_s: float
) -> None:
    """Emit one completed request's phase spans on the DES clock.

    The parent ``request`` span covers created → completed; the five
    children (uplink → queue → batch → execute → complete) partition it
    exactly, so their durations sum to the end-to-end latency and nest
    inside the parent on the request's own track.
    """
    track = f"task{request.task_id}.req{request.request_id}"
    cat = "serving"
    created = request.created_at
    finished = request.completed_at - result_return_s
    tracer.record(
        "request",
        created,
        request.completed_at - created,
        cat=cat,
        track=track,
        args={"task": request.task_id, "request": request.request_id},
    )
    tracer.record(
        "uplink", created, request.uplink_done_at - created, cat=cat, track=track
    )
    tracer.record(
        "queue",
        request.uplink_done_at,
        request.dispatched_at - request.uplink_done_at,
        cat=cat,
        track=track,
    )
    tracer.record(
        "batch",
        request.dispatched_at,
        request.started_at - request.dispatched_at,
        cat=cat,
        track=track,
    )
    tracer.record(
        "execute", request.started_at, finished - request.started_at, cat=cat, track=track
    )
    tracer.record(
        "complete", finished, request.completed_at - finished, cat=cat, track=track
    )


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run."""

    #: seconds of request generation (virtual time; the run then drains)
    duration_s: float = 10.0
    #: dispatcher period — requests arriving within one window batch
    batch_window_s: float = 0.005
    queue_policy: str = "edf"
    queue_depth: int = 32
    num_workers: int = 1
    #: marginal batch cost factor (see :mod:`repro.serving.executor`)
    batch_efficiency: float = 0.5
    prefix_cache: bool = True
    #: data-parallel processes per window (``repro serve-sim --procs``);
    #: models :class:`repro.serving.parallel.ParallelBackend` sharding
    num_procs: int = 1
    #: per-shard scatter/gather overhead charged when ``num_procs > 1``
    shard_overhead_s: float = 0.0005
    #: cap on requests fused into one window (None = drain everything)
    max_batch: int | None = None
    #: Poisson arrivals if True, deterministic spacing otherwise
    poisson: bool = False
    #: offered-load multiplier on every task's ``λ_τ``
    load_factor: float = 1.0
    #: downlink result-return time (tiny payload)
    result_return_s: float = 0.002
    #: token-bucket burst in requests
    admission_burst: float = 1.0
    #: data-plane engine: ``"vector"`` precomputes whole arrival waves
    #: (numpy, pooled records, one event per window — the 10⁵–10⁶
    #: request path), ``"scalar"`` is the one-event-per-request DES
    #: reference the vector path is bit-identical to
    engine: str = "vector"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.engine not in ("vector", "scalar"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.batch_window_s <= 0:
            raise ValueError("batch_window_s must be positive")
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.shard_overhead_s < 0.0:
            raise ValueError("shard_overhead_s must be >= 0")


@dataclass
class ServingRuntime:
    """Drives request streams through a deployed DOT solution."""

    problem: DOTProblem
    tickets: dict[int, AdmissionTicket]
    solution: DOTSolution
    slice_manager: SliceManager
    config: ServingConfig = field(default_factory=ServingConfig)
    #: optional observability session — request-lifecycle spans on the
    #: DES clock, registry counters/histograms, and sampled gauges
    obs: ObsSession | None = None
    #: optional multi-node fabric (:class:`repro.cluster.executor.
    #: ClusterDeployment`): when set, windows execute across the
    #: deployment's placed segments instead of the local worker pool
    cluster: object | None = None

    # run state (rebuilt by every run() call)
    simulator: Simulator = field(init=False, repr=False)
    executor: object = field(init=False, repr=False)
    #: freelist reused across runs (vector engine request records)
    pool: RequestPool = field(init=False, repr=False, default_factory=RequestPool)
    #: every request record of the last run (completed and dropped)
    last_requests: list[ServingRequest] = field(
        init=False, repr=False, default_factory=list
    )

    @classmethod
    def from_problem(
        cls,
        problem: DOTProblem,
        config: ServingConfig | None = None,
        solver: object | None = None,
    ) -> "ServingRuntime":
        """Admit ``problem`` through a fresh controller and wrap the result."""
        budgets = problem.budgets
        vim = VirtualInfrastructureManager(
            gpus=(
                Gpu(
                    gpu_id=0,
                    vram_gb=budgets.memory_gb,
                    compute_share=budgets.compute_time_s,
                ),
            )
        )
        slice_manager = SliceManager(capacity_rbs=budgets.radio_blocks)
        controller = OffloaDNNController(
            vim=vim,
            slice_manager=slice_manager,
            radio=problem.radio,
            solver=solver or OffloaDNNSolver(),
            alpha=problem.alpha,
            training_budget_s=budgets.training_budget_s,
        )
        tickets = controller.handle_admission_requests(problem.tasks, problem.catalog)
        assert controller.last_solution is not None
        return cls(
            problem=problem,
            tickets=tickets,
            solution=controller.last_solution,
            slice_manager=slice_manager,
            config=config or ServingConfig(),
        )

    def with_config(self, **changes) -> "ServingRuntime":
        """Same deployment, different run knobs (e.g. prefix_cache=False)."""
        return dc_replace(self, config=dc_replace(self.config, **changes))

    def run(self) -> ServingMetrics:
        """Execute one seeded serving simulation and summarize it."""
        cfg = self.config
        obs = self.obs
        vector = cfg.engine == "vector"
        # the wave engine never hands event objects to callers, so the
        # simulator may recycle them through its freelist
        sim = self.simulator = Simulator(recycle_events=vector)
        tracer: Tracer | NullTracer = NULL_TRACER
        if obs is not None:
            obs.bind_virtual_clock(lambda: sim.now)
            tracer = obs.virtual
        cell = LteCell(slice_manager=self.slice_manager)
        cell.reset()
        record_hop_spans = None
        if self.cluster is not None:
            # lazy import: repro.cluster imports from repro.serving
            from repro.cluster.executor import ClusterExecutor
            from repro.cluster.qos import record_hop_spans

            self.cluster.reset()
            executor = self.executor = ClusterExecutor(
                deployment=self.cluster,
                batch_efficiency=cfg.batch_efficiency,
                prefix_cache=cfg.prefix_cache,
                seed=cfg.seed,
                tracer=tracer,
            )
        else:
            executor = self.executor = BatchExecutor(
                num_workers=cfg.num_workers,
                batch_efficiency=cfg.batch_efficiency,
                prefix_cache=cfg.prefix_cache,
                num_procs=cfg.num_procs,
                shard_overhead_s=cfg.shard_overhead_s,
                tracer=tracer,
            )
        # The ticket grants z_τ·λ_τ requests/s; devices offer
        # λ_τ·load_factor.  The bucket meters the granted *rate* against
        # the offered stream, so overload sheds at the gate instead of
        # melting the uplink: effective ratio = min(1, z / load_factor).
        gate = AdmissionGate.from_ratios(
            {
                tid: min(1.0, ticket.admission_ratio / cfg.load_factor)
                for tid, ticket in self.tickets.items()
                if ticket.admitted
            },
            burst=cfg.admission_burst,
        )
        queues: dict[int, ServingQueue] = {}
        records: list[ServingRequest] = []
        # admitted requests not yet completed or dropped; the dispatcher
        # keeps ticking until this drains after generation stops.
        # work_end tracks the last *workload* event time: the sampler
        # keeps ticking past it, so sim.now alone would make the
        # reported duration depend on whether tracing was on.
        state = {"outstanding": 0, "next_id": 0, "work_end": 0.0}

        served_tasks = []
        for task in self.problem.tasks:
            ticket = self.tickets[task.task_id]
            if not ticket.admitted:
                continue
            assignment = self.solution.assignment(task)
            assert assignment.path is not None
            served_tasks.append((task, assignment.path))
            queues[task.task_id] = ServingQueue(
                task_id=task.task_id,
                policy=cfg.queue_policy,
                max_depth=cfg.queue_depth,
            )
        # dispatch order is fixed for the whole run: build the sorted
        # queue index once instead of re-sorting every window
        ordered_queues = [(tid, queues[tid]) for tid in sorted(queues)]

        def drain_window(now: float) -> None:
            """One batching window: pop, dispatch, schedule completion.

            Shared verbatim by both engines — everything downstream of
            the serving queues (EDF/FIFO pops, deadline drops, prefix
            fusion, completion timing) is one code path, which is what
            makes cross-engine bit-identity a property of the arrival
            side alone.
            """
            window: list[ServingRequest] = []
            for task_id, queue in ordered_queues:
                while cfg.max_batch is None or len(window) < cfg.max_batch:
                    request, expired = queue.pop_ready(now)
                    state["outstanding"] -= len(expired)
                    if tracer.enabled:
                        for victim in expired:
                            tracer.event_at(
                                "drop.deadline",
                                now,
                                cat="serving",
                                track=f"task{victim.task_id}",
                                args={"request": victim.request_id},
                            )
                    if request is None:
                        break
                    request.dispatched_at = now
                    window.append(request)
                if cfg.max_batch is not None and len(window) >= cfg.max_batch:
                    break
            if window:
                report = executor.dispatch(window, now)
                completed_at = report.finished_at + cfg.result_return_s

                def complete(batch=window, at=completed_at) -> None:
                    for request in batch:
                        if request.dropped:
                            # lost mid-execution (cluster: remote_error
                            # or transfer_timeout); never completes
                            continue
                        done = request.service_done_at
                        # cluster segments finish per task; single-node
                        # windows finish together (done is NaN there)
                        request.completed_at = (
                            done + cfg.result_return_s if done == done else at
                        )
                    state["outstanding"] -= len(batch)
                    if tracer.enabled:
                        for request in batch:
                            if not request.completed:
                                continue
                            _record_request_spans(
                                tracer, request, cfg.result_return_s
                            )
                            if request.hops and record_hop_spans is not None:
                                record_hop_spans(
                                    tracer,
                                    request.task_id,
                                    request.request_id,
                                    request.hops,
                                )

                sim.schedule_at(completed_at, complete)
            state["work_end"] = now

        plan: WavePlan | None = None
        wave_records: dict[int, list[ServingRequest]] = {}
        if vector and served_tasks:
            plan = WavePlan.build(served_tasks, cfg, gate, cell)
            self.pool.reset()
            wave_records = {task.task_id: [] for task in self.problem.tasks}
            # every admitted request is in flight from the engine's
            # point of view; the same decrements as the scalar path
            # (queue_full, deadline, completion) drain the count, so the
            # tick chain keeps running exactly as long as scalar's does
            state["outstanding"] = plan.total_admitted
            if tracer.enabled:
                plan.emit_shed_traces(tracer)

            def wave_push(request: ServingRequest) -> None:
                victim = queues[request.task_id].push(request)
                if victim is not None:
                    state["outstanding"] -= 1
                    if tracer.enabled:
                        # scalar traces this at the arrive event, whose
                        # time is the newcomer's uplink delivery
                        tracer.event_at(
                            "drop.queue_full",
                            request.uplink_done_at,
                            cat="serving",
                            track=f"task{victim.task_id}",
                            args={"request": victim.request_id},
                        )

            def wave_collect(task_id: int, request: ServingRequest) -> None:
                wave_records[task_id].append(request)

            def wave_tick() -> None:
                now = sim.now
                plan.begin_tick(now)
                plan.push_due(now, self.pool, wave_push, wave_collect)
                drain_window(now)
                if now < cfg.duration_s or state["outstanding"] > 0:
                    sim.schedule(cfg.batch_window_s, wave_tick)

            sim.schedule(cfg.batch_window_s, wave_tick)
        elif served_tasks:

            def emit(task, path, rng) -> None:
                now = sim.now
                request = ServingRequest(
                    task_id=task.task_id,
                    request_id=state["next_id"],
                    path=path,
                    created_at=now,
                    deadline_at=now + task.max_latency_s,
                    bits=path.bits_per_image,
                )
                state["next_id"] += 1
                records.append(request)
                if not gate.allow(task.task_id):
                    request.drop_reason = DropReason.ADMISSION
                    if tracer.enabled:
                        tracer.event_at(
                            "drop.admission",
                            now,
                            cat="serving",
                            track=f"task{task.task_id}",
                            args={"request": request.request_id},
                        )
                else:
                    state["outstanding"] += 1
                    delivery = cell.enqueue_frame(task.task_id, request.bits, now)
                    request.uplink_done_at = delivery

                    def arrive() -> None:
                        victim = queues[task.task_id].push(request)
                        if victim is not None:
                            state["outstanding"] -= 1
                            if tracer.enabled:
                                tracer.event_at(
                                    "drop.queue_full",
                                    sim.now,
                                    cat="serving",
                                    track=f"task{victim.task_id}",
                                    args={"request": victim.request_id},
                                )

                    sim.schedule_at(delivery, arrive)
                rate = task.request_rate * cfg.load_factor
                gap = (
                    float(rng.exponential(1.0 / rate)) if cfg.poisson else 1.0 / rate
                )
                if now + gap <= cfg.duration_s:
                    sim.schedule(gap, lambda: emit(task, path, rng))

            for task, path in served_tasks:
                rng = np.random.default_rng(cfg.seed * 7919 + task.task_id)
                sim.schedule(0.0, lambda t=task, p=path, r=rng: emit(t, p, r))

            def dispatch() -> None:
                now = sim.now
                drain_window(now)
                if now < cfg.duration_s or state["outstanding"] > 0:
                    sim.schedule(cfg.batch_window_s, dispatch)

            sim.schedule(cfg.batch_window_s, dispatch)
        if obs is not None and served_tasks:
            sampler = obs.sampler()
            for task, _path in served_tasks:
                tid = task.task_id
                queue = queues[tid]
                sampler.add_probe(f"queue.depth.task{tid}", lambda q=queue: len(q))
                bucket = gate.bucket(tid)
                sampler.add_probe(
                    f"admission.credit.task{tid}", lambda b=bucket: b.credit
                )
            sampler.add_probe("serving.outstanding", lambda: state["outstanding"])
            sampler.add_probe(
                "executor.busy_workers", lambda: executor.busy_workers(sim.now)
            )
            sampler.add_probe("executor.windows", lambda: len(executor.windows))
            sampler.add_probe(
                "executor.prefix_merges", lambda: executor.prefix_merges
            )
            if self.cluster is not None:
                executor.qos.add_probes(sampler, lambda: sim.now)
            sampler.attach(
                sim,
                while_fn=lambda: (
                    sim.now < cfg.duration_s or state["outstanding"] > 0
                ),
            )
        sim.run()
        # quiet or empty deployments: still advance the clock to the
        # configured horizon (Simulator.run_until works on an empty queue)
        sim.run_until(cfg.duration_s)

        if plan is not None:
            # the wave engine materializes only admitted requests;
            # admission-shed offers reach the metrics as counts
            by_task = wave_records
            self.last_requests = plan.records_in_creation_order(wave_records)
        else:
            self.last_requests = records
            by_task = {task.task_id: [] for task in self.problem.tasks}
            for request in records:
                by_task[request.task_id].append(request)
        metrics = ServingMetrics(
            duration_s=max(cfg.duration_s, state["work_end"]),
            total_compute_s=executor.total_compute_s,
            compute_saved_s=executor.compute_saved_s,
            windows=len(executor.windows),
            prefix_merges=executor.prefix_merges,
        )
        registry = obs.registry if obs is not None else None
        gated = plan.gated if plan is not None else {}
        for task_id, reqs in by_task.items():
            metrics.tasks[task_id] = TaskServingMetrics.from_requests(
                task_id, reqs, registry=registry, gated=gated.get(task_id, 0)
            )
        return metrics
