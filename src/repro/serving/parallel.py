"""Multi-core parallel inference backend for the serving runtime.

Every real forward pass in the repo — :class:`BlockwiseRunner`, the
profiler, the benchmarks — runs on a single core, while the hardware the
paper targets (an edge platform with compute budget ``C`` shared across
tasks) exploits all of them.  This module is the data-parallel answer:

**Shared-memory weight arenas.**  :class:`WeightArena` publishes every
parameter tensor and compiled-plan weight layout of a block dictionary
*once* into one :mod:`multiprocessing.shared_memory` segment.  The
object graph (modules, compiled plans) is pickled with a persistent-id
hook that swaps each ``ndarray`` for an arena slot, so the payload
shipped to workers is structure only — workers attach the segment and
rebuild the arrays as zero-copy read-only views.  No weight bytes are
pickled per call, and ``k`` workers share one copy of the model.

**Persistent process pool.**  :class:`ParallelBackend` owns a spawn-safe
worker pool whose initializer attaches the arena.  ``run_path`` shards a
batch along the sample axis (never across blocks, so per-request results
are bit-identical to serial execution), runs each shard's full block
sequence in one worker round-trip, and concatenates in order.  BLAS
threading is pinned to one thread inside workers so process parallelism
and BLAS threads don't oversubscribe the cores.  With ``num_procs=1``,
or where shared memory is unavailable (sandboxes without ``/dev/shm``),
the backend degrades to an in-process serial engine with the same API.

**Adaptive micro-batching.**  :class:`MicroBatcher` coalesces queued
single-image requests until either the batch is full or the oldest
request's latency budget forces a flush — waiting longer than
``deadline − est(n) − safety`` would risk the deadline, where ``est`` is
an EWMA of measured batch execution time.  Flushed batches go through
the backend, which splits them across workers.

Sharding is at *block granularity along the batch axis*: a shard runs
the same block sequence over a slice of the samples, so the shared-trunk
prefix-cache semantics of :class:`BlockwiseRunner` (memoized activations
at frozen-prefix boundaries) are preserved — the runner memoizes in the
parent and hands each block's remaining batch to the backend.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import time
import weakref
from dataclasses import dataclass

import numpy as np

from repro.dnn.layers import Layer
from repro.obs.trace import current_tracer

try:  # restricted interpreters may lack _multiprocessing/shm support
    import multiprocessing as _mp
    from multiprocessing import shared_memory as _shm

    _MP_IMPORTED = True
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _MP_IMPORTED = False

__all__ = [
    "shared_memory_available",
    "pin_blas_threads",
    "ArenaSpec",
    "WeightArena",
    "ParallelBackend",
    "MicroBatcher",
    "MicroBatchReport",
    "BLAS_THREAD_VARS",
]

#: environment variables that control BLAS/OpenMP thread pools
BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

_SHM_AVAILABLE: bool | None = None


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here.

    Some sandboxes import the module fine but fail at segment creation
    (no ``/dev/shm``, seccomp).  The probe result is cached.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if not _MP_IMPORTED:
            _SHM_AVAILABLE = False
        else:
            try:
                seg = _shm.SharedMemory(create=True, size=16)
            except Exception:
                _SHM_AVAILABLE = False
            else:
                seg.close()
                try:
                    seg.unlink()
                except Exception:
                    pass
                _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def _spawn_main_importable() -> bool:
    """True when the spawn start method can re-import ``__main__``.

    ``spawn`` children bootstrap by re-importing the parent's main
    module.  When the parent runs from a pipe/heredoc (``python -`` or
    an interactive session), ``__main__.__file__`` points at a
    non-existent path and every worker dies at startup — the pool then
    respawns them forever.  Detect that up front and fall back to
    serial execution instead.
    """
    import __main__

    main_file = getattr(__main__, "__file__", None)
    if main_file is None:  # interactive / embedded: spawn uses a stub main
        return True
    return os.path.exists(main_file)


class pin_blas_threads:
    """Context manager pinning BLAS thread-count env vars to ``n``.

    Worker processes inherit the parent's environment at spawn time and
    numpy reads these variables at import, so wrapping pool creation in
    this context pins every worker's BLAS pool — one process per core,
    one BLAS thread per process, no oversubscription.
    """

    def __init__(self, n: int = 1) -> None:
        self.n = n
        self._saved: dict[str, str | None] = {}

    def __enter__(self) -> "pin_blas_threads":
        for var in BLAS_THREAD_VARS:
            self._saved[var] = os.environ.get(var)
            os.environ[var] = str(self.n)
        return self

    def __exit__(self, *exc) -> None:
        for var, value in self._saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


# ----------------------------------------------------------------------
# shared-memory weight arena

#: arena slots are aligned so views start on cache-line boundaries
_ALIGN = 64

#: segment names created by THIS process (their resource-tracker entry
#: must survive a same-process attach; see :meth:`WeightArena.attach`)
_OWNED_SEGMENTS: set[str] = set()


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to attach an arena.

    ``slots`` lays out the segment: one ``(offset, shape, dtype)`` entry
    per distinct tensor.  ``payload`` is the structure-only pickle whose
    persistent ids index into ``slots``.  The spec itself is tiny (no
    weight bytes) and is shipped once, at pool startup.
    """

    shm_name: str
    slots: tuple[tuple[int, tuple[int, ...], str], ...]
    payload: bytes
    total_bytes: int


class _ArenaPickler(pickle.Pickler):
    """Pickles an object graph, diverting every ndarray to an arena slot."""

    def __init__(self, file, arrays: list[np.ndarray], index: dict[int, int]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._index = index

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray):
            if obj.dtype == object:
                raise TypeError("object arrays cannot live in a weight arena")
            slot = self._index.get(id(obj))
            if slot is None:
                slot = len(self._arrays)
                self._index[id(obj)] = slot
                self._arrays.append(obj)
            return slot
        return None


class _ArenaUnpickler(pickle.Unpickler):
    """Resolves persistent ids back to shared-memory array views."""

    def __init__(self, file, views: list[np.ndarray]):
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid):
        return self._views[pid]


class WeightArena:
    """One shared-memory segment holding a model's tensors exactly once.

    :meth:`publish` (parent side) walks an arbitrary picklable object
    graph — block dictionaries, compiled plans — deduplicates its
    ``ndarray`` leaves by identity, copies each into the segment, and
    produces an :class:`ArenaSpec`.  :meth:`attach` (worker side)
    rebuilds the same graph with the arrays as read-only views into the
    segment: zero copies, one physical set of weights for all workers.

    The publishing process owns the segment and must :meth:`unlink` it;
    attachers only :meth:`close`.
    """

    def __init__(self, shm, spec: ArenaSpec, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self._released = False

    @classmethod
    def publish(cls, payload_obj) -> "WeightArena":
        buf = io.BytesIO()
        arrays: list[np.ndarray] = []
        _ArenaPickler(buf, arrays, {}).dump(payload_obj)
        contiguous = [np.ascontiguousarray(a) for a in arrays]
        slots = []
        total = 0
        for arr in contiguous:
            total = -(-total // _ALIGN) * _ALIGN
            slots.append((total, tuple(arr.shape), arr.dtype.str))
            total += arr.nbytes
        shm = _shm.SharedMemory(create=True, size=max(total, 1))
        for (offset, shape, dtype), arr in zip(slots, contiguous):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            view[...] = arr
        spec = ArenaSpec(
            shm_name=shm.name,
            slots=tuple(slots),
            payload=buf.getvalue(),
            total_bytes=total,
        )
        _OWNED_SEGMENTS.add(shm.name)
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> tuple["WeightArena", object]:
        """Attach by spec; returns (arena, reconstructed payload object)."""
        try:
            # Python >= 3.13: opt out of resource tracking for attachers
            shm = _shm.SharedMemory(name=spec.shm_name, track=False)
        except TypeError:
            shm = _shm.SharedMemory(name=spec.shm_name)
            # Older interpreters register attachers with the resource
            # tracker too, and a worker's tracker would unlink the
            # owner's segment when the worker exits.  Same-process
            # attaches must keep the owner's (single, set-deduplicated)
            # entry alive, hence the _OWNED_SEGMENTS check.
            if spec.shm_name not in _OWNED_SEGMENTS:
                try:  # pragma: no cover - version dependent
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
        views = []
        for offset, shape, dtype in spec.slots:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            views.append(view)
        payload = _ArenaUnpickler(io.BytesIO(spec.payload), views).load()
        return cls(shm, spec, owner=False), payload

    @property
    def nbytes(self) -> int:
        return self.spec.total_bytes

    def close(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
        except BufferError:  # live views keep the mapping; the OS reaps it
            pass

    def unlink(self) -> None:
        if not self.owner:
            return
        _OWNED_SEGMENTS.discard(self.spec.shm_name)
        # Workers share the parent's resource-tracker daemon, and their
        # attach/unregister dance (see :meth:`attach`) may have removed
        # this segment's entry from the shared set.  Re-registering is
        # idempotent and guarantees unlink()'s internal unregister finds
        # the entry instead of tripping a KeyError in the tracker.
        try:  # pragma: no cover - tracker plumbing
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# worker side

_WORKER_STATE: dict = {}


def _worker_init(spec: ArenaSpec) -> None:
    """Pool initializer: attach the arena once, keep views for the life
    of the worker process."""
    arena, payload = WeightArena.attach(spec)
    _WORKER_STATE["arena"] = arena
    _WORKER_STATE["modules"] = payload["modules"]
    _WORKER_STATE["plans"] = payload["plans"]
    _WORKER_STATE["compile_blocks"] = payload["compile_blocks"]
    atexit.register(arena.close)


def _execute(modules, plans, compile_blocks, block_ids, x):
    """Run ``x`` through ``block_ids`` using compiled plans when enabled.

    Plans for unseen (block, shape) pairs are compiled lazily — from the
    shared weights, so lazy compilation in a worker still reads the
    arena, not a private copy.
    """
    for block_id in block_ids:
        key = (block_id, tuple(x.shape[1:]))
        plan = plans.get(key)
        if plan is None and compile_blocks:
            from repro.dnn.compile import compile_module

            plan = compile_module(modules[block_id], key[1])
            plans[key] = plan
        x = plan.forward(x) if plan is not None else modules[block_id](x)
    return x


def _worker_run(job) -> np.ndarray:
    block_ids, x = job
    return _execute(
        _WORKER_STATE["modules"],
        _WORKER_STATE["plans"],
        _WORKER_STATE["compile_blocks"],
        block_ids,
        x,
    )


# ----------------------------------------------------------------------
# backend

_LIVE_BACKENDS: "weakref.WeakSet[ParallelBackend]" = weakref.WeakSet()


def _close_live_backends() -> None:  # pragma: no cover - exit hook
    for backend in list(_LIVE_BACKENDS):
        backend.close()


atexit.register(_close_live_backends)


class ParallelBackend:
    """Multi-core block executor over a shared-memory weight arena.

    Parameters
    ----------
    modules:
        ``block_id -> Layer``, exactly the mapping
        :class:`~repro.serving.executor.BlockwiseRunner` consumes.
    num_procs:
        Worker process count.  ``None``/``0`` uses ``os.cpu_count()``;
        ``1`` selects the in-process serial engine (no pool, no arena).
    compile_blocks:
        Execute blocks through fused :mod:`repro.dnn.compile` plans
        (compiled lazily per (block, input shape) on both sides).
    plan_shapes:
        Optional ``block_id -> per-sample input shape``.  These plans
        are compiled *in the parent* before publishing, so their GEMM
        weight layouts (folded BN, pre-laid-out matrices) land in the
        arena and workers attach them zero-copy.
    min_shard:
        Smallest batch slice worth a worker round-trip.  Batches under
        ``2 * min_shard`` run serially in the parent — the adaptive part
        of the dispatch: IPC is only paid when there is enough compute
        to amortize it.

    Falls back to serial execution (``mode == "serial"``) when shared
    memory is unavailable or the pool cannot be spawned; the API is
    identical either way, so callers never branch.
    """

    def __init__(
        self,
        modules: dict[str, Layer],
        num_procs: int | None = None,
        *,
        compile_blocks: bool = True,
        plan_shapes: dict[str, tuple[int, ...]] | None = None,
        min_shard: int = 4,
        start_method: str = "spawn",
    ) -> None:
        if min_shard < 1:
            raise ValueError("min_shard must be >= 1")
        self.modules = dict(modules)
        self.compile_blocks = compile_blocks
        self.min_shard = min_shard
        self.block_order: tuple[str, ...] = tuple(self.modules)
        requested = num_procs if num_procs else (os.cpu_count() or 1)
        if requested < 1:
            raise ValueError("num_procs must be >= 1 (or None for cpu_count)")

        # execution statistics
        self.calls = 0
        self.sharded_calls = 0
        self.samples = 0

        self._local_plans: dict[tuple[str, tuple[int, ...]], Layer] = {}
        self._pool = None
        self._arena: WeightArena | None = None
        self._closed = False
        self.fallback_reason: str | None = None

        if plan_shapes:
            from repro.dnn.compile import compile_module

            for block_id, shape in plan_shapes.items():
                plan = compile_module(self.modules[block_id], tuple(shape))
                self._local_plans[(block_id, tuple(shape))] = plan

        if requested <= 1:
            self.fallback_reason = "num_procs=1"
        elif not shared_memory_available():
            self.fallback_reason = "shared memory unavailable"
        elif start_method == "spawn" and not _spawn_main_importable():
            self.fallback_reason = "main module not importable by spawn"
        else:
            try:
                self._start_pool(requested, start_method)
            except Exception as exc:  # pragma: no cover - platform specific
                self.fallback_reason = f"pool startup failed: {exc!r}"
                self._pool = None
        self.procs = requested if self._pool is not None else 1
        _LIVE_BACKENDS.add(self)

    def _start_pool(self, procs: int, start_method: str) -> None:
        # plans snapshot per-call buffers lazily; publish them empty
        for plan in self._local_plans.values():
            plan.release_buffers()
        self._arena = WeightArena.publish(
            {
                "modules": self.modules,
                "plans": self._local_plans,
                "compile_blocks": self.compile_blocks,
            }
        )
        ctx = _mp.get_context(start_method)
        with pin_blas_threads(1):
            self._pool = ctx.Pool(
                processes=procs,
                initializer=_worker_init,
                initargs=(self._arena.spec,),
            )

    # -- execution ------------------------------------------------------

    @property
    def mode(self) -> str:
        return "parallel" if self._pool is not None else "serial"

    @classmethod
    def for_model(cls, model, num_procs: int | None = None, **kwargs) -> "ParallelBackend":
        """Backend over a :class:`~repro.dnn.resnet.BlockwiseModel`.

        Publishes one arena slot set for the model's blocks with every
        block's plan pre-compiled at its true input shape, and records
        the block execution order in ``block_order``.
        """
        names = tuple(model.blocks)
        kwargs.setdefault(
            "plan_shapes", {name: model.block_input_shape(name) for name in names}
        )
        backend = cls({name: model.blocks[name] for name in names}, num_procs, **kwargs)
        backend.block_order = names
        return backend

    def _shard_count(self, n: int) -> int:
        if self._pool is None or n < 2 * self.min_shard:
            return 1
        return min(self.procs, n // self.min_shard)

    def run_path(self, block_ids, x: np.ndarray) -> np.ndarray:
        """Run a batch through a block sequence, sharding across workers.

        Shards split the *batch* axis only (``np.array_split`` order is
        preserved on concatenation), so outputs are identical to serial
        execution sample for sample.
        """
        if self._closed:
            raise RuntimeError("backend is closed")
        block_ids = tuple(block_ids)
        missing = [b for b in block_ids if b not in self.modules]
        if missing:
            raise KeyError(f"no modules bound for blocks {missing}")
        self.calls += 1
        self.samples += int(x.shape[0])
        shards = self._shard_count(x.shape[0])
        if shards <= 1:
            return _execute(
                self.modules, self._local_plans, self.compile_blocks, block_ids, x
            )
        self.sharded_calls += 1
        parts = np.array_split(np.ascontiguousarray(x), shards)
        outs = self._pool.map(
            _worker_run, [(block_ids, part) for part in parts], chunksize=1
        )
        return np.concatenate(outs, axis=0)

    def run_block(self, block_id: str, x: np.ndarray) -> np.ndarray:
        """One block over a batch — the :class:`BlockwiseRunner` hook."""
        return self.run_path((block_id,), x)

    def run_model(self, x: np.ndarray) -> np.ndarray:
        """Full forward through ``block_order`` (see :meth:`for_model`)."""
        return self.run_path(self.block_order, x)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and release the arena.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena.unlink()
            self._arena = None

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# adaptive micro-batching

@dataclass(frozen=True)
class MicroBatchReport:
    """Accounting for one flushed micro-batch."""

    size: int
    wall_s: float
    #: what forced the flush: "full", "deadline" or "manual"
    trigger: str


class MicroBatcher:
    """Coalesce single requests into latency-budgeted micro-batches.

    Requests accumulate until either (a) ``max_batch`` is reached or
    (b) the oldest pending request's deadline leaves no slack: flushing
    later than ``deadline − est(n) − safety_s`` would risk missing it.
    ``est(n) = overhead_s + per_sample_s · n`` where ``per_sample_s`` is
    an EWMA of measured execution time, so the batcher adapts to the
    model, the batch size and the machine.

    Drive it with :meth:`submit` on arrival and :meth:`poll` on a timer
    (``next_flush_at`` says when); both return flushed
    ``(request_id, output)`` pairs or ``None``.
    """

    def __init__(
        self,
        backend: ParallelBackend,
        block_ids,
        *,
        max_batch: int = 32,
        safety_s: float = 0.002,
        est_alpha: float = 0.25,
        per_sample_s: float = 0.005,
        overhead_s: float = 0.001,
        clock=time.perf_counter,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if not 0.0 < est_alpha <= 1.0:
            raise ValueError("est_alpha must be in (0, 1]")
        self.backend = backend
        self.block_ids = tuple(block_ids)
        self.max_batch = max_batch
        self.safety_s = safety_s
        self.est_alpha = est_alpha
        self.per_sample_s = per_sample_s
        self.overhead_s = overhead_s
        self._clock = clock
        self._pending: list[tuple[object, np.ndarray, float]] = []
        self.reports: list[MicroBatchReport] = []

    def __len__(self) -> int:
        return len(self._pending)

    def estimate_s(self, n: int) -> float:
        """Predicted wall time of an ``n``-sample flush."""
        return self.overhead_s + self.per_sample_s * n

    def next_flush_at(self) -> float:
        """Latest safe flush time for the current backlog (inf if empty)."""
        if not self._pending:
            return float("inf")
        earliest = min(deadline for _, _, deadline in self._pending)
        return earliest - self.estimate_s(len(self._pending)) - self.safety_s

    def submit(
        self, request_id, x: np.ndarray, deadline_at: float, now: float
    ) -> list[tuple[object, np.ndarray]] | None:
        """Enqueue one sample; returns flushed results when it triggers.

        ``x`` is one sample: either unbatched (``(C, H, W)`` / ``(F,)``)
        or with a leading batch axis of 1.
        """
        if x.ndim in (1, 3):  # unbatched sample -> add the batch axis
            x = x[None, ...]
        elif x.shape[0] != 1:
            raise ValueError("submit() takes one sample at a time")
        self._pending.append((request_id, x, deadline_at))
        if len(self._pending) >= self.max_batch:
            return self._flush("full")
        if now >= self.next_flush_at():
            return self._flush("deadline")
        return None

    def poll(self, now: float) -> list[tuple[object, np.ndarray]] | None:
        """Timer hook: flush if the latency budget says it is time."""
        if self._pending and now >= self.next_flush_at():
            return self._flush("deadline")
        return None

    def flush(self) -> list[tuple[object, np.ndarray]] | None:
        """Flush whatever is pending (end of stream)."""
        if not self._pending:
            return None
        return self._flush("manual")

    def _flush(self, trigger: str) -> list[tuple[object, np.ndarray]]:
        batch = self._pending
        self._pending = []
        x = np.concatenate([sample for _, sample, _ in batch], axis=0)
        start = self._clock()
        out = self.backend.run_path(self.block_ids, x)
        wall = self._clock() - start
        n = len(batch)
        observed = max(wall - self.overhead_s, 0.0) / n
        self.per_sample_s += self.est_alpha * (observed - self.per_sample_s)
        self.reports.append(MicroBatchReport(size=n, wall_s=wall, trigger=trigger))
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record(
                "microbatch.flush",
                start,
                wall,
                cat="serving",
                track="microbatch",
                args={"size": n, "trigger": trigger},
            )
        return [
            (request_id, out[i : i + 1])
            for i, (request_id, _, _) in enumerate(batch)
        ]
