"""Freelist pooling for the serving data plane's per-request records.

A serving run at 10⁵–10⁶ admitted requests spends a surprising share of
its wall time in the allocator: one :class:`~repro.serving.queueing.
ServingRequest` per request, plus the garbage-collector pressure of
freeing them all between runs.  :class:`RequestPool` keeps every record
ever created and hands them back out on the next run, reset field by
field — the steady-state allocation rate of a repeated benchmark run
drops to zero.

Pooling is safe because the runtime owns the full request lifecycle:
records escape only through ``ServingRuntime.last_requests``, which is
documented to be invalidated by the next ``run()`` on the same runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Path
from repro.serving.queueing import ServingRequest

__all__ = ["RequestPool"]

_NAN = float("nan")


@dataclass
class RequestPool:
    """Recycles :class:`ServingRequest` records across serving runs."""

    _items: list[ServingRequest] = field(default_factory=list)
    _used: int = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def in_use(self) -> int:
        return self._used

    def reset(self) -> None:
        """Reclaim every record (start of a new run)."""
        self._used = 0

    def acquire(
        self,
        task_id: int,
        request_id: int,
        path: Path,
        created_at: float,
        deadline_at: float,
        bits: float,
    ) -> ServingRequest:
        """A fresh-looking record, recycled when one is available."""
        if self._used < len(self._items):
            request = self._items[self._used]
            request.task_id = task_id
            request.request_id = request_id
            request.path = path
            request.created_at = created_at
            request.deadline_at = deadline_at
            request.bits = bits
            request.uplink_done_at = _NAN
            request.dispatched_at = _NAN
            request.started_at = _NAN
            request.completed_at = _NAN
            request.compute_time_s = 0.0
            request.drop_reason = None
            request.service_done_at = _NAN
            request.hops = None
        else:
            request = ServingRequest(
                task_id=task_id,
                request_id=request_id,
                path=path,
                created_at=created_at,
                deadline_at=deadline_at,
                bits=bits,
            )
            self._items.append(request)
        self._used += 1
        return request
