"""Worker-pool path executor with shared-block prefix caching.

The executor drains one *batching window* of requests at a time and
charges simulated GPU time for it.  Costs are grounded in the profiled
per-block compute times ``c(s)`` the DOT solver already consumes, with
a sub-linear batching model: a block processing a batch of ``n``
requests costs

    ``c(s) · (1 + (n − 1) · batch_efficiency)``

(``batch_efficiency = 1`` degenerates to per-request serial cost,
``0`` to perfect amortization).

**Shared-block prefix cache.**  Paths that OffloaDNN couples through
shared frozen blocks traverse identical block *prefixes* before
diverging into their fine-tuned suffixes.  With the cache enabled the
window's requests are merged along a prefix trie: every trie node is
one fused batch through one block, so a frozen trunk shared by k paths
runs once over the union batch instead of k times over the split
batches.  Because the batch cost is sub-linear, merging is a strict
win whenever two same-window requests share a prefix block.  Disabled,
each path's batch pays its full block sequence independently — exactly
the dedicated-DNN (SEM-O-RAN-style) serving discipline.

:class:`BlockwiseRunner` is the tensor-level counterpart: it executes
real numpy modules (:mod:`repro.dnn.graph`) block by block, memoizing
activations at frozen-prefix boundaries so one input evaluated under
several coupled paths computes the shared trunk once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.catalog import Path
from repro.dnn.layers import Layer
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, current_tracer
from repro.serving.queueing import ServingRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.parallel import ParallelBackend

__all__ = ["WindowReport", "BatchExecutor", "BlockwiseRunner"]


@dataclass(frozen=True)
class WindowReport:
    """Accounting for one executed batching window."""

    requests: int
    #: simulated GPU seconds charged for the window
    compute_s: float
    #: what the same window would cost without prefix merging
    unshared_compute_s: float
    #: trie nodes where ≥ 2 distinct paths were fused
    prefix_merges: int
    started_at: float
    finished_at: float

    @property
    def saved_s(self) -> float:
        return self.unshared_compute_s - self.compute_s


def _window_costs(
    requests: list[ServingRequest],
    batch_efficiency: float,
    blocks_for=None,
) -> tuple[float, float, int]:
    """(merged cost, unmerged cost, merge count) for one window.

    The merged cost walks a prefix trie keyed by the block-id sequence;
    the unmerged cost batches per path only.  ``blocks_for`` overrides
    the block sequence considered per request (default: the full path)
    — the cluster executor passes per-node *segments* so fusion happens
    over exactly the blocks co-placed on one node.
    """
    if blocks_for is None:
        blocks_for = lambda request: request.path.blocks  # noqa: E731

    def batch_cost(block_compute_s: float, n: int) -> float:
        return block_compute_s * (1.0 + (n - 1) * batch_efficiency)

    # trie node -> (block compute, request count, distinct path count)
    trie: dict[tuple[str, ...], list] = {}
    by_path: dict[str, tuple[tuple, int]] = {}
    for request in requests:
        blocks = blocks_for(request)
        prefix: tuple[str, ...] = ()
        for block in blocks:
            prefix = prefix + (block.block_id,)
            node = trie.setdefault(prefix, [block.compute_time_s, 0, set()])
            node[1] += 1
            node[2].add(request.path.path_id)
        known = by_path.get(request.path.path_id)
        by_path[request.path.path_id] = (blocks, (known[1] if known else 0) + 1)

    merged = sum(batch_cost(c, n) for c, n, _paths in trie.values())
    unmerged = sum(
        batch_cost(block.compute_time_s, n)
        for blocks, n in by_path.values()
        for block in blocks
    )
    merges = sum(1 for _c, _n, paths in trie.values() if len(paths) > 1)
    return merged, unmerged, merges


@dataclass
class BatchExecutor:
    """Pool of GPU workers executing batching windows.

    Each window runs as one fused job on the earliest-free worker;
    several windows can be in flight on different workers.
    """

    num_workers: int = 1
    #: marginal cost of one extra request in a batch, in [0, 1]
    batch_efficiency: float = 0.5
    prefix_cache: bool = True
    #: data-parallel processes per window (the simulated counterpart of
    #: :class:`repro.serving.parallel.ParallelBackend` sharding)
    num_procs: int = 1
    #: fixed per-shard cost of the scatter/gather round-trip
    shard_overhead_s: float = 0.0
    #: smallest request count worth one shard
    min_shard: int = 1
    #: DES-clock tracer recording one span per executed window
    tracer: Tracer | NullTracer = NULL_TRACER
    _worker_free_at: list[float] = field(default_factory=list)
    windows: list[WindowReport] = field(default_factory=list)
    total_compute_s: float = 0.0
    compute_saved_s: float = 0.0
    prefix_merges: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= self.batch_efficiency <= 1.0:
            raise ValueError("batch_efficiency must be in [0, 1]")
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.shard_overhead_s < 0.0:
            raise ValueError("shard_overhead_s must be >= 0")
        if self.min_shard < 1:
            raise ValueError("min_shard must be >= 1")
        self._worker_free_at = [0.0] * self.num_workers

    def _data_parallel(self, cost: float, n: int) -> float:
        """Shard a window's cost across ``num_procs`` processes.

        Mirrors :meth:`ParallelBackend._shard_count`: a window of ``n``
        requests splits into at most ``n // min_shard`` shards (batches
        below ``2 * min_shard`` stay serial), each shard paying the
        scatter/gather overhead on top of its slice of the compute.
        """
        if self.num_procs <= 1 or n < 2 * self.min_shard:
            return cost
        shards = min(self.num_procs, n // self.min_shard)
        return cost / shards + self.shard_overhead_s

    def dispatch(self, requests: list[ServingRequest], now: float) -> WindowReport:
        """Execute one window; stamps the requests and returns the report."""
        if not requests:
            raise ValueError("cannot dispatch an empty window")
        merged, unmerged, merges = _window_costs(requests, self.batch_efficiency)
        merged = self._data_parallel(merged, len(requests))
        unmerged = self._data_parallel(unmerged, len(requests))
        cost = merged if self.prefix_cache else unmerged
        worker = min(range(self.num_workers), key=lambda w: self._worker_free_at[w])
        start = max(now, self._worker_free_at[worker])
        finish = start + cost
        self._worker_free_at[worker] = finish
        share = cost / len(requests)
        for request in requests:
            request.started_at = start
            request.compute_time_s = share
        report = WindowReport(
            requests=len(requests),
            compute_s=cost,
            unshared_compute_s=unmerged,
            prefix_merges=merges if self.prefix_cache else 0,
            started_at=start,
            finished_at=finish,
        )
        self.windows.append(report)
        self.total_compute_s += cost
        if self.prefix_cache:
            self.compute_saved_s += report.saved_s
            self.prefix_merges += merges
        if self.tracer.enabled:
            self.tracer.record(
                "window",
                start,
                cost,
                cat="executor",
                track=f"worker{worker}",
                args={
                    "requests": len(requests),
                    "merges": report.prefix_merges,
                    "saved_s": report.saved_s,
                },
            )
        return report

    def busy_workers(self, now: float) -> int:
        """Workers still executing at virtual time ``now`` (sampler probe)."""
        return sum(1 for free_at in self._worker_free_at if free_at > now)

    @property
    def busy_until(self) -> float:
        return max(self._worker_free_at)

    def utilization(self, duration_s: float) -> float:
        """Mean fraction of ``duration_s`` the workers spent computing."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return min(1.0, self.total_compute_s / (self.num_workers * duration_s))


@dataclass
class BlockwiseRunner:
    """Run a path's real numpy blocks, caching frozen-prefix activations.

    ``modules`` maps ``block_id`` to the :mod:`repro.dnn.graph` module
    implementing the block; ``cacheable`` limits memoization to frozen
    (shared) blocks — fine-tuned suffixes always recompute.  The cache
    is keyed by ``(input_key, precision, block-id prefix)``, so one
    input tensor evaluated under several paths reuses the shared
    trunk's activations — but only within one numeric format: fp32 and
    int8 executions of the same trunk produce different tensors and
    must never serve each other.

    The cache is a bounded LRU: a long-lived runtime would otherwise
    retain one activation tensor per ``(input_key, prefix)`` forever.
    ``cache_capacity=None`` removes the bound; evictions are counted in
    ``cache_evictions`` next to the hit/miss counters.

    With ``compile_blocks=True`` each block is compiled into a fused
    execution plan (:mod:`repro.dnn.compile`) the first time it runs on
    a given input shape, and the plan serves subsequent calls.  Plans
    snapshot block weights — call :meth:`clear_compiled` after mutating
    the underlying modules (pruning, fine-tuning).

    With ``parallel`` set to a :class:`repro.serving.parallel.
    ParallelBackend` over the same modules, every block forward is
    delegated to the backend, which shards large batches across worker
    processes.  Sharding is along the batch axis only — the runner
    still memoizes prefix activations in-process, so the shared-trunk
    cache semantics are unchanged (and the backend owns plan
    compilation, so ``compile_blocks`` is ignored on that route).
    """

    modules: dict[str, Layer]
    cacheable: frozenset[str] = frozenset()
    #: max cached activations; None = unbounded
    cache_capacity: int | None = 256
    compile_blocks: bool = False
    #: execute blocks as int8 quantized plans (``"int8"``; implies
    #: ``compile_blocks``) — activations cached under this mode are
    #: precision-tagged so fp32 and int8 runs never share tensors
    quantize: str | None = None
    #: optional multi-core execution backend (see repro.serving.parallel)
    parallel: "ParallelBackend | None" = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    _cache: OrderedDict[tuple[int, str, tuple[str, ...]], np.ndarray] = field(
        default_factory=OrderedDict
    )
    _compiled: dict[tuple[str, str | None, tuple[int, ...]], Layer] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1 or None")
        if self.quantize is not None:
            if self.quantize != "int8":
                raise ValueError(f"unsupported quantize mode: {self.quantize!r}")
            if self.parallel is not None:
                raise ValueError(
                    "quantize is not supported with a parallel backend"
                )
            self.compile_blocks = True

    @property
    def precision(self) -> str:
        """Numeric format this runner executes blocks at."""
        return self.quantize or "fp32"

    def _forward(self, block_id: str, x: np.ndarray) -> np.ndarray:
        if self.parallel is not None:
            return self.parallel.run_block(block_id, x)
        module = self.modules[block_id]
        if not self.compile_blocks:
            return module(x)
        key = (block_id, self.quantize, tuple(x.shape[1:]))
        plan = self._compiled.get(key)
        if plan is None:
            from repro.dnn.compile import compile_module

            plan = compile_module(module, key[2], quantize=self.quantize)
            self._compiled[key] = plan
        return plan.forward(x)

    def _remember(self, key: tuple[int, str, tuple[str, ...]], x: np.ndarray) -> None:
        self._cache[key] = x
        self._cache.move_to_end(key)
        if self.cache_capacity is not None and len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
            self.cache_evictions += 1

    def run(self, path: Path, x: np.ndarray, input_key: int = 0) -> np.ndarray:
        missing = [b.block_id for b in path.blocks if b.block_id not in self.modules]
        if missing:
            raise KeyError(f"no modules bound for blocks {missing}")
        block_ids = [b.block_id for b in path.blocks]
        # Cache entries are tagged with the executing precision: an fp32
        # and an int8 path sharing a trunk must never serve each other's
        # activations (they are numerically different tensors).
        precision = self.precision
        # longest cached prefix of cacheable blocks
        start = 0
        for i in range(len(block_ids), 0, -1):
            prefix = tuple(block_ids[:i])
            if not all(bid in self.cacheable for bid in prefix):
                continue
            cached = self._cache.get((input_key, precision, prefix))
            if cached is not None:
                self._cache.move_to_end((input_key, precision, prefix))
                x = cached
                start = i
                self.cache_hits += 1
                break
        if start == 0:
            self.cache_misses += 1
        tracer = current_tracer()
        for i in range(start, len(block_ids)):
            if tracer.enabled:
                with tracer.span(
                    f"block.{block_ids[i]}", cat="runner", track="blockwise"
                ):
                    x = self._forward(block_ids[i], x)
            else:
                x = self._forward(block_ids[i], x)
            prefix = tuple(block_ids[: i + 1])
            if all(bid in self.cacheable for bid in prefix):
                self._remember((input_key, precision, prefix), x)
        return x

    def clear(self) -> None:
        self._cache.clear()

    def clear_compiled(self) -> None:
        """Drop compiled plans (stale after mutating the modules)."""
        self._compiled.clear()
