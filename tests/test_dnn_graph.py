"""Unit tests for module composition (Sequential / Residual)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.graph import NamedModule, Residual, Sequential
from repro.dnn.layers import BatchNorm2d, Conv2d, Linear, ReLU


def _body(c_in: int, c_out: int, stride: int = 1) -> Sequential:
    rng = np.random.default_rng(0)
    return Sequential(
        Conv2d(c_in, c_out, kernel=3, stride=stride, padding=1, rng=rng),
        BatchNorm2d(c_out),
        ReLU(),
        Conv2d(c_out, c_out, kernel=3, stride=1, padding=1, rng=rng),
        BatchNorm2d(c_out),
    )


class TestSequential:
    def test_forward_chains_layers(self):
        seq = Sequential(Conv2d(3, 4, kernel=3, padding=1), ReLU())
        out = seq(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert out.shape == (1, 4, 8, 8)
        assert (out >= 0).all()

    def test_output_shape_accumulates(self):
        seq = Sequential(
            Conv2d(3, 4, kernel=3, stride=2, padding=1),
            Conv2d(4, 8, kernel=3, stride=2, padding=1),
        )
        assert seq.output_shape((3, 16, 16)) == (8, 4, 4)

    def test_flops_is_sum(self):
        a = Conv2d(3, 4, kernel=3, padding=1)
        b = Conv2d(4, 8, kernel=3, padding=1)
        seq = Sequential(a, b)
        assert seq.flops((3, 8, 8)) == a.flops((3, 8, 8)) + b.flops((4, 8, 8))

    def test_parameters_collected(self):
        seq = Sequential(Conv2d(3, 4, kernel=3), BatchNorm2d(4))
        assert seq.param_count() == 4 * 3 * 9 + 16

    def test_iter_layers_flattens(self):
        inner = Sequential(ReLU(), ReLU())
        outer = Sequential(inner, ReLU())
        assert len(list(outer.iter_layers())) == 3

    def test_activation_size_is_peak(self):
        seq = Sequential(
            Conv2d(3, 16, kernel=3, padding=1),  # activation 16*8*8 = 1024
            Conv2d(16, 2, kernel=3, padding=1),  # activation 2*8*8 = 128
        )
        assert seq.activation_size((3, 8, 8)) == 16 * 8 * 8


class TestResidual:
    def test_identity_shortcut_adds_input(self):
        body = _body(4, 4)
        # zero the body so output == relu(identity)
        for layer in body.layers:
            if isinstance(layer, Conv2d):
                layer.weight = np.zeros_like(layer.weight)
        res = Residual(body)
        x = np.random.default_rng(1).normal(size=(1, 4, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(res(x), np.maximum(x, 0.0), atol=1e-5)

    def test_projection_shortcut_changes_channels(self):
        rng = np.random.default_rng(2)
        res = Residual(
            _body(4, 8, stride=2),
            Sequential(Conv2d(4, 8, kernel=1, stride=2, rng=rng), BatchNorm2d(8)),
        )
        out = res(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 4, 4)

    def test_mismatched_shapes_raise(self):
        res = Residual(_body(4, 8, stride=2))  # no shortcut but shape changes
        with pytest.raises(ValueError, match="residual shape mismatch"):
            res(np.zeros((1, 4, 8, 8), dtype=np.float32))

    def test_output_nonnegative(self):
        res = Residual(_body(4, 4))
        x = np.random.default_rng(3).normal(size=(2, 4, 5, 5)).astype(np.float32)
        assert (res(x) >= 0).all()

    def test_flops_includes_shortcut_and_add(self):
        body = _body(4, 8, stride=2)
        shortcut = Sequential(Conv2d(4, 8, kernel=1, stride=2), BatchNorm2d(8))
        res = Residual(body, shortcut)
        expected = (
            body.flops((4, 8, 8))
            + shortcut.flops((4, 8, 8))
            + 2 * 8 * 4 * 4
        )
        assert res.flops((4, 8, 8)) == expected


class TestNamedModule:
    def test_name_retained(self):
        mod = NamedModule("layer1", ReLU())
        assert mod.name == "layer1"

    def test_behaves_like_sequential(self):
        mod = NamedModule("head", Linear(8, 3))
        out = mod(np.zeros((2, 8), dtype=np.float32))
        assert out.shape == (2, 3)

    def test_total_activations_counts_all_layers(self):
        mod = NamedModule(
            "blk",
            Conv2d(3, 4, kernel=3, padding=1),
            ReLU(),
        )
        # conv out 4*8*8 + relu out 4*8*8
        assert mod.total_activations((3, 8, 8)) == 2 * 4 * 8 * 8
