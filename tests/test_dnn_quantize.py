"""Int8 quantization: round-trip bounds, e2e parity, determinism.

The quantize/dequantize primitives are exact-arithmetic claims (f64
internal math) so the hypothesis suite proves hard error bounds; the
end-to-end suite checks the property that actually matters to the
catalog — int8 plans agree with fp32 on top-1 within a stated
tolerance and are bit-identical across runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.compile import compile_module
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.pruning import prune_resnet
from repro.dnn.quantize import (
    INT8_ACCURACY_DROP,
    QMAX,
    QuantizedModule,
    activation_scale,
    dequantize_per_channel,
    dequantize_tensor,
    default_calibration_batch,
    quantize_per_channel,
    quantize_tensor,
    weight_scales,
)
from repro.dnn.resnet import build_resnet18

#: worst measured Table I config (CONFIG C) sits at 0.88 agreement on
#: the seeded probe; anything under this indicates a broken requant path
TOP1_AGREEMENT_TOL = 0.75

SHAPES = st.sampled_from([(4, 3, 3, 3), (8, 4), (1, 1), (6, 2, 1, 1), (3, 5)])


def _weights(shape, seed: int, exponent: int) -> np.ndarray:
    """Seeded weights scaled to 10^exponent, with degenerate channels."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape) * 10.0**exponent
    if shape[0] >= 2:
        w[0] = 0.0  # all-zero output channel
    if shape[0] >= 3:
        w[1] = w[1].flat[0]  # constant channel
    return w


# -- per-channel weight round-trip ------------------------------------------


@given(
    shape=SHAPES,
    seed=st.integers(0, 2**16),
    exponent=st.integers(-30, 30),
)
@settings(max_examples=120, deadline=None)
def test_weight_roundtrip_error_bounded(shape, seed, exponent):
    """|w − deq(quant(w))| ≤ scale/2 per channel — the rounding bound."""
    w = _weights(shape, seed, exponent)
    scales = weight_scales(w)
    q = quantize_per_channel(w, scales)
    assert q.dtype == np.int8
    # symmetric range: -128 is never produced
    assert int(q.min()) >= -QMAX and int(q.max()) <= QMAX
    back = dequantize_per_channel(q, scales)
    err = np.abs(back.astype(np.float64) - w)
    bound = scales.reshape((-1,) + (1,) * (w.ndim - 1)) * 0.5
    # float32 output adds one ulp of slack at extreme magnitudes
    assert np.all(err <= bound + np.abs(w) * 1e-6 + 1e-30)


@given(shape=SHAPES, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_zero_and_constant_channels_are_exact(shape, seed):
    w = _weights(shape, seed, 0)
    scales = weight_scales(w)
    back = dequantize_per_channel(quantize_per_channel(w, scales), scales)
    if shape[0] >= 2:
        # the all-zero channel reconstructs exactly (scale 1.0 by definition)
        np.testing.assert_array_equal(back[0], np.zeros_like(back[0]))
        assert scales[0] == 1.0
    if shape[0] >= 3:
        # a constant channel hits the grid exactly: value = scale * 127
        np.testing.assert_allclose(
            back[1].astype(np.float64), w[1], rtol=1e-6, atol=1e-30
        )


def test_weight_scales_axis_and_shape():
    w = np.zeros((4, 3, 2, 2))
    w[2, 1, 0, 0] = 254.0
    scales = weight_scales(w)
    assert scales.shape == (4,)
    assert scales[2] == pytest.approx(2.0)
    assert scales[0] == scales[1] == scales[3] == 1.0


def test_quantize_clips_out_of_range_values():
    w = np.array([[300.0, -300.0, 1.0]])
    q = quantize_per_channel(w, np.array([1.0]))
    np.testing.assert_array_equal(q, [[QMAX, -QMAX, 1]])


# -- per-tensor activation round-trip ---------------------------------------


@given(
    shape=st.lists(st.integers(1, 6), min_size=1, max_size=4).map(tuple),
    seed=st.integers(0, 2**16),
    exponent=st.integers(-20, 20),
)
@settings(max_examples=100, deadline=None)
def test_tensor_roundtrip_error_bounded(shape, seed, exponent):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape) * 10.0**exponent
    scale = activation_scale(x)
    q = quantize_tensor(x, scale)
    assert int(q.min()) >= -QMAX and int(q.max()) <= QMAX
    back = dequantize_tensor(q, scale)
    assert np.all(
        np.abs(back.astype(np.float64) - x) <= scale * 0.5 + np.abs(x) * 1e-6
    )


def test_activation_scale_degenerate_tensors():
    assert activation_scale(np.zeros((3, 3))) == 1.0
    assert activation_scale(np.zeros((0,))) == 1.0
    assert activation_scale(np.full((2, 2), 254.0)) == pytest.approx(2.0)


# -- end-to-end parity on the Table I configurations ------------------------


def _config_model(name: str, width: int = 8, input_size: int = 16):
    config = TABLE_I_CONFIGS[name]
    model = build_resnet18(
        num_classes=10, input_size=input_size, width=width, seed=0
    )
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


class TestEndToEndParity:
    @pytest.mark.parametrize("name", sorted(TABLE_I_CONFIGS))
    def test_top1_agreement_with_fp32(self, name):
        model = _config_model(name)
        fp32 = compile_module(model)
        int8 = compile_module(model, quantize="int8")
        assert isinstance(int8, QuantizedModule)
        assert int8.quantized_steps > 0
        x = np.random.default_rng(7).standard_normal(
            (16, *model.input_shape), dtype=np.float32
        )
        ref = np.argmax(fp32.forward(x), axis=1)
        got = np.argmax(int8.forward(x), axis=1)
        agreement = float(np.mean(ref == got))
        assert agreement >= TOP1_AGREEMENT_TOL, (
            f"{name}: top-1 agreement {agreement:.2f} < {TOP1_AGREEMENT_TOL}"
        )

    def test_bit_identical_across_runs_and_recompiles(self):
        model = _config_model("CONFIG A")
        x = np.random.default_rng(3).standard_normal(
            (4, *model.input_shape), dtype=np.float32
        )
        plan = compile_module(model, quantize="int8")
        first = plan.forward(x)
        np.testing.assert_array_equal(first, plan.forward(x))
        # an independently compiled plan reproduces the same bytes
        replica = compile_module(model, quantize="int8")
        np.testing.assert_array_equal(first, replica.forward(x))

    def test_plan_metadata_and_trace_labels(self):
        model = _config_model("CONFIG B")
        plan = compile_module(model, quantize="int8")
        assert plan.kind == "compiled-int8"
        assert plan.precision == "int8"
        labels = [s.label for s in plan.steps]
        assert any(label.startswith("int8.") for label in labels)
        assert "int8.quantize" in labels

    def test_int8_weights_are_4x_smaller(self):
        model = _config_model("CONFIG A")
        fp32 = compile_module(model)
        int8 = compile_module(model, quantize="int8")
        from repro.dnn.quantize import plan_param_bytes

        ratio = int8.param_bytes() / plan_param_bytes(fp32)
        # int8 weights + f32 scale/bias vectors: strictly under 1/3
        assert ratio < 1 / 3

    def test_calibration_batch_shape_validated(self):
        model = _config_model("CONFIG A")
        bad = np.zeros((4, 1, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            compile_module(model, quantize="int8", calibration=bad)

    def test_default_calibration_is_deterministic(self):
        a = default_calibration_batch((3, 8, 8))
        b = default_calibration_batch((3, 8, 8))
        np.testing.assert_array_equal(a, b)
        assert a.shape == (8, 3, 8, 8) and a.dtype == np.float32

    def test_accuracy_drop_constant_is_conservative(self):
        assert 0.0 < INT8_ACCURACY_DROP <= 0.01
