"""Unit tests for the Eq. (1a) objective and (1b)-(1g) constraint checks."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import (
    check_constraints,
    end_to_end_latency,
    objective_breakdown,
    objective_value,
    transmission_time,
)
from repro.core.solution import Assignment, DOTSolution
from tests.conftest import make_block, make_path, make_task


class TestLatencyFunctions:
    def test_transmission_time_formula(self):
        task = make_task(1)
        path = make_path(task, "p", (make_block("b"),))
        # 350 kb over 5 RBs of 0.35 Mbps = 0.2 s
        assert transmission_time(path, 5, 350_000.0) == pytest.approx(0.2)

    def test_zero_rbs_infinite(self):
        task = make_task(1)
        path = make_path(task, "p", (make_block("b"),))
        assert transmission_time(path, 0, 350_000.0) == float("inf")

    def test_end_to_end_adds_compute(self):
        task = make_task(1)
        path = make_path(task, "p", (make_block("b", compute_time_s=0.05),))
        assert end_to_end_latency(path, 5, 350_000.0) == pytest.approx(0.25)


class TestObjective:
    def test_full_rejection_cost(self, tiny_problem):
        solution = DOTSolution()
        for task in tiny_problem.tasks:
            solution.assignments[task.task_id] = Assignment(
                task=task, path=None, admission_ratio=0.0, radio_blocks=0
            )
        breakdown = objective_breakdown(tiny_problem, solution)
        assert breakdown.rejection == pytest.approx(sum(t.priority for t in tiny_problem.tasks))
        assert breakdown.training == 0.0
        assert breakdown.radio == 0.0
        assert breakdown.inference == 0.0
        assert objective_value(tiny_problem, solution) == pytest.approx(
            tiny_problem.alpha * breakdown.rejection
        )

    def test_admission_reduces_rejection_term(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        breakdown = objective_breakdown(tiny_problem, solution)
        assert breakdown.rejection == pytest.approx(0.0, abs=1e-9)
        assert breakdown.radio > 0.0
        assert breakdown.inference > 0.0

    def test_breakdown_total_matches_value(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        breakdown = objective_breakdown(tiny_problem, solution)
        assert breakdown.total == pytest.approx(objective_value(tiny_problem, solution))

    def test_alpha_weighting(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        breakdown = objective_breakdown(tiny_problem, solution)
        manual = tiny_problem.alpha * breakdown.rejection + (
            1 - tiny_problem.alpha
        ) * breakdown.resource
        assert breakdown.total == pytest.approx(manual)


class TestConstraintChecks:
    def test_feasible_solution_passes(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        report = check_constraints(tiny_problem, solution)
        assert report.feasible, report.violations

    def test_memory_violation_detected(self, tiny_problem):
        task = tiny_problem.tasks[0]
        big = make_block("huge", memory_gb=100.0)
        path = make_path(task, "huge-path", (big,), accuracy=0.99)
        solution = DOTSolution()
        solution.assignments[task.task_id] = Assignment(
            task=task, path=path, admission_ratio=1.0, radio_blocks=10
        )
        for other in tiny_problem.tasks[1:]:
            solution.assignments[other.task_id] = Assignment(
                task=other, path=None, admission_ratio=0.0, radio_blocks=0
            )
        report = check_constraints(tiny_problem, solution)
        assert any("(1b)" in v for v in report.violations)

    def test_rate_violation_detected(self, tiny_problem):
        task = tiny_problem.tasks[0]
        path = tiny_problem.catalog.paths_for(task)[0]
        solution = DOTSolution()
        solution.assignments[task.task_id] = Assignment(
            task=task, path=path, admission_ratio=1.0, radio_blocks=1  # too few
        )
        for other in tiny_problem.tasks[1:]:
            solution.assignments[other.task_id] = Assignment(
                task=other, path=None, admission_ratio=0.0, radio_blocks=0
            )
        report = check_constraints(tiny_problem, solution)
        assert any("(1e)" in v for v in report.violations)

    def test_accuracy_violation_detected(self, tiny_problem):
        task = tiny_problem.tasks[0]  # requires 0.8
        low = make_path(task, "low-acc", (make_block("weak"),), accuracy=0.5)
        solution = DOTSolution()
        solution.assignments[task.task_id] = Assignment(
            task=task, path=low, admission_ratio=1.0, radio_blocks=40
        )
        for other in tiny_problem.tasks[1:]:
            solution.assignments[other.task_id] = Assignment(
                task=other, path=None, admission_ratio=0.0, radio_blocks=0
            )
        report = check_constraints(tiny_problem, solution)
        assert any("(1f)" in v for v in report.violations)

    def test_latency_violation_detected(self, tiny_problem):
        task = tiny_problem.tasks[0]  # limit 0.3 s
        slow = make_path(
            task, "slow", (make_block("slow-block", compute_time_s=0.5),), accuracy=0.9
        )
        solution = DOTSolution()
        solution.assignments[task.task_id] = Assignment(
            task=task, path=slow, admission_ratio=1.0, radio_blocks=40
        )
        for other in tiny_problem.tasks[1:]:
            solution.assignments[other.task_id] = Assignment(
                task=other, path=None, admission_ratio=0.0, radio_blocks=0
            )
        report = check_constraints(tiny_problem, solution)
        assert any("(1g)" in v for v in report.violations)

    def test_missing_assignment_detected(self, tiny_problem):
        solution = DOTSolution()
        report = check_constraints(tiny_problem, solution)
        assert not report.feasible
        assert any("without an assignment" in v for v in report.violations)
