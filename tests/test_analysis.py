"""Unit tests for the figure-data assembly and text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figures import (
    fig6_runtime_comparison,
    fig7_cost_and_memory,
    fig8_cost_breakdown,
    fig9_admission_ratios,
    fig11_emulation_latency,
)
from repro.analysis.report import format_series, format_table, render_figure_report


class TestFig6Data:
    def test_series_shapes(self):
        data = fig6_runtime_comparison(max_tasks=2)
        assert data["num_tasks"] == [1, 2]
        assert len(data["offloadnn_s"]) == 2
        assert all(t > 0 for t in data["optimum_s"])

    def test_optimum_slower_at_two_tasks(self):
        data = fig6_runtime_comparison(max_tasks=2)
        assert data["optimum_s"][1] > data["offloadnn_s"][1]


class TestFig7Fig8Data:
    def test_fig7_normalization(self):
        data = fig7_cost_and_memory(max_tasks=2)
        assert max(data["offloadnn_cost"] + data["optimum_cost"]) == pytest.approx(1.0)
        assert all(0 <= m <= 1 for m in data["offloadnn_memory"])

    def test_fig8_panels_present(self):
        data = fig8_cost_breakdown(max_tasks=2)
        assert len(data) == 9
        assert data["offloadnn_weighted_admission"][0] > 0


class TestFig9Data:
    def test_three_rates_twenty_tasks(self):
        data = fig9_admission_ratios()
        assert set(data) == {"low", "medium", "high"}
        for series in data.values():
            assert len(series["offloadnn"]) == 20
            assert len(series["semoran"]) == 20


class TestFig11Data:
    def test_structure(self):
        data = fig11_emulation_latency(num_tasks=2, duration_s=4.0)
        assert set(data["series"]) == {1, 2}
        entry = data["series"][1]
        assert len(entry["times_s"]) == len(entry["latency_s"])
        assert entry["limit_s"] == pytest.approx(0.2)
        assert isinstance(data["within_limits"], bool)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "2.500" in lines[3]

    def test_format_series(self):
        assert format_series("x", [1.0, 2.0], precision=1) == "x: [1.0, 2.0]"

    def test_render_figure_report(self):
        text = render_figure_report("Fig. X", {"panel": "body"})
        assert "=== Fig. X ===" in text
        assert "--- panel ---" in text
        assert "body" in text
