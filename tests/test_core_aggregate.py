"""Round-trip invariants of the task-aggregation layer."""

from __future__ import annotations

import pytest

from repro.core.aggregate import AggregateSolver, aggregate_problem
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem
from repro.workloads.largescale import (
    RequestRate,
    replicated_large_scale_problem,
)


@pytest.fixture(scope="module")
def replicated():
    # 200 tasks = 20 classes x 10 replicas
    return replicated_large_scale_problem(RequestRate.MEDIUM, replicas=10)


class TestAggregateProblem:
    def test_groups_replicas_into_base_classes(self, replicated):
        plan = aggregate_problem(replicated)
        assert plan.num_groups == 20
        assert plan.compression == pytest.approx(10.0)
        for group in plan.groups.values():
            assert group.weight == 10
            # representative is the smallest member id, members sorted
            assert group.member_ids[0] == group.representative.task_id
            assert list(group.member_ids) == sorted(group.member_ids)

    def test_group_members_share_signature(self, replicated):
        plan = aggregate_problem(replicated)
        tasks_by_id = {t.task_id: t for t in replicated.tasks}
        for group in plan.groups.values():
            rep = group.representative
            rep_paths = replicated.catalog.paths_for(rep)
            for member_id in group.member_ids:
                member = tasks_by_id[member_id]
                assert member.priority == rep.priority
                assert member.request_rate == rep.request_rate
                assert member.min_accuracy == rep.min_accuracy
                assert member.max_latency_s == rep.max_latency_s
                assert replicated.catalog.paths_for(member) is rep_paths

    def test_distinct_tasks_stay_separate(self, tiny_problem):
        # three distinct priorities and path sets -> no pooling
        plan = aggregate_problem(tiny_problem)
        assert plan.num_groups == len(tiny_problem.tasks)
        assert plan.compression == pytest.approx(1.0)

    def test_meta_problem_preserves_budgets_and_radio(self, replicated):
        plan = aggregate_problem(replicated)
        assert plan.meta_problem.budgets == replicated.budgets
        assert plan.meta_problem.radio is replicated.radio
        assert plan.meta_problem.alpha == replicated.alpha


class TestAggregateSolver:
    def test_expansion_covers_every_task(self, replicated):
        solution = AggregateSolver().solve(replicated)
        assert set(solution.assignments) == {
            t.task_id for t in replicated.tasks
        }

    def test_expanded_solution_is_feasible(self, replicated):
        solution = AggregateSolver().solve(replicated)
        report = check_constraints(replicated, solution)
        assert report.feasible, report

    def test_admission_equivalent_to_direct_solve(self, replicated):
        """Aggregation changes the cascade's granularity, not its
        substance: weighted admission and pool usage match the direct
        per-task vector solve to first order."""
        agg = AggregateSolver().solve(replicated)
        direct = OffloaDNNSolver(engine="vector").solve(replicated)
        assert agg.weighted_admission_ratio == pytest.approx(
            direct.weighted_admission_ratio, rel=0.02, abs=0.05
        )
        assert agg.total_radio_blocks == pytest.approx(
            direct.total_radio_blocks, rel=0.02, abs=0.5
        )
        assert agg.total_memory_gb == pytest.approx(direct.total_memory_gb)

    def test_unreplicated_instance_matches_vector_solver_exactly(self):
        """With one member per group the replay *is* the scalar cascade."""
        problem = replicated_large_scale_problem(RequestRate.MEDIUM, replicas=1)
        agg = AggregateSolver().solve(problem)
        direct = OffloaDNNSolver(engine="vector").solve(problem)

        def key(sol):
            return [
                (tid, a.path.path_id if a.path else None, a.admission_ratio,
                 a.radio_blocks)
                for tid, a in sorted(sol.assignments.items())
            ]

        assert key(agg) == key(direct)

    def test_members_of_a_group_share_the_path_object(self, replicated):
        solution = AggregateSolver().solve(replicated)
        plan = aggregate_problem(replicated)
        for group in plan.groups.values():
            paths = {
                id(solution.assignments[mid].path)
                for mid in group.member_ids
                if solution.assignments[mid].path is not None
            }
            assert len(paths) <= 1

    def test_zero_headroom_rejects_everything(self, replicated):
        empty = DOTProblem(
            tasks=replicated.tasks,
            catalog=replicated.catalog,
            budgets=Budgets(
                compute_time_s=0.0, training_budget_s=1000.0,
                memory_gb=0.0, radio_blocks=0,
            ),
            radio=replicated.radio,
            alpha=replicated.alpha,
        )
        solution = AggregateSolver().solve(empty)
        assert solution.admitted_task_count == 0
        assert check_constraints(empty, solution).feasible

    def test_rejects_incompatible_base(self):
        with pytest.raises(ValueError, match="explore_branches"):
            AggregateSolver(base=OffloaDNNSolver(explore_branches=2))
        with pytest.raises(ValueError, match="slice_margin_rbs"):
            AggregateSolver(base=OffloaDNNSolver(slice_margin_rbs=1))

    def test_timing_fields_stamped(self, replicated):
        solution = AggregateSolver().solve(replicated)
        assert solution.tree_build_time_s > 0.0
        assert solution.solve_time_s > 0.0
        assert solution.solver_name == "OffloaDNN-aggregated"
