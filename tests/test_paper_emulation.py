"""Integration tests: the Colosseum-substitute emulation (Fig. 11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.scenario import EmulationScenario, run_small_scale_emulation
from repro.workloads.smallscale import small_scale_problem


@pytest.fixture(scope="module")
def emulation():
    return run_small_scale_emulation(num_tasks=5, duration_s=20.0, seed=0)


class TestFig11:
    def test_all_five_tasks_admitted(self, emulation):
        _, result = emulation
        assert sum(1 for t in result.tickets.values() if t.admitted) == 5

    def test_latencies_within_targets(self, emulation):
        """The Fig. 11 validation: smoothed end-to-end latency stays
        within each task's constraint for the whole run."""
        problem, result = emulation
        assert result.all_within_limits(problem)

    def test_every_task_produces_samples(self, emulation):
        problem, result = emulation
        for task in problem.tasks:
            times, latencies = result.timeline.series(task.task_id)
            assert len(times) > 50  # ~5 req/s for 20 s
            assert np.isfinite(latencies).all()

    def test_latency_reflects_slice_size(self, emulation):
        """Transmission dominates: tasks with fewer RBs see higher
        latency components."""
        problem, result = emulation
        tickets = result.tickets
        means = {
            t.task_id: result.timeline.mean_latency(t.task_id) for t in problem.tasks
        }
        # task 1 has the tightest limit and the largest slice
        assert tickets[1].radio_blocks >= max(
            tickets[t.task_id].radio_blocks for t in problem.tasks[1:]
        )
        assert all(np.isfinite(v) for v in means.values())

    def test_deterministic_arrivals_reproducible(self):
        _, a = run_small_scale_emulation(num_tasks=2, duration_s=5.0, seed=7)
        _, b = run_small_scale_emulation(num_tasks=2, duration_s=5.0, seed=7)
        ta, la = a.timeline.series(1)
        tb, lb = b.timeline.series(1)
        np.testing.assert_array_equal(ta, tb)
        np.testing.assert_array_equal(la, lb)

    def test_poisson_mode_runs(self):
        problem = small_scale_problem(2, seed=0)
        scenario = EmulationScenario(problem=problem, duration_s=5.0,
                                     poisson_arrivals=True, seed=3)
        result = scenario.run()
        assert result.timeline.records_by_task

    def test_events_processed_positive(self, emulation):
        _, result = emulation
        assert result.events_processed > 100
