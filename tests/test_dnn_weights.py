"""Tests for model weight persistence and block transplantation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.resnet import build_resnet18
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.weights import (
    load_state_dict,
    load_weights,
    save_weights,
    state_dict,
    transplant_block,
)


def _model(seed: int = 0):
    return build_resnet18(num_classes=5, input_size=16, width=8, seed=seed)


class TestStateDict:
    def test_covers_all_parameters(self):
        model = _model()
        state = state_dict(model)
        total = sum(v.size for v in state.values())
        assert total == model.param_count()

    def test_round_trip_restores_outputs(self):
        source = _model(seed=1)
        target = _model(seed=2)
        x = np.random.default_rng(0).normal(size=(1, 3, 16, 16)).astype(np.float32)
        assert not np.allclose(source(x), target(x))
        load_state_dict(target, state_dict(source))
        np.testing.assert_allclose(source(x), target(x), rtol=1e-6)

    def test_missing_key_rejected(self):
        model = _model()
        state = state_dict(model)
        key = next(iter(state))
        partial = {k: v for k, v in state.items() if k != key}
        with pytest.raises(KeyError, match="missing"):
            load_state_dict(_model(), partial)

    def test_shape_mismatch_rejected(self):
        model = _model()
        state = dict(state_dict(model))
        key = next(iter(state))
        state[key] = np.zeros((1, 2, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(_model(), state)

    def test_works_for_mobilenet(self):
        model = build_mobilenetv2(num_classes=5, input_size=16, width_multiplier=0.25)
        state = state_dict(model)
        assert sum(v.size for v in state.values()) == model.param_count()


class TestFilePersistence:
    def test_npz_round_trip(self, tmp_path):
        source = _model(seed=3)
        path = str(tmp_path / "weights.npz")
        save_weights(source, path)
        target = _model(seed=4)
        load_weights(target, path)
        x = np.random.default_rng(1).normal(size=(2, 3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(source(x), target(x), rtol=1e-6)


class TestTransplantBlock:
    def test_transplanted_block_matches_source(self):
        source = _model(seed=5)
        target = _model(seed=6)
        transplant_block(source, target, "layer3")
        shape = source.block_input_shape("layer3")
        x = np.random.default_rng(2).normal(size=(1, *shape)).astype(np.float32)
        np.testing.assert_allclose(
            source.blocks["layer3"](x), target.blocks["layer3"](x), rtol=1e-6
        )

    def test_other_blocks_untouched(self):
        source = _model(seed=5)
        target = _model(seed=6)
        head_before = target.blocks["head"].parameters()[0].copy()
        transplant_block(source, target, "layer3")
        np.testing.assert_array_equal(head_before, target.blocks["head"].parameters()[0])

    def test_unknown_block_rejected(self):
        with pytest.raises(KeyError):
            transplant_block(_model(), _model(), "layer9")

    def test_incompatible_architectures_rejected(self):
        resnet = _model()
        wider = build_resnet18(num_classes=5, input_size=16, width=16)
        with pytest.raises(ValueError, match="shape mismatch"):
            transplant_block(resnet, wider, "layer2")

    def test_sharing_workflow(self):
        """The paper's deployment story: a shared trunk plus transplanted
        fine-tuned blocks reproduce the fine-tuned model end to end."""
        base = _model(seed=7)
        fine_tuned = _model(seed=7)
        # pretend layer4+head were fine-tuned (perturb them)
        for name in ("layer4", "head"):
            for param in fine_tuned.blocks[name].parameters():
                param += 0.05
        assembled = _model(seed=7)  # shares the trunk with `base`
        transplant_block(fine_tuned, assembled, "layer4")
        transplant_block(fine_tuned, assembled, "head")
        x = np.random.default_rng(3).normal(size=(1, 3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(assembled(x), fine_tuned(x), rtol=1e-5)
        del base
