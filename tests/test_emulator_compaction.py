"""Simulator heap compaction: cancelled events are purged lazily."""

from __future__ import annotations

import pytest

from repro.emulator.simulator import Event, Simulator


class TestPending:
    def test_counts_live_events_only(self):
        sim = Simulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(1, 5)]
        assert sim.pending == 4
        events[0].cancel()
        assert sim.pending == 3
        events[1].cancel()
        assert sim.pending == 2

    def test_zero_after_run(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1


class TestCompaction:
    def test_heap_stays_bounded_under_timer_churn(self):
        """The deadline-guard pattern: schedule a timer, cancel it,
        repeat.  Without compaction the heap grows with every cycle."""
        sim = Simulator()
        cycles = 10_000

        def churn(remaining: int) -> None:
            guard = sim.schedule(1000.0, lambda: None)  # far-future timer
            guard.cancel()
            if remaining:
                sim.schedule(0.001, lambda: churn(remaining - 1))

        sim.schedule(0.0, lambda: churn(cycles))
        peak = 0

        original_note = sim._note_cancelled

        def tracking_note() -> None:
            nonlocal peak
            peak = max(peak, len(sim._queue))
            original_note()

        sim._note_cancelled = tracking_note
        sim.run()
        # at most one live continuation + a handful of dead guards; far
        # below the 10k the naive heap would retain
        assert peak <= 8
        assert sim.pending == 0
        assert sim.events_processed == cycles + 1

    def test_compaction_preserves_pop_order(self):
        """(time, sequence) is a total order, so compacting mid-run must
        not change when the surviving callbacks fire."""

        def build(sim: Simulator, order: list[int]) -> list[Event]:
            events = []
            for i in range(50):
                events.append(
                    sim.schedule((i % 10) * 0.1, lambda i=i: order.append(i))
                )
            return events

        plain_sim, plain_order = Simulator(), []
        events = build(plain_sim, plain_order)
        for i in range(0, 50, 2):
            events[i].cancelled = True  # mark dead without notifying
        plain_sim._cancelled = 0  # never triggers compaction
        plain_sim.run()

        compacting_sim, compacting_order = Simulator(), []
        events = build(compacting_sim, compacting_order)
        for i in range(0, 50, 2):
            events[i].cancel()  # notifies -> compacts repeatedly
        compacting_sim.run()

        assert compacting_order == plain_order

    def test_cancel_after_pop_does_not_skew_counter(self):
        """Cancelling an event from inside its own callback (or after it
        ran) must not decrement the dead count of a later compaction."""
        sim = Simulator()
        self_ref: list[Event] = []

        def cancel_self() -> None:
            self_ref[0].cancel()

        self_ref.append(sim.schedule(0.1, cancel_self))
        survivor_ran = []
        sim.schedule(0.2, lambda: survivor_ran.append(True))
        sim.run()
        assert survivor_ran == [True]
        assert sim._cancelled == 0
        assert sim.pending == 0

    def test_cancelled_events_do_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(0.1, lambda: ran.append("cancelled"))
        sim.schedule(0.2, lambda: ran.append("kept"))
        event.cancel()
        sim.run()
        assert ran == ["kept"]

    def test_run_until_with_cancellations(self):
        sim = Simulator()
        ran = []
        sim.schedule(0.1, lambda: ran.append(1))
        dead = sim.schedule(0.2, lambda: ran.append(2))
        sim.schedule(0.3, lambda: ran.append(3))
        dead.cancel()
        sim.run_until(0.25)
        assert ran == [1]
        assert sim.now == pytest.approx(0.25)
        assert sim.pending == 1
        sim.run()
        assert ran == [1, 3]
