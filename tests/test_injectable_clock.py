"""Injectable clocks pin measured times exactly (no perf_counter flake).

The baselines and the profiler report wall-clock measurements
(``solve_time_s``, per-block ``compute_time_s``).  With the default
``time.perf_counter`` those are only testable as "positive"; with an
injected fake clock the exact values are asserted.
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy import GreedyNoSharingSolver
from repro.baselines.random_policy import RandomPathSolver
from repro.baselines.semoran import SemORANSolver
from repro.dnn.profiler import profile_model, time_forward
from repro.dnn.resnet import build_resnet18
from repro.workloads.smallscale import small_scale_problem


class SteppingClock:
    """Returns 0, step, 2*step, ... — one tick per call."""

    def __init__(self, step: float = 1.0):
        self.step = step
        self.calls = 0

    def __call__(self) -> float:
        value = self.calls * self.step
        self.calls += 1
        return value


class TestBaselineSolveTime:
    @pytest.mark.parametrize(
        "solver_cls",
        [GreedyNoSharingSolver, RandomPathSolver, SemORANSolver],
    )
    def test_solve_time_is_clock_delta(self, solver_cls):
        problem = small_scale_problem(3, seed=0)
        clock = SteppingClock(step=0.125)
        solver = solver_cls(clock=clock)
        solution = solver.solve(problem)
        # exactly two reads: one at entry, one at exit
        assert clock.calls == 2
        assert solution.solve_time_s == 0.125

    def test_default_clock_still_measures(self):
        problem = small_scale_problem(2, seed=0)
        solution = GreedyNoSharingSolver().solve(problem)
        assert solution.solve_time_s >= 0.0


class TestProfilerClock:
    def test_time_forward_median_of_fake_samples(self):
        # start/end pairs: (0,1), (2,3), (4,5) -> samples [1, 1, 1]
        clock = SteppingClock(step=1.0)
        calls = []
        elapsed = time_forward(
            lambda x: calls.append(x), None, repeats=3, warmup=2, clock=clock
        )
        assert elapsed == 1.0
        assert clock.calls == 6  # warmup is never timed
        assert len(calls) == 5  # 2 warmup + 3 timed

    def test_time_forward_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_forward(lambda x: x, None, repeats=0)

    def test_profile_model_uses_injected_clock(self):
        model = build_resnet18(num_classes=10, input_size=16, width=8, seed=0)
        profile = profile_model(model, repeats=1, warmup=0, clock=SteppingClock())
        # every block's single timed forward spans exactly one tick
        assert all(b.compute_time_s == 1.0 for b in profile.blocks)
        assert profile.total_compute_time_s == float(len(profile.blocks))
