"""Unit tests for the DNN repository (profiled configs -> DOT paths)."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.task import QualityLevel, Task
from repro.dnn.repository import (
    BLOCK_GROUPS,
    build_task_paths,
    profile_table_i,
)


@pytest.fixture(scope="module")
def profiled():
    return profile_table_i(width=8, input_size=16, repeats=1)


@pytest.fixture(scope="module")
def quality():
    return QualityLevel(name="full", bits_per_image=350_000.0)


def _task(task_id: int, quality: QualityLevel) -> Task:
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        method="classification",
        priority=0.5,
        request_rate=5.0,
        min_accuracy=0.5,
        max_latency_s=0.5,
        qualities=(quality,),
    )


class TestProfileTableI:
    def test_all_ten_configs(self, profiled):
        assert len(profiled) == 10

    def test_four_groups_each(self, profiled):
        for pc in profiled.values():
            assert len(pc.groups) == len(BLOCK_GROUPS) == 4

    def test_config_a_nothing_shared(self, profiled):
        assert all(not g.shared for g in profiled["CONFIG A"].groups)

    def test_config_b_shares_first_three_groups(self, profiled):
        shared = [g.shared for g in profiled["CONFIG B"].groups]
        assert shared == [True, True, True, False]  # g4 carries the head

    def test_shared_groups_cost_zero_training(self, profiled):
        for pc in profiled.values():
            for group in pc.groups:
                if group.shared:
                    assert group.training_cost_s == 0.0
                else:
                    assert group.training_cost_s >= 0.0

    def test_shared_groups_identical_across_configs(self, profiled):
        """Shared groups must come from a single base measurement."""
        b_g1 = profiled["CONFIG B"].groups[0]
        c_g1 = profiled["CONFIG C"].groups[0]
        assert b_g1.compute_time_s == c_g1.compute_time_s
        assert b_g1.memory_gb == c_g1.memory_gb

    def test_pruned_configs_cost_less_memory(self, profiled):
        full = profiled["CONFIG A"].total_memory_gb
        pruned = profiled["CONFIG A-pruned"].total_memory_gb
        assert pruned < 0.3 * full

    def test_accuracy_in_unit_interval(self, profiled):
        for pc in profiled.values():
            assert 0.0 <= pc.accuracy <= 1.0

    def test_pruned_accuracy_not_higher(self, profiled):
        for letter in "ABCDE":
            assert (
                profiled[f"CONFIG {letter}-pruned"].accuracy
                <= profiled[f"CONFIG {letter}"].accuracy + 1e-12
            )


class TestBuildTaskPaths:
    def test_one_path_per_config(self, profiled, quality):
        paths = build_task_paths(_task(1, quality), profiled, quality)
        assert len(paths) == 10

    def test_paths_have_four_blocks(self, profiled, quality):
        for path in build_task_paths(_task(1, quality), profiled, quality):
            assert len(path.blocks) == 4

    def test_shared_blocks_have_base_ids(self, profiled, quality):
        paths = {p.path_id: p for p in build_task_paths(_task(1, quality), profiled, quality)}
        config_b = paths["task1:CONFIG B"]
        base_blocks = [b for b in config_b.blocks if b.block_id.startswith("base:")]
        assert len(base_blocks) == 3

    def test_two_tasks_share_base_blocks(self, profiled, quality):
        catalog = Catalog()
        for tid in (1, 2):
            for path in build_task_paths(_task(tid, quality), profiled, quality):
                catalog.add_path(path)
        blocks = catalog.all_blocks()
        # exactly three distinct shared base blocks despite two tasks
        assert sum(1 for b in blocks if b.startswith("base:")) == 3

    def test_task_specific_blocks_not_shared(self, profiled, quality):
        paths_1 = build_task_paths(_task(1, quality), profiled, quality)
        paths_2 = build_task_paths(_task(2, quality), profiled, quality)
        ids_1 = {b.block_id for p in paths_1 for b in p.blocks if not b.block_id.startswith("base:")}
        ids_2 = {b.block_id for p in paths_2 for b in p.blocks if not b.block_id.startswith("base:")}
        assert not ids_1 & ids_2

    def test_scaling_applied(self, profiled, quality):
        plain = build_task_paths(_task(1, quality), profiled, quality)
        scaled = build_task_paths(
            _task(1, quality), profiled, quality, memory_scale=10.0, compute_scale=2.0
        )
        for a, b in zip(plain, scaled):
            assert b.compute_time_s == pytest.approx(2.0 * a.compute_time_s)

    def test_accuracy_offset_clipped(self, profiled, quality):
        paths = build_task_paths(
            _task(1, quality), profiled, quality, accuracy_offset=2.0
        )
        assert all(p.accuracy == 1.0 for p in paths)
