"""Unit tests for the DNN repository (profiled configs -> DOT paths)."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.task import QualityLevel, Task
from repro.dnn.repository import (
    BLOCK_GROUPS,
    build_task_paths,
    profile_table_i,
)


@pytest.fixture(scope="module")
def profiled():
    return profile_table_i(width=8, input_size=16, repeats=1)


@pytest.fixture(scope="module")
def quality():
    return QualityLevel(name="full", bits_per_image=350_000.0)


def _task(task_id: int, quality: QualityLevel) -> Task:
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        method="classification",
        priority=0.5,
        request_rate=5.0,
        min_accuracy=0.5,
        max_latency_s=0.5,
        qualities=(quality,),
    )


class TestProfileTableI:
    def test_all_ten_configs(self, profiled):
        assert len(profiled) == 10

    def test_four_groups_each(self, profiled):
        for pc in profiled.values():
            assert len(pc.groups) == len(BLOCK_GROUPS) == 4

    def test_config_a_nothing_shared(self, profiled):
        assert all(not g.shared for g in profiled["CONFIG A"].groups)

    def test_config_b_shares_first_three_groups(self, profiled):
        shared = [g.shared for g in profiled["CONFIG B"].groups]
        assert shared == [True, True, True, False]  # g4 carries the head

    def test_shared_groups_cost_zero_training(self, profiled):
        for pc in profiled.values():
            for group in pc.groups:
                if group.shared:
                    assert group.training_cost_s == 0.0
                else:
                    assert group.training_cost_s >= 0.0

    def test_shared_groups_identical_across_configs(self, profiled):
        """Shared groups must come from a single base measurement."""
        b_g1 = profiled["CONFIG B"].groups[0]
        c_g1 = profiled["CONFIG C"].groups[0]
        assert b_g1.compute_time_s == c_g1.compute_time_s
        assert b_g1.memory_gb == c_g1.memory_gb

    def test_pruned_configs_cost_less_memory(self, profiled):
        full = profiled["CONFIG A"].total_memory_gb
        pruned = profiled["CONFIG A-pruned"].total_memory_gb
        assert pruned < 0.3 * full

    def test_accuracy_in_unit_interval(self, profiled):
        for pc in profiled.values():
            assert 0.0 <= pc.accuracy <= 1.0

    def test_pruned_accuracy_not_higher(self, profiled):
        for letter in "ABCDE":
            assert (
                profiled[f"CONFIG {letter}-pruned"].accuracy
                <= profiled[f"CONFIG {letter}"].accuracy + 1e-12
            )


class TestBuildTaskPaths:
    def test_one_path_per_config(self, profiled, quality):
        paths = build_task_paths(_task(1, quality), profiled, quality)
        assert len(paths) == 10

    def test_paths_have_four_blocks(self, profiled, quality):
        for path in build_task_paths(_task(1, quality), profiled, quality):
            assert len(path.blocks) == 4

    def test_shared_blocks_have_base_ids(self, profiled, quality):
        paths = {p.path_id: p for p in build_task_paths(_task(1, quality), profiled, quality)}
        config_b = paths["task1:CONFIG B"]
        base_blocks = [b for b in config_b.blocks if b.block_id.startswith("base:")]
        assert len(base_blocks) == 3

    def test_two_tasks_share_base_blocks(self, profiled, quality):
        catalog = Catalog()
        for tid in (1, 2):
            for path in build_task_paths(_task(tid, quality), profiled, quality):
                catalog.add_path(path)
        blocks = catalog.all_blocks()
        # exactly three distinct shared base blocks despite two tasks
        assert sum(1 for b in blocks if b.startswith("base:")) == 3

    def test_task_specific_blocks_not_shared(self, profiled, quality):
        paths_1 = build_task_paths(_task(1, quality), profiled, quality)
        paths_2 = build_task_paths(_task(2, quality), profiled, quality)
        ids_1 = {b.block_id for p in paths_1 for b in p.blocks if not b.block_id.startswith("base:")}
        ids_2 = {b.block_id for p in paths_2 for b in p.blocks if not b.block_id.startswith("base:")}
        assert not ids_1 & ids_2

    def test_scaling_applied(self, profiled, quality):
        plain = build_task_paths(_task(1, quality), profiled, quality)
        scaled = build_task_paths(
            _task(1, quality), profiled, quality, memory_scale=10.0, compute_scale=2.0
        )
        for a, b in zip(plain, scaled):
            assert b.compute_time_s == pytest.approx(2.0 * a.compute_time_s)

    def test_accuracy_offset_clipped(self, profiled, quality):
        paths = build_task_paths(
            _task(1, quality), profiled, quality, accuracy_offset=2.0
        )
        assert all(p.accuracy == 1.0 for p in paths)


class TestInt8Variants:
    """Quantized Table I variants: precision-aware profiling + sharing."""

    @pytest.fixture(scope="class")
    def with_int8(self):
        return profile_table_i(
            width=8, input_size=16, repeats=1, include_int8=True
        )

    def test_int8_doubles_the_catalog(self, with_int8):
        assert len(with_int8) == 20
        assert sum(1 for pc in with_int8.values() if pc.precision == "int8") == 10

    def test_int8_variants_tagged_and_cheaper_in_memory(self, with_int8):
        for name, pc in with_int8.items():
            if not name.endswith("-int8"):
                assert pc.precision == "fp32"
                continue
            assert pc.precision == "int8"
            fp32 = with_int8[name.removesuffix("-int8")]
            # int8 weights are 4x smaller; activations 1 byte vs 4 —
            # total m(s) lands well under half the fp32 footprint
            assert pc.total_memory_gb < 0.5 * fp32.total_memory_gb
            # quantization costs the documented accuracy drop
            assert pc.accuracy == pytest.approx(fp32.accuracy - 0.005)

    def test_int8_shared_blocks_live_in_own_namespace(self, with_int8, quality):
        paths = {
            p.path_id: p
            for p in build_task_paths(_task(1, quality), with_int8, quality)
        }
        int8_b = paths["task1:CONFIG B-int8"]
        fp32_b = paths["task1:CONFIG B"]
        int8_shared = {
            b.block_id for b in int8_b.blocks if "base" in b.block_id
        }
        fp32_shared = {
            b.block_id for b in fp32_b.blocks if "base" in b.block_id
        }
        assert all(b.startswith("base:int8:") for b in int8_shared)
        assert not int8_shared & fp32_shared  # never cross-precision

    def test_exact_int8_weight_byte_math(self):
        """Pin the conv byte math: fp32 fused conv stores 4*(o*c*k*k)
        weight bytes + 4*o bias; int8 stores o*c*k*k int8 bytes + 8*o
        (f32 requant scale + bias columns).  The fp32->int8 saving over
        a whole ResNet-18 plan must equal the per-conv formula summed
        exactly — any drift means m(s) is no longer dtype-aware."""
        from repro.dnn.compile import compile_module
        from repro.dnn.layers import Conv2d
        from repro.dnn.quantize import plan_param_bytes
        from repro.dnn.resnet import build_resnet18

        model = build_resnet18(num_classes=10, input_size=16, width=8, seed=0)
        fp32_bytes = plan_param_bytes(compile_module(model))
        int8_bytes = compile_module(model, quantize="int8").param_bytes()

        def walk(layer):
            yield layer
            children = getattr(layer, "children", None)
            if children is not None:
                for child in children():
                    yield from walk(child)

        expected_saving = 0
        for layer in walk(model._as_sequential):
            if isinstance(layer, Conv2d):
                o, c, k, _ = layer.weight.shape
                expected_saving += (4 * o * c * k * k + 4 * o) - (
                    o * c * k * k + 8 * o
                )
        assert fp32_bytes - int8_bytes == expected_saving
        assert fp32_bytes == 703_208 and int8_bytes == 181_952
