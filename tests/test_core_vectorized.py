"""Parity of the vectorized control plane with the scalar reference.

The vector engine (``build_vector_tree`` + the numpy selection pass)
must produce *bit-identical* solutions to the per-vertex scalar path —
same chosen paths, same admission ratios, same RB counts — across
orderings, branch exploration, slice margins and problem geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel
from repro.core.tree import build_tree, build_vector_tree
from tests.conftest import make_block, make_path, make_task


def solution_key(solution):
    """Everything that must match between engines, bit for bit."""
    return [
        (
            tid,
            a.path.path_id if a.path else None,
            a.path.quality.name if a.path else None,
            a.admission_ratio,
            a.radio_blocks,
        )
        for tid, a in sorted(solution.assignments.items())
    ]


def random_problem(seed: int, num_tasks: int = 8) -> DOTProblem:
    """A randomized multi-quality, block-sharing instance."""
    rng = np.random.default_rng(seed)
    shared_pool = [
        make_block(
            f"shared{j}",
            compute_time_s=float(rng.uniform(0.001, 0.02)),
            memory_gb=float(rng.uniform(0.1, 1.5)),
            training_cost_s=float(rng.uniform(0.0, 200.0)),
        )
        for j in range(4)
    ]
    qualities = (
        QualityLevel("full", 350_000.0),
        QualityLevel("half", 175_000.0, accuracy_factor=0.92),
        QualityLevel("low", 50_000.0, accuracy_factor=0.85),
    )
    catalog = Catalog()
    tasks = []
    overrides: dict[int, float] = {}
    for i in range(1, num_tasks + 1):
        task = make_task(
            i,
            priority=float(rng.uniform(0.05, 1.0)),
            request_rate=float(rng.uniform(0.5, 10.0)),
            min_accuracy=float(rng.uniform(0.5, 0.9)),
            max_latency_s=float(rng.uniform(0.05, 0.6)),
        )
        task = type(task)(
            task_id=task.task_id,
            name=task.name,
            method=task.method,
            priority=task.priority,
            request_rate=task.request_rate,
            min_accuracy=task.min_accuracy,
            max_latency_s=task.max_latency_s,
            qualities=qualities,
        )
        tasks.append(task)
        for p in range(int(rng.integers(1, 4))):
            own = make_block(
                f"own{i}-{p}",
                compute_time_s=float(rng.uniform(0.001, 0.03)),
                memory_gb=float(rng.uniform(0.05, 1.0)),
                training_cost_s=float(rng.uniform(0.0, 100.0)),
            )
            trunk = shared_pool[int(rng.integers(len(shared_pool)))]
            catalog.add_path(
                make_path(
                    task,
                    f"t{i}-p{p}",
                    (trunk, own),
                    accuracy=float(rng.uniform(0.6, 1.0)),
                )
            )
        if rng.random() < 0.3:
            overrides[i] = float(rng.choice([175_000.0, 700_000.0]))
    return DOTProblem(
        tasks=tuple(tasks),
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=float(rng.uniform(0.2, 3.0)),
            training_budget_s=1000.0,
            memory_gb=float(rng.uniform(1.0, 8.0)),
            radio_blocks=int(rng.integers(5, 80)),
        ),
        radio=RadioModel(
            default_bits_per_rb=350_000.0, per_task_bits_per_rb=overrides
        ),
        alpha=0.5,
    )


class TestVectorTreeMaterialize:
    """materialize() must reproduce build_tree() exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_clique_contents_match(self, seed):
        problem = random_problem(seed)
        scalar = build_tree(problem)
        vector = build_vector_tree(problem).materialize()
        assert len(scalar.cliques) == len(vector.cliques)
        for sc, vc in zip(scalar.cliques, vector.cliques):
            assert sc.task == vc.task
            s_rows = [
                (v.path.path_id, v.path.quality.name, v.compute_time_s,
                 v.path.bits_per_image, v.accuracy)
                for v in sc.vertices
            ]
            v_rows = [
                (v.path.path_id, v.path.quality.name, v.compute_time_s,
                 v.path.bits_per_image, v.accuracy)
                for v in vc.vertices
            ]
            assert s_rows == v_rows
        assert scalar.filtered_out == vector.filtered_out

    def test_build_time_stamped(self, tiny_problem):
        scalar = build_tree(tiny_problem)
        vtree = build_vector_tree(tiny_problem)
        assert scalar.build_time_s > 0.0
        assert vtree.build_time_s > 0.0


class TestEngineParity:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("ordering", ["compute", "memory", "accuracy"])
    def test_randomized_parity(self, seed, ordering):
        problem = random_problem(seed)
        scalar = OffloaDNNSolver(engine="scalar", ordering=ordering).solve(problem)
        vector = OffloaDNNSolver(engine="vector", ordering=ordering).solve(problem)
        assert solution_key(scalar) == solution_key(vector)
        assert check_constraints(problem, vector).feasible

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("explore", [1, 3])
    @pytest.mark.parametrize("margin", [0, 2])
    def test_options_parity(self, seed, explore, margin):
        problem = random_problem(seed)
        scalar = OffloaDNNSolver(
            engine="scalar", explore_branches=explore, slice_margin_rbs=margin
        ).solve(problem)
        vector = OffloaDNNSolver(
            engine="vector", explore_branches=explore, slice_margin_rbs=margin
        ).solve(problem)
        assert solution_key(scalar) == solution_key(vector)

    def test_prebuilt_tree_bypasses_engine(self, tiny_problem):
        tree = build_tree(tiny_problem)
        from_tree = OffloaDNNSolver(engine="vector").solve(tiny_problem, tree=tree)
        cold = OffloaDNNSolver(engine="scalar").solve(tiny_problem)
        assert solution_key(from_tree) == solution_key(cold)

    def test_paper_scale_parity(self):
        from repro.workloads.largescale import RequestRate, large_scale_problem

        for rate in RequestRate:
            problem = large_scale_problem(rate)
            scalar = OffloaDNNSolver(engine="scalar").solve(problem)
            vector = OffloaDNNSolver(engine="vector").solve(problem)
            assert solution_key(scalar) == solution_key(vector)

    def test_zero_headroom_parity(self):
        problem = random_problem(3)
        empty = DOTProblem(
            tasks=problem.tasks,
            catalog=problem.catalog,
            budgets=Budgets(
                compute_time_s=0.0, training_budget_s=1000.0,
                memory_gb=0.0, radio_blocks=0,
            ),
            radio=problem.radio,
            alpha=problem.alpha,
        )
        scalar = OffloaDNNSolver(engine="scalar").solve(empty)
        vector = OffloaDNNSolver(engine="vector").solve(empty)
        assert solution_key(scalar) == solution_key(vector)
        assert vector.admitted_task_count == 0


class TestTimingAccounting:
    def test_solve_time_excludes_build_uniformly(self, tiny_problem):
        """Prebuilt or not, solve_time_s covers selection + allocation
        only; the build cost is reported separately."""
        tree = build_tree(tiny_problem)
        solver = OffloaDNNSolver(engine="scalar")
        prebuilt = solver.solve(tiny_problem, tree=tree)
        internal = solver.solve(tiny_problem)
        assert prebuilt.tree_build_time_s == pytest.approx(tree.build_time_s)
        assert internal.tree_build_time_s > 0.0
        for sol in (prebuilt, internal):
            assert sol.solve_time_s > 0.0
            assert sol.total_time_s == pytest.approx(
                sol.tree_build_time_s + sol.solve_time_s
            )

    def test_vector_engine_stamps_build_time(self, tiny_problem):
        solution = OffloaDNNSolver(engine="vector").solve(tiny_problem)
        assert solution.tree_build_time_s > 0.0
        assert solution.solve_time_s > 0.0

    def test_optimal_solver_stamps_build_time(self, tiny_problem):
        from repro.core.optimal import OptimalSolver

        solution = OptimalSolver().solve(tiny_problem)
        assert solution.tree_build_time_s > 0.0

    def test_baselines_split_build_time(self, tiny_problem):
        from repro.baselines.greedy import GreedyNoSharingSolver
        from repro.baselines.random_policy import RandomPathSolver

        for solver in (GreedyNoSharingSolver(), RandomPathSolver()):
            solution = solver.solve(tiny_problem)
            assert solution.tree_build_time_s > 0.0
            assert solution.solve_time_s > 0.0

    def test_serialize_roundtrips_build_time(self, tiny_problem, tmp_path):
        from repro.core.serialize import (
            dump_solution,
            load_solution,
            solution_from_dict,
            solution_to_dict,
        )

        solution = OffloaDNNSolver().solve(tiny_problem)
        out = tmp_path / "solution.json"
        dump_solution(solution, out)
        loaded = load_solution(out, tiny_problem)
        assert loaded.tree_build_time_s == pytest.approx(
            solution.tree_build_time_s
        )
        # pre-scaling dumps lack the field and default to 0
        legacy = solution_to_dict(solution)
        legacy.pop("tree_build_time_s")
        assert solution_from_dict(legacy, tiny_problem).tree_build_time_s == 0.0
