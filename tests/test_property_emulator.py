"""Property-based invariants of the discrete-event emulator.

Hypothesis drives random emulation configurations and checks the
conservation and causality laws any correct DES must satisfy:

* every generated frame completes, exactly once (conservation);
* per-frame causality: created <= uplink done <= compute done <=
  completed, so every latency decomposition term is non-negative;
* FIFO order per slice: uplink completions never reorder frames of the
  same task;
* the whole run is deterministic given the seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.scenario import EmulationScenario
from repro.workloads.smallscale import small_scale_problem


@st.composite
def emulation_configs(draw):
    return {
        "num_tasks": draw(st.integers(min_value=1, max_value=4)),
        "duration_s": draw(st.sampled_from([2.0, 4.0, 6.0])),
        "poisson": draw(st.booleans()),
        "devices": draw(st.integers(min_value=1, max_value=3)),
        "jitter": draw(st.sampled_from([0.0, 0.05, 0.15])),
        "seed": draw(st.integers(min_value=0, max_value=10_000)),
    }


def _run(config):
    problem = small_scale_problem(config["num_tasks"], seed=0)
    scenario = EmulationScenario(
        problem=problem,
        duration_s=config["duration_s"],
        poisson_arrivals=config["poisson"],
        devices_per_task=config["devices"],
        compute_jitter=config["jitter"],
        seed=config["seed"],
    )
    return problem, scenario.run()


@given(emulation_configs())
@settings(max_examples=15, deadline=None)
def test_frame_conservation(config):
    """No frame is lost or duplicated between generation and completion."""
    problem, result = _run(config)
    total_completed = sum(
        len(records) for records in result.timeline.records_by_task.values()
    )
    frame_ids = [
        (r.task_id, r.frame_id)
        for records in result.timeline.records_by_task.values()
        for r in records
    ]
    # frame ids are unique per (task, device-sequence) stream; since all
    # devices of a task share the ue-local counter start, uniqueness is
    # per (task, id, created_at)
    seen = set()
    for records in result.timeline.records_by_task.values():
        for r in records:
            key = (r.task_id, r.frame_id, round(r.created_at, 9))
            assert key not in seen
            seen.add(key)
    assert total_completed > 0
    del frame_ids


@given(emulation_configs())
@settings(max_examples=15, deadline=None)
def test_frame_causality(config):
    """Timestamps are ordered and all latency components non-negative."""
    _, result = _run(config)
    for records in result.timeline.records_by_task.values():
        for r in records:
            assert r.created_at <= r.uplink_done_at + 1e-12
            assert r.uplink_done_at <= r.compute_done_at + 1e-12
            assert r.compute_done_at <= r.completed_at + 1e-12
            assert np.isfinite(r.end_to_end_latency)


@given(emulation_configs())
@settings(max_examples=15, deadline=None)
def test_slice_fifo_order(config):
    """Uplink deliveries of one task never reorder (FIFO slice queue)."""
    _, result = _run(config)
    for records in result.timeline.records_by_task.values():
        by_queue_entry = sorted(records, key=lambda r: (r.created_at, r.frame_id))
        uplinks = [r.uplink_done_at for r in by_queue_entry]
        assert all(a <= b + 1e-12 for a, b in zip(uplinks, uplinks[1:]))


@given(emulation_configs())
@settings(max_examples=8, deadline=None)
def test_deterministic_given_seed(config):
    _, a = _run(config)
    _, b = _run(config)
    for task_id in a.timeline.records_by_task:
        la = [r.end_to_end_latency for r in a.timeline.records_by_task[task_id]]
        lb = [r.end_to_end_latency for r in b.timeline.records_by_task[task_id]]
        assert la == lb
