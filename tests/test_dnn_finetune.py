"""Tests for real gradient-based fine-tuning of Table I configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.configs import get_config
from repro.dnn.datasets import make_image_dataset
from repro.dnn.finetune import FineTuner
from repro.dnn.resnet import build_resnet18


@pytest.fixture(scope="module")
def data():
    # one dataset (one set of class templates), split into train/test so
    # both draws come from the same class-conditional distribution
    from repro.dnn.datasets import ImageDataset

    full = make_image_dataset(num_classes=4, samples_per_class=18, image_size=12,
                              noise_std=0.25, seed=0)
    rng = np.random.default_rng(42)
    order = rng.permutation(len(full.labels))
    cut = int(0.75 * len(order))
    train = ImageDataset(images=full.images[order[:cut]],
                         labels=full.labels[order[:cut]], num_classes=4)
    test = ImageDataset(images=full.images[order[cut:]],
                        labels=full.labels[order[cut:]], num_classes=4)
    return train, test


def _model():
    return build_resnet18(num_classes=4, input_size=12, width=8, seed=0)


class TestFineTunerSetup:
    def test_config_b_trains_only_head(self):
        tuner = FineTuner(_model(), get_config("CONFIG B"))
        assert tuner.trainable_names == ["head"]
        assert tuner.frozen_names == ["stem", "layer1", "layer2", "layer3", "layer4"]

    def test_config_c_trains_layer4_and_head(self):
        tuner = FineTuner(_model(), get_config("CONFIG C"))
        assert tuner.trainable_names == ["layer4", "head"]

    def test_config_a_trains_everything(self):
        tuner = FineTuner(_model(), get_config("CONFIG A"))
        assert tuner.frozen_names == []

    def test_non_suffix_config_rejected(self):
        from repro.dnn.configs import BlockConfig

        weird = BlockConfig(
            name="weird",
            description="",
            shared_stages=("layer2", "layer4"),
            fine_tuned_stages=("layer1", "layer3"),
        )
        with pytest.raises(ValueError, match="suffix"):
            FineTuner(_model(), weird)

    def test_invalid_epochs(self, data):
        train, _ = data
        tuner = FineTuner(_model(), get_config("CONFIG B"))
        with pytest.raises(ValueError):
            tuner.fit(train, epochs=0)


class TestRealLearning:
    def test_head_finetune_learns(self, data):
        """CONFIG B (head only) on well-separated template images: real
        gradients must drive accuracy well above chance (0.25)."""
        train, test = data
        tuner = FineTuner(_model(), get_config("CONFIG B"), lr=0.05, batch_size=16)
        run = tuner.fit(train, test, epochs=12)
        assert run.train_loss[0] > run.train_loss[-1]
        assert run.train_accuracy[-1] > 0.7
        assert run.test_accuracy[-1] > 0.5

    def test_deeper_finetune_learns(self, data):
        train, test = data
        tuner = FineTuner(_model(), get_config("CONFIG C"), lr=0.01, batch_size=16)
        run = tuner.fit(train, test, epochs=8)
        assert run.train_loss[0] > run.train_loss[-1]
        assert run.train_accuracy[-1] > 0.6

    def test_loss_decreases_monotonically_at_start(self, data):
        train, _ = data
        tuner = FineTuner(_model(), get_config("CONFIG B"), lr=0.05, batch_size=16)
        run = tuner.fit(train, epochs=3)
        assert run.train_loss[1] < run.train_loss[0]

    def test_frozen_blocks_unchanged(self, data):
        """Fine-tuning CONFIG C must not touch the shared stages."""
        train, _ = data
        model = _model()
        frozen_before = [
            p.copy() for name in ("stem", "layer1", "layer2", "layer3")
            for p in model.blocks[name].parameters()
        ]
        tuner = FineTuner(model, get_config("CONFIG C"), lr=0.01, batch_size=16)
        tuner.fit(train, epochs=2)
        frozen_after = [
            p for name in ("stem", "layer1", "layer2", "layer3")
            for p in model.blocks[name].parameters()
        ]
        for before, after in zip(frozen_before, frozen_after):
            np.testing.assert_array_equal(before, after)

    def test_trainable_blocks_changed(self, data):
        train, _ = data
        model = _model()
        head_before = model.blocks["head"].parameters()[0].copy()
        tuner = FineTuner(model, get_config("CONFIG B"), lr=0.01, batch_size=16)
        tuner.fit(train, epochs=1)
        assert not np.array_equal(head_before, model.blocks["head"].parameters()[0])

    def test_deterministic_given_seed(self, data):
        train, _ = data
        runs = []
        for _ in range(2):
            tuner = FineTuner(_model(), get_config("CONFIG B"), lr=0.01,
                              batch_size=16, seed=3)
            runs.append(tuner.fit(train, epochs=2).train_loss)
        assert runs[0] == runs[1]
