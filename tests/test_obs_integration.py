"""End-to-end observability: determinism, parity, span accounting.

The load-bearing promises of ``repro.obs``:

* DES traces are **deterministic** — two identical serving runs emit
  byte-identical virtual-domain span logs (wall spans are real time and
  excluded);
* tracing is **non-invasive** — metrics with a session attached are
  bit-identical to metrics without one;
* request spans **account for the latency** — one request's child spans
  partition its created→completed interval, so they sum to the
  end-to-end latency (the acceptance criterion).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.emulator.scenario import run_small_scale_emulation
from repro.obs import ObsSession, jsonl_lines, use_tracer, validate_chrome_trace
from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.workloads.smallscale import serving_small_scale_problem


def _runtime(obs: ObsSession | None = None) -> ServingRuntime:
    problem = serving_small_scale_problem(3, seed=0)
    config = ServingConfig(duration_s=1.0, num_workers=2, seed=0)
    if obs is not None:
        with use_tracer(obs.wall):
            runtime = ServingRuntime.from_problem(
                problem, config=config, solver=OffloaDNNSolver(slice_margin_rbs=2)
            )
    else:
        runtime = ServingRuntime.from_problem(
            problem, config=config, solver=OffloaDNNSolver(slice_margin_rbs=2)
        )
    runtime.obs = obs
    return runtime


def _float_identical(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


class TestServingTraceDeterminism:
    def test_two_runs_identical_virtual_jsonl(self):
        lines = []
        for _ in range(2):
            obs = ObsSession()
            _runtime(obs).run()
            lines.append(jsonl_lines([obs.virtual]))
        assert lines[0] == lines[1]
        assert len(lines[0]) > 50  # an actual workload was traced

    def test_rerun_on_same_runtime_identical(self):
        """run() rebuilds all DES state, so even reruns are identical."""
        runtime = _runtime(ObsSession())
        runtime.run()
        first = jsonl_lines([runtime.obs.virtual])
        runtime.obs = ObsSession()
        runtime.run()
        assert jsonl_lines([runtime.obs.virtual]) == first


class TestServingMetricsParity:
    def test_metrics_bit_identical_with_and_without_obs(self):
        baseline = _runtime(obs=None).run()
        observed = _runtime(ObsSession()).run()
        assert baseline.duration_s == observed.duration_s
        assert baseline.total_compute_s == observed.total_compute_s
        assert baseline.compute_saved_s == observed.compute_saved_s
        assert baseline.windows == observed.windows
        assert baseline.prefix_merges == observed.prefix_merges
        assert set(baseline.tasks) == set(observed.tasks)
        for task_id, expected in baseline.tasks.items():
            actual = observed.tasks[task_id]
            assert expected.offered == actual.offered
            assert expected.completed == actual.completed
            assert expected.drops == actual.drops
            for name in ("count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
                assert _float_identical(
                    getattr(expected.latency, name), getattr(actual.latency, name)
                ), f"task{task_id}.latency.{name}"

    def test_registry_holds_per_task_instruments_after_run(self):
        obs = ObsSession()
        metrics = _runtime(obs).run()
        task_id = next(t for t in metrics.tasks if metrics.tasks[t].completed > 0)
        histogram = obs.registry.histogram(f"task{task_id}.latency_s")
        assert histogram.count == metrics.tasks[task_id].completed
        assert obs.registry.counter(f"task{task_id}.offered").value == (
            metrics.tasks[task_id].offered
        )
        # the DES sampler left gauge series behind
        series = obs.registry.gauge("serving.outstanding").series
        assert len(series) > 1
        assert all(t1 <= t2 for (t1, _), (t2, _) in zip(series, series[1:]))


class TestRequestSpanAccounting:
    """Acceptance: spans of one request nest and sum to its latency."""

    def _request_tracks(self, obs: ObsSession) -> dict[str, dict[str, object]]:
        tracks: dict[str, dict[str, object]] = {}
        for record in obs.virtual.records:
            if record.phase != "X" or not record.track.startswith("task"):
                continue
            tracks.setdefault(record.track, {})[record.name] = record
        return {
            track: spans for track, spans in tracks.items() if "request" in spans
        }

    def test_children_partition_and_sum_to_latency(self):
        obs = ObsSession()
        metrics = _runtime(obs).run()
        tracks = self._request_tracks(obs)
        assert metrics.completed > 0
        assert len(tracks) == metrics.completed
        children = ("uplink", "queue", "batch", "execute", "complete")
        for track, spans in tracks.items():
            parent = spans["request"]
            assert set(spans) == {"request", *children}
            # children tile the parent interval exactly, in order
            cursor = parent.ts
            for name in children:
                child = spans[name]
                assert child.ts == pytest.approx(cursor, abs=1e-9), (track, name)
                assert child.dur >= 0.0
                cursor = child.ts + child.dur
            assert cursor == pytest.approx(parent.ts + parent.dur, abs=1e-9)
            # ... so their durations sum to the end-to-end latency
            assert sum(spans[n].dur for n in children) == pytest.approx(
                parent.dur, abs=1e-9
            )

    def test_chrome_export_of_run_validates(self, tmp_path):
        obs = ObsSession()
        _runtime(obs).run()
        path = tmp_path / "trace.json"
        obs.write_trace(path)
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        request_spans = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "request"
        ]
        assert request_spans and all(e["pid"] == 2 for e in request_spans)


class TestEmulatorObservability:
    def test_frame_spans_partition_lifetime(self):
        obs = ObsSession()
        problem, result = run_small_scale_emulation(
            num_tasks=2, duration_s=3.0, obs=obs
        )
        frames: dict[str, dict[str, object]] = {}
        for record in obs.virtual.records:
            if record.phase == "X" and ".frame" in record.track:
                frames.setdefault(record.track, {})[record.name] = record
        assert frames
        stages = ("uplink", "gpu_queue", "gpu_execute", "return")
        for track, spans in frames.items():
            parent = spans["frame"]
            assert set(spans) == {"frame", *stages}
            cursor = parent.ts
            for name in stages:
                assert spans[name].ts == pytest.approx(cursor, abs=1e-9)
                cursor = spans[name].ts + spans[name].dur
            assert cursor == pytest.approx(parent.ts + parent.dur, abs=1e-9)

    def test_emulator_trace_deterministic(self):
        lines = []
        for _ in range(2):
            obs = ObsSession()
            run_small_scale_emulation(num_tasks=2, duration_s=3.0, obs=obs)
            lines.append(jsonl_lines([obs.virtual]))
        assert lines[0] == lines[1]
        assert len(lines[0]) > 10

    def test_task_statistics_bit_identical_with_registry(self):
        obs = ObsSession()
        problem, result = run_small_scale_emulation(
            num_tasks=2, duration_s=3.0, obs=obs
        )
        plain = result.statistics(problem)
        instrumented = result.statistics(problem, registry=obs.registry)
        assert set(plain) == set(instrumented)
        for task_id in plain:
            for name in (
                "frames",
                "mean_latency_s",
                "p95_latency_s",
                "max_latency_s",
                "mean_uplink_s",
                "mean_compute_s",
                "goodput_fps",
                "deadline_miss_fraction",
            ):
                assert _float_identical(
                    float(getattr(plain[task_id], name)),
                    float(getattr(instrumented[task_id], name)),
                ), f"task{task_id}.{name}"
        # and the instruments survive in the session registry
        stats = instrumented[next(iter(instrumented))]
        if stats.frames:
            histogram = obs.registry.histogram(f"emu.task{stats.task_id}.latency_s")
            assert histogram.count == stats.frames

    def test_solver_spans_on_wall_tracer(self):
        obs = ObsSession()
        run_small_scale_emulation(num_tasks=2, duration_s=3.0, obs=obs)
        names = {r.name for r in obs.wall.records}
        assert "solver.tree_build" in names
        assert "solver.select_branch" in names
        assert "solver.allocate" in names
