"""Unit tests for MobileNetV2 and its depthwise building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn import ops
from repro.dnn.graph import Residual, Sequential
from repro.dnn.layers import Conv2d, DepthwiseConv2d, ReLU6
from repro.dnn.mobilenet import build_mobilenetv2, inverted_residual
from repro.dnn.profiler import profile_model
from repro.dnn.resnet import BLOCK_NAMES


def naive_depthwise(x, w, stride, padding):
    n, c, h, wd = x.shape
    k = w.shape[1]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c, out_h, out_w))
    for b in range(n):
        for ch in range(c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, ch, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, ch, i, j] = (patch * w[ch]).sum()
    return out


class TestDepthwiseOps:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 3, 3)).astype(np.float32)
        got = ops.depthwise_conv2d(x, w, stride, padding)
        want = naive_depthwise(x, w, stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            ops.depthwise_conv2d(
                np.zeros((1, 3, 4, 4), np.float32), np.zeros((2, 3, 3), np.float32)
            )

    def test_relu6_clips_both_sides(self):
        x = np.array([-2.0, 3.0, 10.0])
        np.testing.assert_array_equal(ops.relu6(x), [0.0, 3.0, 6.0])

    def test_depthwise_cheaper_than_full_conv(self):
        """The point of depthwise separability: far fewer FLOPs."""
        full = ops.conv2d_flops(64, 64, 3, 8, 8)
        depthwise = ops.depthwise_conv2d_flops(64, 3, 8, 8)
        assert depthwise * 32 < full


class TestDepthwiseLayer:
    def test_forward_shape(self):
        layer = DepthwiseConv2d(8, kernel=3, stride=2, padding=1)
        out = layer(np.zeros((1, 8, 8, 8), np.float32))
        assert out.shape == (1, 8, 4, 4)
        assert out.shape[1:] == layer.output_shape((8, 8, 8))

    def test_params_per_channel(self):
        assert DepthwiseConv2d(8, kernel=3).param_count() == 8 * 9

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            DepthwiseConv2d(0, kernel=3)

    def test_relu6_layer(self):
        layer = ReLU6()
        out = layer(np.array([[-1.0, 8.0]], np.float32))
        np.testing.assert_array_equal(out, [[0.0, 6.0]])


class TestInvertedResidual:
    def test_shape_preserving_block_is_residual(self):
        rng = np.random.default_rng(0)
        block = inverted_residual(16, 16, stride=1, expansion=6, rng=rng)
        assert isinstance(block, Residual)
        assert block.activation == "linear"

    def test_shape_changing_block_is_plain(self):
        rng = np.random.default_rng(0)
        block = inverted_residual(16, 24, stride=2, expansion=6, rng=rng)
        assert isinstance(block, Sequential)

    def test_linear_residual_can_output_negative(self):
        """MobileNetV2's bottleneck addition is not rectified."""
        rng = np.random.default_rng(0)
        block = inverted_residual(8, 8, stride=1, expansion=6, rng=rng)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        out = block(x)
        assert (out < 0).any()

    def test_expansion_one_skips_expansion_conv(self):
        rng = np.random.default_rng(0)
        no_expand = inverted_residual(8, 8, stride=1, expansion=1, rng=rng)
        expand = inverted_residual(8, 8, stride=1, expansion=6, rng=rng)
        assert no_expand.param_count() < expand.param_count()

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError, match="unknown residual activation"):
            Residual(Sequential(Conv2d(4, 4, kernel=1)), activation="gelu")


class TestBuildMobileNetV2:
    def test_block_partition_matches_resnet_scheme(self):
        model = build_mobilenetv2(num_classes=10, input_size=16, width_multiplier=0.25)
        assert tuple(model.blocks) == BLOCK_NAMES

    def test_forward_logits(self):
        model = build_mobilenetv2(num_classes=10, input_size=16, width_multiplier=0.25)
        x = np.random.default_rng(1).normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        assert np.isfinite(out).all()

    def test_canonical_width_parameter_scale(self):
        """At width 1.0 the backbone+60-class head lands near the
        published ~2.3M parameters (3.4M includes the 1000-class head)."""
        model = build_mobilenetv2(num_classes=60, input_size=32, width_multiplier=1.0)
        assert 2.0e6 < model.param_count() < 2.7e6

    def test_fewer_params_than_resnet18(self):
        """The paper's motivating comparison: MobileNetV2 is much
        smaller than the ResNet family."""
        from repro.dnn.resnet import build_resnet18

        mobile = build_mobilenetv2(num_classes=60, input_size=32, width_multiplier=1.0)
        resnet = build_resnet18(num_classes=60, input_size=32, width=64)
        assert mobile.param_count() < 0.25 * resnet.param_count()

    def test_profiler_applies_unchanged(self):
        model = build_mobilenetv2(num_classes=10, input_size=16, width_multiplier=0.25)
        profile = profile_model(model, repeats=1)
        assert profile.total_params == model.param_count()
        assert all(b.compute_time_s > 0 for b in profile.blocks)

    def test_width_multiplier_scales(self):
        slim = build_mobilenetv2(width_multiplier=0.25, input_size=16)
        wide = build_mobilenetv2(width_multiplier=0.5, input_size=16)
        assert wide.param_count() > slim.param_count()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_mobilenetv2(input_size=4)
        with pytest.raises(ValueError):
            build_mobilenetv2(width_multiplier=0.0)
