"""Wave primitives: bit-exactness against the scalar building blocks.

The vector engine's correctness argument rests on four primitives each
reproducing its scalar counterpart float for float; this module pins
every one of them, including a hypothesis sweep of the token-bucket
closed form against the scalar bucket (random rates, bursts, seeds).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.admission import TokenBucket
from repro.serving.waves import (
    admission_credits,
    arrival_times,
    fifo_deliveries,
    merge_arrival_order,
    wave_admissions,
)


# -- arrival_times ---------------------------------------------------------


def _scalar_arrivals(rate, duration_s, poisson, rng):
    """The emit chain's arrival instants, one scalar step at a time."""
    times = [0.0]
    now = 0.0
    while True:
        gap = float(rng.exponential(1.0 / rate)) if poisson else 1.0 / rate
        if now + gap > duration_s:
            return np.array(times)
        now = now + gap
        times.append(now)


@pytest.mark.parametrize("rate", [3.0, 5.0, 7.3, 1000.0])
def test_deterministic_arrivals_match_scalar_chain(rate):
    vec = arrival_times(rate, 4.0, poisson=False, rng=np.random.default_rng(0))
    ref = _scalar_arrivals(rate, 4.0, False, np.random.default_rng(0))
    assert vec.tolist() == ref.tolist()


@pytest.mark.parametrize("seed", [0, 3, 7919])
@pytest.mark.parametrize("rate", [2.0, 5.0, 40.0])
def test_poisson_arrivals_match_scalar_draws(rate, seed):
    # same Generator stream: bulk fills and per-request scalar draws
    # consume identical bits, so the instants agree float for float
    vec = arrival_times(rate, 3.0, poisson=True, rng=np.random.default_rng(seed))
    ref = _scalar_arrivals(rate, 3.0, True, np.random.default_rng(seed))
    assert vec.tolist() == ref.tolist()


def test_arrivals_always_include_time_zero():
    assert arrival_times(0.01, 1.0, False, np.random.default_rng(0)).tolist() == [0.0]


# -- wave_admissions vs the scalar TokenBucket (satellite: hypothesis) -----


@given(
    ratio=st.one_of(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.sampled_from([0.0, 0.25, 1.0 / 3.0, 0.5, 0.75, 1.0]),
    ),
    burst=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    n=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=200, deadline=None)
def test_wave_admissions_match_scalar_bucket(ratio, burst, n):
    bucket = TokenBucket(ratio=ratio, burst=burst)
    decisions = []
    credits = []
    for _ in range(n):
        decisions.append(bucket.allow())
        credits.append(bucket.credit)
    mask, admitted = wave_admissions(ratio, n)
    assert mask.tolist() == decisions
    assert int(admitted[-1]) == bucket.admitted if n else bucket.admitted == 0
    # credit levels are float-exact, not just close
    assert admission_credits(ratio, admitted, burst).tolist() == credits


def test_fast_forward_reaches_scalar_state():
    bucket = TokenBucket(ratio=0.4, burst=2.0)
    for _ in range(137):
        bucket.allow()
    jumped = TokenBucket(ratio=0.4, burst=2.0)
    jumped.fast_forward(137, bucket.admitted)
    assert jumped.offered == bucket.offered
    assert jumped.admitted == bucket.admitted
    assert jumped.credit == bucket.credit
    # and the *next* decision agrees too
    assert jumped.allow() == bucket.allow()


def test_fast_forward_rejects_impossible_counts():
    bucket = TokenBucket(ratio=0.5, burst=1.0)
    with pytest.raises(ValueError):
        bucket.fast_forward(3, 5)
    with pytest.raises(ValueError):
        bucket.fast_forward(-1, 0)


# -- fifo_deliveries -------------------------------------------------------


def _scalar_fifo(arrivals, airtime):
    busy = 0.0
    out = []
    for a in arrivals:
        start = a if a > busy else busy
        busy = start + airtime
        out.append(busy)
    return out


def test_fifo_uncontended_fast_path():
    arrivals = np.array([0.0, 1.0, 2.0, 3.5])
    assert fifo_deliveries(arrivals, 0.25).tolist() == _scalar_fifo(arrivals, 0.25)


def test_fifo_contended_exact_scan():
    # arrivals faster than the airtime: every frame queues
    arrivals = np.cumsum(np.full(50, 0.01))
    assert fifo_deliveries(arrivals, 0.03).tolist() == _scalar_fifo(arrivals, 0.03)


@given(
    gaps=st.lists(
        st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    airtime=st.floats(min_value=1e-4, max_value=0.2, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_fifo_matches_scalar_replay(gaps, airtime):
    arrivals = np.cumsum(np.asarray(gaps))
    assert fifo_deliveries(arrivals, airtime).tolist() == _scalar_fifo(
        arrivals, airtime
    )


# -- merge_arrival_order ---------------------------------------------------


def test_merge_numbers_globally_in_time_order():
    a = np.array([0.0, 0.2, 0.4])
    b = np.array([0.0, 0.3])
    ids_a, ids_b = merge_arrival_order([a, b])
    # t=0 ties break by task seeding order
    assert ids_a.tolist() == [0, 2, 4]
    assert ids_b.tolist() == [1, 3]


def test_merge_simultaneous_grids_interleave_by_chain_history():
    # identical grids: every instant ties, resolved by task position
    grid = np.array([0.0, 0.5, 1.0])
    ids = merge_arrival_order([grid.copy(), grid.copy()])
    assert ids[0].tolist() == [0, 2, 4]
    assert ids[1].tolist() == [1, 3, 5]


def test_merge_empty():
    assert merge_arrival_order([]) == []
