"""Capstone integration: the complete pipeline, live end to end.

Profiles the DNN substrate for real (no static cost basis), builds a
DOT catalog from the measurements, solves with both the heuristic and
the optimum, drives the admitted configuration through the controller
and the emulator, and verifies the chain's invariants at every step —
the whole Fig. 4 loop with no canned numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.core.optimal import OptimalSolver
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.serialize import problem_from_dict, problem_to_dict
from repro.core.task import QualityLevel, Task
from repro.dnn.repository import build_task_paths, profile_table_i
from repro.emulator.scenario import EmulationScenario


@pytest.fixture(scope="module")
def live_problem() -> DOTProblem:
    """A problem whose block costs come from live substrate profiling."""
    profiled = profile_table_i(width=16, input_size=16, repeats=2, seed=0)
    quality = QualityLevel("full", 350_000.0)
    tasks = tuple(
        Task(
            task_id=i,
            name=f"live-{i}",
            method="classification",
            priority=1.0 - 0.2 * (i - 1),
            request_rate=4.0,
            min_accuracy=0.55,
            max_latency_s=0.4,
            qualities=(quality,),
        )
        for i in (1, 2, 3)
    )
    from repro.core.catalog import Catalog

    catalog = Catalog()
    for task in tasks:
        # scale profiled CPU costs into edge-server magnitudes
        for path in build_task_paths(
            task, profiled, quality, memory_scale=50.0, compute_scale=1.0
        ):
            catalog.add_path(path)
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=2.5, training_budget_s=1000.0, memory_gb=8.0,
            radio_blocks=100,
        ),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


class TestFullStack:
    def test_catalog_built_from_measurements(self, live_problem):
        blocks = live_problem.catalog.all_blocks()
        assert all(b.compute_time_s > 0 for b in blocks.values())
        shared = [b for b in blocks.values() if b.block_id.startswith("base:")]
        assert len(shared) == 3  # g1..g3 of the shared trunk

    def test_heuristic_and_optimum_agree_on_admission(self, live_problem):
        heuristic = OffloaDNNSolver().solve(live_problem)
        optimal = OptimalSolver().solve(live_problem)
        assert check_constraints(live_problem, heuristic).feasible
        assert check_constraints(live_problem, optimal).feasible
        assert heuristic.weighted_admission_ratio == pytest.approx(
            optimal.weighted_admission_ratio, abs=1e-6
        )
        assert objective_value(live_problem, optimal) <= objective_value(
            live_problem, heuristic
        ) + 1e-9

    def test_emulation_respects_live_costs(self, live_problem):
        """The emulator's compute times come straight from the profiled
        paths; the run must stay within every admitted task's limit."""
        scenario = EmulationScenario(problem=live_problem, duration_s=6.0,
                                     compute_jitter=0.02, seed=0)
        result = scenario.run(solver=OffloaDNNSolver(slice_margin_rbs=1))
        admitted = [t for t in result.tickets.values() if t.admitted]
        assert admitted
        assert result.all_within_limits(live_problem)
        stats = result.statistics(live_problem)
        for ticket in admitted:
            entry = stats[ticket.task_id]
            assert entry.frames > 10
            assert entry.deadline_miss_fraction == 0.0

    def test_serialization_survives_the_pipeline(self, live_problem):
        """Live-profiled problems round-trip through JSON and solve to
        the same decisions."""
        restored = problem_from_dict(problem_to_dict(live_problem))
        a = OffloaDNNSolver().solve(live_problem)
        b = OffloaDNNSolver().solve(restored)
        for task in live_problem.tasks:
            assert (
                a.assignment(task).path.path_id == b.assignment(task).path.path_id
            )

    def test_profiled_costs_propagate_to_latency(self, live_problem):
        """End-to-end latency in the emulator decomposes into the
        transmission time implied by the slice plus the profiled compute
        time (within jitter)."""
        scenario = EmulationScenario(problem=live_problem, duration_s=4.0,
                                     compute_jitter=0.0, seed=1)
        result = scenario.run(solver=OffloaDNNSolver(slice_margin_rbs=1))
        solution_paths = {}
        for task in live_problem.tasks:
            ticket = result.tickets[task.task_id]
            if not ticket.admitted:
                continue
            stats = result.statistics(live_problem)[task.task_id]
            # compute component ~= profiled path compute (+2 ms return)
            path_id = ticket.path_id
            paths = live_problem.catalog.paths_for(task)
            path = next(p for p in paths if p.path_id == path_id.split("@")[0])
            solution_paths[task.task_id] = path
            assert stats.mean_compute_s == pytest.approx(
                path.compute_time_s, rel=0.25, abs=0.01
            )
