"""Unit tests for layer objects: shapes, parameters, FLOPs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
)


class TestConv2dLayer:
    def test_forward_shape(self):
        layer = Conv2d(3, 8, kernel=3, stride=2, padding=1)
        out = layer(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_matches_forward(self):
        layer = Conv2d(3, 8, kernel=3, stride=2, padding=1)
        out = layer(np.zeros((1, 3, 16, 16), dtype=np.float32))
        assert out.shape[1:] == layer.output_shape((3, 16, 16))

    def test_param_count_no_bias(self):
        layer = Conv2d(4, 6, kernel=3)
        assert layer.param_count() == 6 * 4 * 9

    def test_param_count_with_bias(self):
        layer = Conv2d(4, 6, kernel=3, bias=True)
        assert layer.param_count() == 6 * 4 * 9 + 6

    def test_flops_positive_and_scales_with_channels(self):
        small = Conv2d(3, 8, kernel=3, padding=1)
        big = Conv2d(3, 16, kernel=3, padding=1)
        assert big.flops((3, 8, 8)) == 2 * small.flops((3, 8, 8))

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, kernel=3)

    def test_he_init_scale(self):
        layer = Conv2d(64, 64, kernel=3, rng=np.random.default_rng(0))
        std = layer.weight.std()
        expected = np.sqrt(2.0 / (64 * 9))
        assert 0.8 * expected < std < 1.2 * expected


class TestBatchNormLayer:
    def test_identity_at_init(self):
        layer = BatchNorm2d(4)
        x = np.random.default_rng(0).normal(size=(2, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(layer(x), x, rtol=1e-4, atol=1e-4)

    def test_parameters_exposed(self):
        layer = BatchNorm2d(4)
        assert layer.param_count() == 16  # gamma, beta, mean, var

    def test_output_shape_unchanged(self):
        assert BatchNorm2d(4).output_shape((4, 7, 7)) == (4, 7, 7)


class TestSimpleLayers:
    def test_relu_shape_and_values(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [[0.0, 2.0]])

    def test_maxpool_shape(self):
        layer = MaxPool2d(kernel=3, stride=2, padding=1)
        assert layer.output_shape((8, 16, 16)) == (8, 8, 8)
        out = layer(np.zeros((1, 8, 16, 16), dtype=np.float32))
        assert out.shape == (1, 8, 8, 8)

    def test_global_avg_pool_shape(self):
        layer = GlobalAvgPool()
        assert layer.output_shape((16, 4, 4)) == (16,)

    def test_flatten(self):
        layer = Flatten()
        out = layer(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert out.shape == (2, 48)
        assert layer.output_shape((3, 4, 4)) == (48,)

    def test_linear_shapes_and_flops(self):
        layer = Linear(32, 10)
        out = layer(np.zeros((5, 32), dtype=np.float32))
        assert out.shape == (5, 10)
        assert layer.param_count() == 32 * 10 + 10
        assert layer.flops((32,)) == 2 * 32 * 10

    def test_activation_size(self):
        layer = Conv2d(3, 8, kernel=3, padding=1)
        assert layer.activation_size((3, 8, 8)) == 8 * 8 * 8
