"""End-to-end serving runtime: determinism, caching, overload, CLI."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.heuristic import OffloaDNNSolver
from repro.serving import (
    DropReason,
    ServingConfig,
    ServingMetrics,
    ServingRuntime,
    TokenBucket,
)
from repro.workloads.smallscale import serving_small_scale_problem


@pytest.fixture(scope="module")
def runtime() -> ServingRuntime:
    problem = serving_small_scale_problem(5)
    return ServingRuntime.from_problem(
        problem, solver=OffloaDNNSolver(slice_margin_rbs=2)
    )


CONFIG = dict(duration_s=3.0, load_factor=2.0, seed=3)


class TestRuntime:
    def test_admits_and_serves(self, runtime):
        metrics = runtime.with_config(**CONFIG).run()
        assert metrics.completed > 0
        assert metrics.offered > metrics.completed  # overload sheds
        for task in runtime.problem.tasks:
            t = metrics.tasks[task.task_id]
            if t.completed:
                assert t.latency.p95_s > 0
                assert 0.0 <= t.deadline_miss_rate <= 1.0

    def test_bit_reproducible(self, runtime):
        a = runtime.with_config(**CONFIG).run()
        b = runtime.with_config(**CONFIG).run()
        assert a.total_compute_s == b.total_compute_s
        assert a.compute_saved_s == b.compute_saved_s
        assert a.completed == b.completed
        for tid in a.tasks:
            assert a.tasks[tid].latency == b.tasks[tid].latency
            assert a.tasks[tid].drops == b.tasks[tid].drops

    def test_poisson_bit_reproducible(self, runtime):
        a = runtime.with_config(poisson=True, **CONFIG).run()
        b = runtime.with_config(poisson=True, **CONFIG).run()
        assert a.total_compute_s == b.total_compute_s
        assert [t.latency for t in a.tasks.values()] == [
            t.latency for t in b.tasks.values()
        ]

    def test_prefix_cache_strictly_cheaper(self, runtime):
        """The acceptance criterion: shared frozen blocks ⇒ strict win."""
        with_cache = runtime.with_config(**CONFIG).run()
        without = runtime.with_config(prefix_cache=False, **CONFIG).run()
        assert with_cache.total_compute_s < without.total_compute_s
        assert with_cache.completed == without.completed
        assert with_cache.compute_saved_s > 0
        assert with_cache.prefix_merges > 0
        assert without.compute_saved_s == 0

    def test_gate_enforces_granted_rate_under_overload(self, runtime):
        metrics = runtime.with_config(**CONFIG).run()
        for task in runtime.problem.tasks:
            ticket = runtime.tickets[task.task_id]
            t = metrics.tasks[task.task_id]
            if not ticket.admitted or t.offered == 0:
                continue
            granted = ticket.admission_ratio / CONFIG["load_factor"]
            assert t.admitted / t.offered == pytest.approx(granted, abs=0.05)

    def test_throughput_plateaus(self, runtime):
        low = runtime.with_config(duration_s=3.0, load_factor=1.0, seed=3).run()
        high = runtime.with_config(duration_s=3.0, load_factor=3.0, seed=3).run()
        assert high.throughput_rps <= low.throughput_rps * 1.1

    def test_clock_reaches_horizon_even_when_idle(self):
        # a 1-task problem at ratio ~0 serves nothing; the metrics
        # horizon must still be the configured duration (run_until on
        # an empty queue)
        problem = serving_small_scale_problem(1)
        runtime = ServingRuntime.from_problem(
            problem, ServingConfig(duration_s=2.0, load_factor=1.0, seed=0)
        )
        metrics = runtime.run()
        assert metrics.duration_s >= 2.0

    def test_tiny_queue_backpressures(self, runtime):
        metrics = runtime.with_config(
            duration_s=3.0,
            load_factor=1.0,
            seed=0,
            queue_depth=1,
            batch_window_s=0.5,
            max_batch=1,
        ).run()
        drops = sum(
            t.drops[DropReason.QUEUE_FULL] + t.drops[DropReason.DEADLINE]
            for t in metrics.tasks.values()
        )
        assert drops > 0

    def test_fifo_policy_runs(self, runtime):
        metrics = runtime.with_config(queue_policy="fifo", **CONFIG).run()
        assert metrics.completed > 0

    def test_more_workers_not_slower(self, runtime):
        one = runtime.with_config(num_workers=1, **CONFIG).run()
        four = runtime.with_config(num_workers=4, **CONFIG).run()
        worst_one = max(t.latency.p95_s for t in one.tasks.values() if t.completed)
        worst_four = max(t.latency.p95_s for t in four.tasks.values() if t.completed)
        assert worst_four <= worst_one + 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            ServingConfig(load_factor=0.0)
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)


class TestMetricsShape:
    def test_summary_rows_cover_tasks(self, runtime):
        metrics = runtime.with_config(**CONFIG).run()
        rows = metrics.summary_rows()
        assert [row[0] for row in rows] == [t.task_id for t in runtime.problem.tasks]
        assert len(metrics.SUMMARY_HEADER) == len(rows[0])

    def test_empty_metrics_nan_safe(self):
        metrics = ServingMetrics(duration_s=1.0)
        assert metrics.completed == 0
        assert np.isnan(metrics.deadline_miss_rate)


class TestPublicApi:
    def test_top_level_exports(self):
        assert repro.ServingRuntime is ServingRuntime
        assert repro.TokenBucket is TokenBucket
        assert repro.ServingMetrics is ServingMetrics
        assert "ServingRuntime" in repro.__all__
        assert "TokenBucket" in repro.__all__
        assert "ServingMetrics" in repro.__all__


class TestServeSimCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve-sim"])
        assert args.tasks == 5
        assert args.policy == "edf"
        assert not args.no_prefix_cache

    def test_runs_and_reports(self, capsys):
        assert main(["serve-sim", "--tasks", "3", "--duration", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "p95 ms" in out
        assert "deadline-miss rate" in out
        assert "prefix cache saved" in out

    def test_no_cache_flag(self, capsys):
        assert main(["serve-sim", "--tasks", "2", "--duration", "2",
                     "--no-prefix-cache"]) == 0
        out = capsys.readouterr().out
        assert "prefix cache off" in out
        assert "saved" not in out

    def test_deterministic_output(self, capsys):
        main(["serve-sim", "--tasks", "2", "--duration", "2", "--seed", "5"])
        first = capsys.readouterr().out
        main(["serve-sim", "--tasks", "2", "--duration", "2", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second
