"""Unit tests for the block profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.profiler import profile_model, time_forward
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import BLOCK_NAMES, build_resnet18


@pytest.fixture(scope="module")
def profile():
    model = build_resnet18(num_classes=10, input_size=16, width=8, seed=0)
    return profile_model(model, repeats=2, warmup=1)


class TestProfileModel:
    def test_all_blocks_profiled_in_order(self, profile):
        assert tuple(b.name for b in profile.blocks) == BLOCK_NAMES

    def test_times_positive(self, profile):
        assert all(b.compute_time_s > 0 for b in profile.blocks)

    def test_totals_are_sums(self, profile):
        assert profile.total_compute_time_s == pytest.approx(
            sum(b.compute_time_s for b in profile.blocks)
        )
        assert profile.total_flops == sum(b.flops for b in profile.blocks)
        assert profile.total_params == sum(b.params for b in profile.blocks)

    def test_param_bytes_are_4x_params(self, profile):
        for block in profile.blocks:
            assert block.param_bytes == 4 * block.params

    def test_memory_includes_activations(self, profile):
        for block in profile.blocks:
            assert block.memory_bytes == block.param_bytes + block.activation_bytes
            assert block.memory_gb == pytest.approx(block.memory_bytes / 1e9)

    def test_block_lookup(self, profile):
        assert profile.block("layer2").name == "layer2"
        with pytest.raises(KeyError):
            profile.block("nope")

    def test_total_params_match_model(self):
        model = build_resnet18(num_classes=10, input_size=16, width=8)
        prof = profile_model(model, repeats=1)
        assert prof.total_params == model.param_count()

    def test_pruned_model_profiles_cheaper(self):
        full = build_resnet18(num_classes=10, input_size=16, width=16, seed=0)
        pruned = build_resnet18(num_classes=10, input_size=16, width=16, seed=0)
        prune_resnet(pruned, {"layer3", "layer4"}, 0.8)
        p_full = profile_model(full, repeats=1)
        p_pruned = profile_model(pruned, repeats=1)
        assert p_pruned.total_params < p_full.total_params
        assert p_pruned.total_flops < p_full.total_flops

    def test_layer4_has_most_params(self, profile):
        params = {b.name: b.params for b in profile.blocks}
        assert params["layer4"] == max(
            params[n] for n in BLOCK_NAMES if n != "layer4"
        ) or params["layer4"] > max(
            params[n] for n in BLOCK_NAMES if n != "layer4"
        )


class TestTimeForward:
    def test_returns_positive_median(self):
        calls = []

        def fn(x):
            calls.append(1)

        elapsed = time_forward(fn, np.zeros(1), repeats=3, warmup=1)
        assert elapsed >= 0
        assert len(calls) == 4  # warmup + repeats

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_forward(lambda x: None, np.zeros(1), repeats=0)
