"""Focused tests for smaller behaviours not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import Catalog
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.objective import objective_breakdown
from repro.core.subproblem import BranchAllocation, BranchItem, solve_branch
from repro.core.task import QualityLevel
from repro.core.tree import build_tree
from repro.emulator.lte import HarqConfig
from repro.emulator.scenario import EmulationScenario
from repro.workloads.smallscale import small_scale_problem
from tests.conftest import make_block, make_path, make_task


class TestBranchAllocationValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BranchAllocation(admission=[1.0], radio_blocks=[1, 2])


class TestPerTaskRadioRates:
    def test_weaker_channel_needs_more_rbs(self):
        """Two identical tasks with different B(σ): the weaker link's
        slice must be larger for the same rate."""
        quality = QualityLevel("full", 350_000.0)
        strong = make_task(1, quality=quality)
        weak = make_task(2, quality=quality)
        items = [
            BranchItem(
                task=strong,
                path=make_path(strong, "p1", (make_block("b1", compute_time_s=0.005),)),
                bits_per_rb=350_000.0,
            ),
            BranchItem(
                task=weak,
                path=make_path(weak, "p2", (make_block("b2", compute_time_s=0.005),)),
                bits_per_rb=175_000.0,  # half the per-RB capacity
            ),
        ]
        budgets = Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                          memory_gb=8.0, radio_blocks=50)
        allocation = solve_branch(items, budgets)
        assert allocation.admission == [1.0, 1.0]
        assert allocation.radio_blocks[1] >= 2 * allocation.radio_blocks[0] - 1

    def test_radio_model_feeds_tree_vertices(self):
        quality = QualityLevel("full", 350_000.0)
        task = make_task(1, quality=quality)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.9))
        problem = DOTProblem(
            tasks=(task,),
            catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(
                default_bits_per_rb=350_000.0, per_task_bits_per_rb={1: 999_000.0}
            ),
        )
        tree = build_tree(problem)
        assert tree.cliques[0].vertices[0].bits_per_rb == 999_000.0


class TestTreeInspection:
    def test_tasks_without_options_listed(self):
        task = make_task(1, min_accuracy=0.99)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.5))
        problem = DOTProblem(
            tasks=(task,), catalog=catalog, budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        tree = build_tree(problem)
        assert tree.tasks_without_options() == [task]

    def test_clique_len(self, tiny_problem):
        tree = build_tree(tiny_problem)
        assert all(len(clique) == 2 for clique in tree.cliques)


class TestObjectiveBreakdownResource:
    def test_resource_is_sum_of_non_rejection_terms(self, tiny_problem):
        from repro.core.heuristic import OffloaDNNSolver

        solution = OffloaDNNSolver().solve(tiny_problem)
        breakdown = objective_breakdown(tiny_problem, solution)
        assert breakdown.resource == pytest.approx(
            breakdown.training + breakdown.radio + breakdown.inference
        )


class TestHarqEndToEnd:
    def test_harq_inflates_scenario_latency(self):
        """A full emulation with 10% TTI errors: mean latency rises by
        roughly the expected HARQ overhead (~11% on the airtime)."""
        problem = small_scale_problem(2, seed=0)
        from repro.core.heuristic import OffloaDNNSolver
        from repro.edge.controller import OffloaDNNController
        from repro.edge.resources import Gpu
        from repro.edge.vim import VirtualInfrastructureManager
        from repro.emulator.lte import LteCell
        from repro.radio.slicing import SliceManager

        def run(harq):
            scenario = EmulationScenario(problem=problem, duration_s=5.0,
                                         compute_jitter=0.0, seed=0)
            # monkey-wire HARQ by running the scenario manually
            budgets = problem.budgets
            vim = VirtualInfrastructureManager(
                gpus=(Gpu(0, vram_gb=budgets.memory_gb,
                          compute_share=budgets.compute_time_s),)
            )
            mgr = SliceManager(capacity_rbs=budgets.radio_blocks)
            controller = OffloaDNNController(
                vim=vim, slice_manager=mgr, radio=problem.radio,
                solver=OffloaDNNSolver(slice_margin_rbs=1),
            )
            tickets = controller.handle_admission_requests(
                problem.tasks, problem.catalog
            )
            from repro.emulator.nodes import EdgeServer, UserEquipment
            from repro.emulator.simulator import Simulator
            from repro.emulator.metrics import LatencyTimeline

            sim = Simulator()
            cell = LteCell(slice_manager=mgr, harq=harq)
            server = EdgeServer(simulator=sim, compute_jitter=0.0)
            for task in problem.tasks:
                assignment = controller.last_solution.assignment(task)
                ue = UserEquipment(simulator=sim, cell=cell, server=server,
                                   ticket=tickets[task.task_id],
                                   path=assignment.path)
                ue.start(until=5.0)
            sim.run()
            timeline = LatencyTimeline.from_records(server.completed)
            del scenario
            return np.mean([timeline.mean_latency(t.task_id) for t in problem.tasks])

        clean = run(None)
        noisy = run(HarqConfig(tti_error_rate=0.1, seed=1))
        assert noisy > clean
        assert noisy < 1.5 * clean  # bounded inflation, no runaway queue
