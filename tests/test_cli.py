"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_small_defaults(self):
        args = build_parser().parse_args(["solve-small"])
        assert args.tasks == 5
        assert not args.optimal

    def test_rate_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-large", "--rate", "extreme"])

    def test_reproduce_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])


class TestCommands:
    def test_solve_small(self, capsys):
        assert main(["solve-small", "--tasks", "2"]) == 0
        out = capsys.readouterr().out
        assert "[OffloaDNN]" in out
        assert "objective" in out

    def test_solve_small_with_optimal(self, capsys):
        assert main(["solve-small", "--tasks", "2", "--optimal"]) == 0
        out = capsys.readouterr().out
        assert "[Optimum]" in out

    def test_solve_large(self, capsys):
        assert main(["solve-large", "--rate", "low"]) == 0
        out = capsys.readouterr().out
        assert "[OffloaDNN] low rate" in out
        assert "[SEM-O-RAN]" in out
        assert "admitted 20/20" in out

    def test_emulate(self, capsys):
        assert main(["emulate", "--tasks", "2", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "all within latency targets: True" in out

    def test_profile_resnet(self, capsys):
        assert main(["profile", "--arch", "resnet18", "--input-size", "16",
                     "--repeats", "1", "--classes", "10"]) == 0
        out = capsys.readouterr().out
        assert "layer4" in out
        assert "total:" in out

    def test_profile_mobilenet(self, capsys):
        assert main(["profile", "--arch", "mobilenetv2", "--input-size", "16",
                     "--repeats", "1", "--classes", "10"]) == 0
        assert "mobilenetv2" in capsys.readouterr().out

    def test_reproduce_headline(self, capsys):
        assert main(["reproduce", "headline"]) == 0
        out = capsys.readouterr().out
        assert "memory_saving_pct" in out

    def test_reproduce_fig9(self, capsys):
        assert main(["reproduce", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "[low]" in out and "[high]" in out

    def test_reproduce_fig10(self, capsys):
        assert main(["reproduce", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "offloadnn_memory_fraction" in out

    def test_reproduce_fig11(self, capsys):
        assert main(["reproduce", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "within limits: True" in out

    def test_reproduce_fig2(self, capsys):
        assert main(["reproduce", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "CONFIG A" in out and "epochs-to-80%" in out

    def test_sweep_radio(self, capsys):
        assert main(["sweep", "--knob", "radio", "--values", "30,100"]) == 0
        out = capsys.readouterr().out
        assert "w. admission" in out

    def test_sweep_default_values(self, capsys):
        assert main(["sweep", "--knob", "memory"]) == 0
        assert "memory" in capsys.readouterr().out

    def test_export_and_solve_file(self, capsys, tmp_path):
        problem_file = tmp_path / "p.json"
        solution_file = tmp_path / "s.json"
        assert main(["export-problem", str(problem_file), "--scenario", "small",
                     "--tasks", "2"]) == 0
        assert problem_file.exists()
        assert main(["solve-file", str(problem_file),
                     "--solution-out", str(solution_file)]) == 0
        out = capsys.readouterr().out
        assert "objective:" in out
        assert solution_file.exists()

    def test_solve_file_without_output(self, capsys, tmp_path):
        problem_file = tmp_path / "p.json"
        main(["export-problem", str(problem_file), "--tasks", "1"])
        assert main(["solve-file", str(problem_file)]) == 0


class TestTraceCommands:
    def test_serve_sim_trace_roundtrip(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(["serve-sim", "--tasks", "2", "--duration", "1",
                     "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"spans to {trace_file}" in out
        assert "[virtual clock]" in out  # flamegraph epilogue
        assert trace_file.exists()
        assert main(["trace-summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "request" in out
        assert "virtual" in out

    def test_bare_trace_prints_flamegraph_only(self, capsys, tmp_path):
        assert main(["emulate", "--tasks", "2", "--duration", "2",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "[virtual clock]" in out
        assert "frame" in out
        assert not list(tmp_path.iterdir())  # nothing written

    def test_trace_summary_rejects_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}')
        assert main(["trace-summary", str(bad)]) == 1
        assert "invalid chrome trace" in capsys.readouterr().err
