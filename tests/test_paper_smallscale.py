"""Integration tests: the small-scale evaluation (Figs. 6-8).

These assert the *qualitative relationships* the paper reports:
OffloaDNN's cost matches the optimum closely, its runtime is far lower,
admission equals the optimum, its inference compute usage does not
exceed the optimum's, and memory stays well under the budget.
"""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.core.optimal import OptimalSolver
from repro.core.tree import build_tree
from repro.workloads.smallscale import small_scale_problem


@pytest.fixture(scope="module", params=[1, 2, 3])
def pair(request):
    problem = small_scale_problem(request.param, seed=0)
    heuristic = OffloaDNNSolver().solve(problem)
    optimal = OptimalSolver().solve(problem)
    return problem, heuristic, optimal


class TestSmallScaleAgainstOptimum:
    def test_both_feasible(self, pair):
        problem, heuristic, optimal = pair
        assert check_constraints(problem, heuristic).feasible
        assert check_constraints(problem, optimal).feasible

    def test_optimal_no_worse(self, pair):
        problem, heuristic, optimal = pair
        assert objective_value(problem, optimal) <= objective_value(
            problem, heuristic
        ) + 1e-9

    def test_heuristic_cost_close_to_optimum(self, pair):
        """Fig. 7-left: OffloaDNN matches the optimum very closely
        (within 15% here; the paper shows a negligible gap)."""
        problem, heuristic, optimal = pair
        h = objective_value(problem, heuristic)
        o = objective_value(problem, optimal)
        assert h <= o * 1.15 + 1e-9

    def test_same_weighted_admission_as_optimum(self, pair):
        """Fig. 8-left: identical priority-weighted admission."""
        problem, heuristic, optimal = pair
        assert heuristic.weighted_admission_ratio == pytest.approx(
            optimal.weighted_admission_ratio, abs=1e-6
        )

    def test_same_rb_allocation_as_optimum(self, pair):
        """Fig. 8-center-left: same normalized RB usage."""
        problem, heuristic, optimal = pair
        assert heuristic.total_radio_blocks == pytest.approx(
            optimal.total_radio_blocks, rel=0.05
        )

    def test_inference_compute_not_above_optimum(self, pair):
        """Fig. 8-right: the compute-time clique ordering makes
        OffloaDNN's inference usage <= the optimum's."""
        problem, heuristic, optimal = pair
        assert (
            heuristic.total_inference_compute_s
            <= optimal.total_inference_compute_s + 1e-9
        )

    def test_memory_within_budget_and_moderate(self, pair):
        """Fig. 7-right: memory well below the 8 GB budget (<= 64% in
        the paper)."""
        problem, heuristic, optimal = pair
        assert heuristic.total_memory_gb <= 0.64 * problem.budgets.memory_gb
        assert optimal.total_memory_gb <= heuristic.total_memory_gb + 1e-9


class TestSmallScaleAdmission:
    def test_all_five_tasks_admitted_fully(self):
        """The small scenario has capacity for every task: weighted
        admission equals the priority sum."""
        problem = small_scale_problem(5, seed=0)
        solution = OffloaDNNSolver().solve(problem)
        expected = sum(t.priority for t in problem.tasks)
        assert solution.weighted_admission_ratio == pytest.approx(expected)

    def test_highest_accuracy_task_gets_accurate_path(self):
        """Task 1 requires 0.9 top-1, which only the full fine-tuned
        configurations reach."""
        problem = small_scale_problem(5, seed=0)
        solution = OffloaDNNSolver().solve(problem)
        path = solution.assignment(1).path
        assert path is not None
        assert path.effective_accuracy >= 0.9

    def test_runtime_heuristic_much_faster_for_multiple_tasks(self):
        """Fig. 6: already at T >= 2 the optimum is at least an order of
        magnitude slower (the tree has 15^T branches)."""
        problem = small_scale_problem(3, seed=0)
        heuristic = OffloaDNNSolver().solve(problem)
        optimal = OptimalSolver().solve(problem)
        assert optimal.solve_time_s > 10 * heuristic.solve_time_s

    def test_tree_growth_is_exponential(self):
        sizes = [
            build_tree(small_scale_problem(t, seed=0)).num_branches()
            for t in (1, 2, 3)
        ]
        assert sizes[1] > 5 * sizes[0]
        assert sizes[2] > 5 * sizes[1]
