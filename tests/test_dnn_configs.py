"""Unit tests for the Table I configurations."""

from __future__ import annotations

import pytest

from repro.dnn.configs import STAGE_NAMES, TABLE_I_CONFIGS, BlockConfig, get_config


class TestTableIContents:
    def test_ten_rows(self):
        assert len(TABLE_I_CONFIGS) == 10

    def test_base_and_pruned_variants(self):
        for letter in "ABCDE":
            assert f"CONFIG {letter}" in TABLE_I_CONFIGS
            assert f"CONFIG {letter}-pruned" in TABLE_I_CONFIGS

    @pytest.mark.parametrize(
        "name,shared",
        [
            ("CONFIG A", 0),
            ("CONFIG B", 4),
            ("CONFIG C", 3),
            ("CONFIG D", 2),
            ("CONFIG E", 1),
        ],
    )
    def test_shared_block_counts(self, name, shared):
        assert len(get_config(name).shared_stages) == shared

    def test_config_a_from_scratch(self):
        assert get_config("CONFIG A").from_scratch
        assert not get_config("CONFIG B").from_scratch

    def test_pruned_ratio_is_80pct(self):
        for name, config in TABLE_I_CONFIGS.items():
            if name.endswith("-pruned"):
                assert config.prune_ratio == pytest.approx(0.8)
            else:
                assert config.prune_ratio == 0.0


class TestBlockConfigProperties:
    def test_trainable_blocks_include_head(self):
        for config in TABLE_I_CONFIGS.values():
            assert "head" in config.trainable_blocks

    def test_config_a_trains_everything(self):
        trainable = get_config("CONFIG A").trainable_blocks
        assert set(trainable) == {"stem", *STAGE_NAMES, "head"}

    def test_config_b_trains_only_head(self):
        assert get_config("CONFIG B").trainable_blocks == ("head",)

    def test_prunable_blocks_are_fine_tuned_stages(self):
        assert get_config("CONFIG C-pruned").prunable_blocks == ("layer4",)
        assert get_config("CONFIG D-pruned").prunable_blocks == ("layer3", "layer4")

    def test_config_a_pruned_prunes_all_stages(self):
        assert get_config("CONFIG A-pruned").prunable_blocks == STAGE_NAMES

    def test_pruned_variant_derivation(self):
        base = get_config("CONFIG C")
        variant = base.pruned_variant(0.5)
        assert variant.prune_ratio == 0.5
        assert variant.name == "CONFIG C-pruned"
        assert variant.shared_stages == base.shared_stages

    def test_double_pruning_raises(self):
        with pytest.raises(ValueError):
            get_config("CONFIG C-pruned").pruned_variant()


class TestBlockConfigValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both shared and fine-tuned"):
            BlockConfig(
                name="bad",
                description="",
                shared_stages=("layer1",),
                fine_tuned_stages=("layer1", "layer2", "layer3", "layer4"),
            )

    def test_missing_stage_rejected(self):
        with pytest.raises(ValueError, match="cover all four"):
            BlockConfig(
                name="bad",
                description="",
                shared_stages=("layer1",),
                fine_tuned_stages=("layer2",),
            )

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError, match="prune_ratio"):
            BlockConfig(
                name="bad",
                description="",
                shared_stages=(),
                fine_tuned_stages=STAGE_NAMES,
                prune_ratio=1.5,
            )

    def test_unknown_config_lookup(self):
        with pytest.raises(KeyError, match="unknown config"):
            get_config("CONFIG Z")
