"""Cross-engine bit-identity and the vector data plane's mechanics.

The wave engine's contract is not "statistically close" — it is
bit-identical to the scalar one-event-per-request path: same served
set, same drop reasons, same metrics to the last float.  These tests
pin that contract on the paper's small-scale scenario (deterministic
and Poisson arrivals, several loads and seeds, both queue policies,
tight queues, a one-node cluster) plus the engine's own mechanics:
request pooling, event recycling, and rerun-determinism of traces at
10⁴ requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterDeployment, default_topology
from repro.core.heuristic import OffloaDNNSolver
from repro.emulator.simulator import Simulator
from repro.obs import ObsSession, jsonl_lines
from repro.serving.pool import RequestPool
from repro.serving.queueing import DropReason
from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.workloads.smallscale import serving_small_scale_problem


@pytest.fixture(scope="module")
def problem():
    return serving_small_scale_problem(5)


def _runtime(problem, **overrides):
    return ServingRuntime.from_problem(
        problem,
        ServingConfig(**overrides),
        solver=OffloaDNNSolver(slice_margin_rbs=2),
    )


def _metrics_key(metrics):
    return (
        metrics.duration_s,
        metrics.total_compute_s,
        metrics.compute_saved_s,
        metrics.windows,
        metrics.prefix_merges,
        {
            tid: (
                t.offered,
                t.admitted,
                t.completed,
                t.deadline_misses,
                tuple(sorted((r.value, c) for r, c in t.drops.items())),
                (
                    t.latency.count,
                    t.latency.mean_s,
                    t.latency.p50_s,
                    t.latency.p95_s,
                    t.latency.p99_s,
                    t.latency.max_s,
                ),
            )
            for tid, t in metrics.tasks.items()
        },
    )


def _field(value):
    # NaN != NaN would make every absent-timestamp comparison fail
    return None if value != value else value


def _served_key(runtime):
    """Every materialized (non-admission-shed) request, field by field."""
    return [
        (
            r.task_id,
            r.request_id,
            _field(r.created_at),
            _field(r.deadline_at),
            _field(r.uplink_done_at),
            _field(r.dispatched_at),
            _field(r.started_at),
            _field(r.completed_at),
            r.compute_time_s,
            r.drop_reason.value if r.drop_reason else None,
            _field(r.service_done_at),
        )
        for r in runtime.last_requests
        if r.drop_reason is not DropReason.ADMISSION
    ]


# -- cross-engine bit-identity (the tentpole acceptance criterion) ---------


@pytest.mark.parametrize("poisson", [False, True])
@pytest.mark.parametrize("load_factor", [0.5, 2.0, 3.7])
@pytest.mark.parametrize("seed", [0, 3])
def test_engines_bit_identical_on_paper_scenario(
    problem, poisson, load_factor, seed
):
    kw = dict(duration_s=3.0, load_factor=load_factor, seed=seed, poisson=poisson)
    vec = _runtime(problem, engine="vector", **kw)
    ref = _runtime(problem, engine="scalar", **kw)
    assert _metrics_key(vec.run()) == _metrics_key(ref.run())
    assert _served_key(vec) == _served_key(ref)


@pytest.mark.parametrize("policy", ["fifo", "edf"])
def test_engines_agree_under_backpressure(problem, policy):
    # depth-2 queues force queue_full drops through both disciplines
    kw = dict(
        duration_s=3.0,
        load_factor=4.0,
        seed=1,
        poisson=True,
        queue_depth=2,
        queue_policy=policy,
    )
    vec = _runtime(problem, engine="vector", **kw)
    ref = _runtime(problem, engine="scalar", **kw)
    assert _metrics_key(vec.run()) == _metrics_key(ref.run())
    assert _served_key(vec) == _served_key(ref)


def test_engines_agree_with_max_batch_and_procs(problem):
    kw = dict(duration_s=2.0, load_factor=2.5, seed=7, max_batch=3, num_procs=2)
    vec = _runtime(problem, engine="vector", **kw)
    ref = _runtime(problem, engine="scalar", **kw)
    assert _metrics_key(vec.run()) == _metrics_key(ref.run())


def test_engines_agree_on_one_node_cluster(problem):
    results = {}
    for engine in ("vector", "scalar"):
        runtime = _runtime(problem, engine=engine, duration_s=2.0, seed=0)
        runtime.cluster = ClusterDeployment.place(
            runtime.problem, runtime.solution, runtime.tickets, default_topology(1)
        )
        results[engine] = _metrics_key(runtime.run())
    assert results["vector"] == results["scalar"]


def test_engines_agree_on_registry_instruments(problem):
    # counters and histogram summaries — the obs-facing numbers — match
    snapshots = {}
    for engine in ("vector", "scalar"):
        obs = ObsSession()
        runtime = _runtime(
            problem, engine=engine, duration_s=2.0, load_factor=2.0, seed=3
        )
        runtime.obs = obs
        runtime.run()
        snap = obs.registry.snapshot()
        snapshots[engine] = (snap["counters"], snap["histograms"])
    assert snapshots["vector"] == snapshots["scalar"]


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        ServingConfig(engine="quantum")


def test_wave_engine_refuses_faded_cells(problem):
    from repro.emulator.lte import BlockFading, LteCell
    from repro.serving.engine import WavePlan

    runtime = _runtime(problem, engine="vector", duration_s=1.0)
    cell = LteCell(slice_manager=runtime.slice_manager, fading=BlockFading())
    with pytest.raises(ValueError, match="fading"):
        WavePlan.build([], runtime.config, None, cell)


# -- determinism under pooling and event recycling (satellite S4) ----------


def test_trace_jsonl_byte_identical_across_reruns_at_1e4(problem):
    # ~10⁴ offered requests with admission shedding, queue pressure and
    # recycled events/records: the virtual-domain trace must not move
    lines = []
    for _ in range(2):
        obs = ObsSession()
        runtime = _runtime(
            problem,
            engine="vector",
            duration_s=10.0,
            load_factor=40.0,
            poisson=True,
            seed=3,
        )
        runtime.obs = obs
        metrics = runtime.run()
        assert metrics.offered >= 10_000
        lines.append(jsonl_lines([obs.virtual]))
    assert lines[0] == lines[1]


def test_same_runtime_rerun_is_bit_stable(problem):
    # the pool recycles records between runs on the same runtime object
    runtime = _runtime(problem, engine="vector", duration_s=2.0, load_factor=2.0)
    first_metrics = _metrics_key(runtime.run())
    first_served = _served_key(runtime)
    assert _metrics_key(runtime.run()) == first_metrics
    assert _served_key(runtime) == first_served
    # steady state: the second run allocated nothing new
    assert runtime.pool.in_use <= len(runtime.pool)


def test_simulator_recycling_keeps_event_order():
    # same-timestamp events fire in insertion order even when the heap
    # entries are recycled objects from the freelist
    for recycle in (False, True):
        sim = Simulator(recycle_events=recycle)
        fired: list[str] = []
        for round_id in range(3):
            for k in range(4):
                sim.schedule_at(
                    float(round_id),
                    lambda r=round_id, k=k: fired.append(f"{r}:{k}"),
                )
        sim.run()
        assert fired == [f"{r}:{k}" for r in range(3) for k in range(4)]


def test_request_pool_resets_every_field(problem):
    path = problem.catalog.paths_for(problem.tasks[0])[0]
    pool = RequestPool()
    first = pool.acquire(1, 2, path, 0.0, 1.0, 5.0)
    first.drop_reason = DropReason.DEADLINE
    first.completed_at = 0.7
    first.hops = ["stale"]
    pool.reset()
    again = pool.acquire(3, 4, path, 0.5, 2.0, 6.0)
    assert again is first  # recycled, not reallocated
    assert again.task_id == 3 and again.request_id == 4
    assert again.drop_reason is None and again.hops is None
    assert again.completed_at != again.completed_at  # NaN


# -- sorted-index regression (satellite S1) --------------------------------


def test_dispatch_order_matches_sorted_queue_ids(problem):
    # dispatched requests of one window are ordered by task id: the
    # prebuilt ordered index must behave exactly like per-window sorted()
    runtime = _runtime(problem, engine="vector", duration_s=1.0, load_factor=1.5)
    runtime.run()
    by_window: dict[float, list[int]] = {}
    for r in runtime.last_requests:
        if r.dispatched_at == r.dispatched_at:
            by_window.setdefault(r.dispatched_at, []).append(r.task_id)
    assert by_window, "run dispatched nothing"
    for tasks in by_window.values():
        assert tasks == sorted(tasks)


def test_summary_rows_order_and_cache(problem):
    runtime = _runtime(problem, duration_s=1.0)
    metrics = runtime.run()
    rows = metrics.summary_rows()
    assert [row[0] for row in rows] == sorted(metrics.tasks)
    # cached order is reused, and recomputed if the task set changes
    assert metrics.task_order() is metrics.task_order()
    import dataclasses

    extra = dataclasses.replace(metrics.tasks[rows[0][0]], task_id=999)
    metrics.tasks[999] = extra
    assert metrics.task_order()[-1] == 999
