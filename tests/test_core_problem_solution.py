"""Unit tests for DOT problem instances and solutions."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.solution import Assignment, DOTSolution
from tests.conftest import make_block, make_path, make_task


class TestBudgets:
    def test_valid(self):
        Budgets(compute_time_s=1.0, training_budget_s=1.0, memory_gb=1.0, radio_blocks=1)

    def test_zero_headroom_is_valid(self):
        """Zero compute/memory/radio models an exhausted platform (the
        online churn case); only the training normalizer must stay > 0."""
        Budgets(
            compute_time_s=0.0, training_budget_s=1.0, memory_gb=0.0,
            radio_blocks=0,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_time_s": -1.0},
            {"training_budget_s": 0.0},
            {"training_budget_s": -1.0},
            {"memory_gb": -1.0},
            {"radio_blocks": -1},
        ],
    )
    def test_invalid(self, kwargs):
        base = dict(compute_time_s=1.0, training_budget_s=1.0, memory_gb=1.0, radio_blocks=1)
        base.update(kwargs)
        with pytest.raises(ValueError):
            Budgets(**base)


class TestRadioModel:
    def test_default_bits(self):
        model = RadioModel(default_bits_per_rb=100.0)
        assert model.bits_per_rb(make_task(1)) == 100.0

    def test_per_task_override(self):
        model = RadioModel(default_bits_per_rb=100.0, per_task_bits_per_rb={1: 200.0})
        assert model.bits_per_rb(make_task(1)) == 200.0
        assert model.bits_per_rb(make_task(2)) == 100.0


class TestDOTProblem:
    def _catalog_for(self, tasks):
        catalog = Catalog()
        for t in tasks:
            catalog.add_path(make_path(t, f"p{t.task_id}", (make_block(f"b{t.task_id}"),)))
        return catalog

    def test_tasks_by_priority_descending(self, tiny_problem):
        priorities = [t.priority for t in tiny_problem.tasks_by_priority()]
        assert priorities == sorted(priorities, reverse=True)

    def test_task_lookup(self, tiny_problem):
        assert tiny_problem.task(0).task_id == 0
        with pytest.raises(KeyError):
            tiny_problem.task(99)

    def test_duplicate_ids_rejected(self):
        tasks = (make_task(1), make_task(1))
        with pytest.raises(ValueError, match="duplicate task ids"):
            DOTProblem(
                tasks=tasks,
                catalog=self._catalog_for(tasks[:1]),
                budgets=Budgets(1.0, 1.0, 1.0, 1),
            )

    def test_alpha_validated(self):
        tasks = (make_task(1),)
        with pytest.raises(ValueError, match="alpha"):
            DOTProblem(
                tasks=tasks,
                catalog=self._catalog_for(tasks),
                budgets=Budgets(1.0, 1.0, 1.0, 1),
                alpha=1.5,
            )

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError, match="at least one task"):
            DOTProblem(tasks=(), catalog=Catalog(), budgets=Budgets(1.0, 1.0, 1.0, 1))

    def test_priority_ties_broken_by_id(self):
        tasks = (make_task(2, priority=0.5), make_task(1, priority=0.5))
        problem = DOTProblem(
            tasks=tasks,
            catalog=self._catalog_for(tasks),
            budgets=Budgets(1.0, 1.0, 1.0, 1),
        )
        assert [t.task_id for t in problem.tasks_by_priority()] == [1, 2]


class TestAssignment:
    def test_admitted_requires_path(self):
        with pytest.raises(ValueError, match="needs a path"):
            Assignment(task=make_task(1), path=None, admission_ratio=0.5, radio_blocks=1)

    def test_rejected_without_path_ok(self):
        a = Assignment(task=make_task(1), path=None, admission_ratio=0.0, radio_blocks=0)
        assert not a.admitted

    def test_admitted_rate(self):
        task = make_task(1, request_rate=10.0)
        path = make_path(task, "p", (make_block("b"),))
        a = Assignment(task=task, path=path, admission_ratio=0.4, radio_blocks=2)
        assert a.admitted_rate == pytest.approx(4.0)

    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            Assignment(task=make_task(1), path=None, admission_ratio=1.5, radio_blocks=0)


class TestDOTSolution:
    def _solution(self):
        t1 = make_task(1, request_rate=2.0, priority=1.0)
        t2 = make_task(2, request_rate=4.0, priority=0.5)
        shared = make_block("shared", memory_gb=0.5, training_cost_s=100.0)
        own1 = make_block("own1", memory_gb=0.2, compute_time_s=0.01, training_cost_s=10.0)
        own2 = make_block("own2", memory_gb=0.3, compute_time_s=0.02, training_cost_s=20.0)
        p1 = make_path(t1, "p1", (shared, own1))
        p2 = make_path(t2, "p2", (shared, own2))
        sol = DOTSolution()
        sol.assignments[1] = Assignment(task=t1, path=p1, admission_ratio=1.0, radio_blocks=3)
        sol.assignments[2] = Assignment(task=t2, path=p2, admission_ratio=0.5, radio_blocks=4)
        return sol

    def test_active_blocks_shared_counted_once(self):
        sol = self._solution()
        assert set(sol.active_blocks()) == {"shared", "own1", "own2"}
        assert sol.total_memory_gb == pytest.approx(0.5 + 0.2 + 0.3)

    def test_training_cost_paid_once(self):
        sol = self._solution()
        assert sol.total_training_cost_s == pytest.approx(130.0)

    def test_inference_compute_scales_with_admitted_rate(self):
        sol = self._solution()
        # t1: 1.0*2.0*(0.005+0.01); t2: 0.5*4.0*(0.005+0.02)
        assert sol.total_inference_compute_s == pytest.approx(
            2.0 * 0.015 + 2.0 * 0.025
        )

    def test_radio_blocks_weighted_by_admission(self):
        sol = self._solution()
        assert sol.total_radio_blocks == pytest.approx(1.0 * 3 + 0.5 * 4)

    def test_weighted_admission_ratio(self):
        sol = self._solution()
        assert sol.weighted_admission_ratio == pytest.approx(1.0 * 1.0 + 0.5 * 0.5)

    def test_rejected_tasks_free_blocks(self):
        sol = self._solution()
        t3 = make_task(3)
        sol.assignments[3] = Assignment(task=t3, path=None, admission_ratio=0.0, radio_blocks=0)
        assert sol.admitted_task_count == 2
        assert "own3" not in sol.active_blocks()

    def test_admission_vector(self):
        sol = self._solution()
        assert sol.admission_vector() == {1: 1.0, 2: 0.5}
