"""Integration tests: the Sec. II motivating experiments (Figs. 2-3)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig2_training_curves, fig3_pruning_effects


@pytest.fixture(scope="module")
def fig2():
    # full width so that activation storage (not the fixed framework
    # overhead) dominates the training-memory comparison, as on a GPU
    return fig2_training_curves(epochs=250, width=64, input_size=32)


@pytest.fixture(scope="module")
def fig3():
    # width 32 gives wall-clock margins comfortably above scheduler
    # noise while keeping the fixture under ~10 s
    return fig3_pruning_effects(width=32, input_size=16, repeats=3)


class TestFig2Left:
    def test_config_a_needs_over_200_epochs_for_80pct(self, fig2):
        assert fig2["CONFIG A"]["epochs_to_80pct"] > 200

    def test_b_and_c_converge_fast(self, fig2):
        assert fig2["CONFIG B"]["epochs_to_80pct"] < 60
        assert fig2["CONFIG C"]["epochs_to_80pct"] < 80

    def test_c_outperforms_d_and_e_in_convergence(self, fig2):
        assert fig2["CONFIG C"]["epochs_to_80pct"] < fig2["CONFIG D"]["epochs_to_80pct"]
        assert fig2["CONFIG D"]["epochs_to_80pct"] < fig2["CONFIG E"]["epochs_to_80pct"]

    def test_b_overfits_below_its_peak(self, fig2):
        curve = fig2["CONFIG B"]["accuracy_curve"]
        assert curve[-1] < max(curve) - 0.01

    def test_curves_have_requested_length(self, fig2):
        for data in fig2.values():
            assert len(data["accuracy_curve"]) == 250


class TestFig2Right:
    def test_a_uses_most_training_memory(self, fig2):
        peaks = {name: d["peak_memory_mib"] for name, d in fig2.items()}
        assert peaks["CONFIG A"] == max(peaks.values())

    def test_b_roughly_half_of_a(self, fig2):
        """The paper highlights ~1.8x less memory for CONFIG B vs A."""
        ratio = fig2["CONFIG A"]["peak_memory_mib"] / fig2["CONFIG B"]["peak_memory_mib"]
        assert 1.3 < ratio < 3.0

    def test_memory_ordering_b_c_lowest(self, fig2):
        peaks = {name: d["peak_memory_mib"] for name, d in fig2.items()}
        ordered = sorted(peaks, key=peaks.get)
        assert ordered[:2] == ["CONFIG B", "CONFIG C"]


class TestFig3Left:
    def test_pruning_reduces_compute_time_where_blocks_prunable(self, fig3):
        """A/C/D/E-pruned run faster than their unpruned versions
        (B-pruned prunes nothing structural, Table I)."""
        for letter in "ACDE":
            assert (
                fig3[f"CONFIG {letter}-pruned"]["inference_time_ms"]
                < fig3[f"CONFIG {letter}"]["inference_time_ms"]
            )

    def test_a_pruned_fastest_of_pruned_set(self, fig3):
        pruned_times = {
            name: d["inference_time_ms"]
            for name, d in fig3.items()
            if name.endswith("-pruned")
        }
        assert min(pruned_times, key=pruned_times.get) == "CONFIG A-pruned"

    def test_b_pruned_slowest_of_pruned_set(self, fig3):
        """B-pruned keeps the most full blocks, hence the most parameters
        and the longest inference among pruned configurations."""
        pruned_times = {
            name: d["inference_time_ms"]
            for name, d in fig3.items()
            if name.endswith("-pruned")
        }
        assert max(pruned_times, key=pruned_times.get) == "CONFIG B-pruned"

    def test_param_ordering_among_pruned(self, fig3):
        assert (
            fig3["CONFIG A-pruned"]["params"]
            < fig3["CONFIG D-pruned"]["params"]
            < fig3["CONFIG C-pruned"]["params"]
            <= fig3["CONFIG B-pruned"]["params"]
        )


class TestFig3Right:
    def test_pruning_costs_accuracy(self, fig3):
        for letter in "ABCDE":
            assert (
                fig3[f"CONFIG {letter}-pruned"]["class_accuracy"]
                <= fig3[f"CONFIG {letter}"]["class_accuracy"] + 1e-12
            )

    def test_b_pruned_best_accuracy_of_pruned_set(self, fig3):
        """Most blocks inherited from the base DNN -> best post-pruning
        accuracy (the paper's observation)."""
        pruned_acc = {
            name: d["class_accuracy"]
            for name, d in fig3.items()
            if name.endswith("-pruned")
        }
        assert max(pruned_acc, key=pruned_acc.get) == "CONFIG B-pruned"

    def test_accuracies_in_plausible_band(self, fig3):
        for name, d in fig3.items():
            if name.endswith("-pruned") or name == "CONFIG A":
                continue
            assert 0.6 < d["class_accuracy"] < 0.95
