"""Cluster fabric: nodes, placement, cluster serving, fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterDeployment,
    ClusterNode,
    ClusterOrchestrator,
    ClusterTopology,
    LinkSpec,
    NodeRegistry,
    NodeSpec,
    default_topology,
)
from repro.core.heuristic import OffloaDNNSolver
from repro.obs import ObsSession, jsonl_lines
from repro.serving import ServingConfig, ServingRuntime
from repro.serving.queueing import DropReason
from repro.workloads.smallscale import serving_small_scale_problem


def _runtime(duration_s: float = 2.0, seed: int = 0) -> ServingRuntime:
    problem = serving_small_scale_problem(5, seed=seed)
    config = ServingConfig(duration_s=duration_s, seed=seed)
    return ServingRuntime.from_problem(
        problem, config, solver=OffloaDNNSolver(slice_margin_rbs=2)
    )


def _deploy(runtime: ServingRuntime, topology: ClusterTopology, **knobs):
    return ClusterDeployment.place(
        runtime.problem, runtime.solution, runtime.tickets, topology, **knobs
    )


# -- node + registry -------------------------------------------------------


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(node_id="")
    with pytest.raises(ValueError):
        NodeSpec(node_id="n", tier="fog")
    with pytest.raises(ValueError):
        NodeSpec(node_id="n", cpu_scale=0.0)
    with pytest.raises(ValueError):
        NodeSpec(node_id="n", failure_rate=1.0)


def test_cluster_node_execute_and_clamped_utilization():
    node = ClusterNode(spec=NodeSpec(node_id="n", num_workers=2))
    # both workers busy [0, 2]; a third job queues behind worker 0
    assert node.execute(2.0, 0.0) == (0.0, 2.0)
    assert node.execute(2.0, 0.0) == (0.0, 2.0)
    assert node.execute(1.0, 0.0) == (2.0, 3.0)
    assert node.busy_workers(1.0) == 2
    assert node.busy_until == 3.0
    # horizon at t=1: both workers saturated; tails never push past 1.0
    assert node.utilization(1.0) == 1.0
    # horizon at t=4: 5 busy worker-seconds over 8 available
    assert node.utilization(4.0) == pytest.approx(5.0 / 8.0)
    node.reset()
    assert node.busy_time_s == 0.0 and node.segments_executed == 0


def test_cluster_node_scaled_cost():
    fast = ClusterNode(spec=NodeSpec(node_id="f", cpu_scale=4.0))
    assert fast.scaled_cost(1.0) == pytest.approx(0.25)


def test_topology_save_load_roundtrip(tmp_path):
    topology = default_topology(2, cloud=True, fp16_activations=True)
    path = tmp_path / "nodes.json"
    topology.save(path)
    loaded = ClusterTopology.load(path)
    assert loaded == topology
    assert any(spec.tier == "cloud" for spec in loaded.nodes)


def test_topology_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        ClusterTopology(nodes=())
    spec = NodeSpec(node_id="n")
    with pytest.raises(ValueError):
        ClusterTopology(nodes=(spec, spec))


def test_registry_eligibility_and_least_loaded():
    registry = NodeRegistry()
    registry.register(NodeSpec(node_id="a", resident_blocks=frozenset({"b1", "b2"})))
    registry.register(NodeSpec(node_id="b", resident_blocks=frozenset({"b1"})))
    registry.register(NodeSpec(node_id="c"))  # hosts everything
    eligible = [n.node_id for n in registry.eligible_nodes(["b1", "b2"])]
    assert eligible == ["a", "c"]
    registry.node("a").execute(1.0, 0.0)
    assert registry.least_loaded(["b1", "b2"]).node_id == "c"
    assert registry.least_loaded(["b1", "b2"], exclude="c").node_id == "a"
    # "c" advertises the full repository, so it hosts even "b9";
    # excluding it leaves only the explicit resident sets, which don't
    assert registry.least_loaded(["b9"]).node_id == "c"
    assert registry.least_loaded(["b9"], exclude="c") is None


def test_validate_residency_rejects_unknown_blocks():
    runtime = _runtime()
    topology = ClusterTopology(
        nodes=(NodeSpec(node_id="n", resident_blocks=frozenset({"no-such"})),)
    )
    with pytest.raises(ValueError, match="unknown blocks"):
        _deploy(runtime, topology)


# -- placement -------------------------------------------------------------


def test_placement_covers_admitted_tasks_and_is_deterministic():
    runtime = _runtime()
    topology = default_topology(3)
    first = _deploy(runtime, topology)
    second = _deploy(runtime, topology)
    assert first.plan.describe() == second.plan.describe()
    admitted = {
        tid for tid, ticket in runtime.tickets.items() if ticket.admitted
    }
    assert set(first.plan.segments_by_task) == admitted
    # segments partition each path's block sequence in order
    for task_id, segments in first.plan.segments_by_task.items():
        path = runtime.solution.assignment(
            next(t for t in runtime.problem.tasks if t.task_id == task_id)
        ).path
        flattened = tuple(b for seg in segments for b in seg.blocks)
        assert flattened == path.blocks
        assert segments[-1].egress_bits == 0.0


def test_placement_single_node_never_splits():
    runtime = _runtime()
    deployment = _deploy(runtime, default_topology(1))
    assert deployment.plan.split_tasks == 0
    assert deployment.plan.nodes_used() == {"edge0"}


def test_orchestrator_max_segments_one_disables_splits():
    runtime = _runtime()
    registry = NodeRegistry.from_topology(default_topology(3))
    orchestrator = ClusterOrchestrator(registry=registry, max_segments=1)
    plan = orchestrator.place(runtime.problem, runtime.solution, runtime.tickets)
    assert plan.split_tasks == 0
    assert len(plan.nodes_used()) > 1  # still load-balances whole paths


# -- cluster serving through the runtime -----------------------------------


def test_one_node_cluster_matches_batch_executor_exactly():
    runtime = _runtime()
    baseline = runtime.run()
    runtime.cluster = _deploy(runtime, default_topology(1))
    clustered = runtime.run()
    assert clustered.completed == baseline.completed
    for task_id, base_task in baseline.tasks.items():
        clu = clustered.tasks[task_id]
        assert clu.completed == base_task.completed
        assert clu.latency.p50_s == pytest.approx(base_task.latency.p50_s, abs=0)
        assert clu.latency.p95_s == pytest.approx(base_task.latency.p95_s, abs=0)


def test_multi_node_serves_same_admitted_set_as_single_node():
    runtime = _runtime()
    baseline = runtime.run()
    served_single = {
        r.request_id for r in runtime.last_requests if r.completed
    }
    runtime.cluster = _deploy(runtime, default_topology(3))
    clustered = runtime.run()
    served_cluster = {
        r.request_id for r in runtime.last_requests if r.completed
    }
    assert served_cluster == served_single
    assert clustered.offered == baseline.offered


def test_three_node_trace_is_byte_identical_across_runs():
    lines: list[list[str]] = []
    for _ in range(2):
        runtime = _runtime()
        runtime.cluster = _deploy(runtime, default_topology(3))
        obs = ObsSession()
        runtime.obs = obs
        runtime.run()
        lines.append(jsonl_lines([obs.virtual]))
    assert lines[0] == lines[1]
    assert any('"hop.transfer"' in line for line in lines[0])
    assert any('"hop.exec"' in line for line in lines[0])


def test_cluster_run_reports_qos_hops_and_streamed_bytes():
    runtime = _runtime()
    runtime.cluster = _deploy(runtime, default_topology(3))
    metrics = runtime.run()
    qos = runtime.executor.qos
    assert metrics.completed > 0
    assert qos.hop_counts.get("exec", 0) > 0
    if runtime.cluster.plan.split_tasks:
        assert qos.hop_counts.get("transfer", 0) > 0
        assert qos.bytes_streamed > 0
    for row in qos.node_rows(metrics.duration_s):
        util_pct = row[-1]
        assert 0.0 <= util_pct <= 100.0


# -- int8 activation streams ------------------------------------------------


def test_topology_int8_roundtrip_and_exclusivity(tmp_path):
    topology = default_topology(2, int8_activations=True)
    assert ClusterTopology.from_dict(topology.to_dict()).int8_activations
    path = tmp_path / "nodes.json"
    topology.save(path)
    assert ClusterTopology.load(path).int8_activations
    registry = NodeRegistry.from_topology(topology)
    assert registry.router.int8_activations
    with pytest.raises(ValueError):
        default_topology(2, fp16_activations=True, int8_activations=True)


def test_int8_router_charges_quarter_payload():
    from repro.cluster.stream import LinkSpec as StreamLinkSpec
    from repro.cluster.stream import StreamRouter
    from repro.cluster.wire import header_nbytes

    spec = StreamLinkSpec(src="*", dst="*")
    fp32 = StreamRouter(default_spec=spec)
    int8 = StreamRouter(default_spec=spec, int8_activations=True)
    _, _, fp32_bytes = fp32.transfer_bits("a", "b", 32_000.0, 0.0)
    _, _, int8_bytes = int8.transfer_bits("a", "b", 32_000.0, 0.0)
    assert fp32_bytes == header_nbytes(ndim=4) + 4000
    assert int8_bytes == header_nbytes(ndim=4, quantize_int8=True) + 1000
    # self-hops stay free in every mode
    assert int8.transfer_bits("a", "a", 32_000.0, 0.0) == (0.0, False, 0)


def test_int8_send_tensor_round_trips_losslessly():
    """Acceptance: int8 activations produced by the quantized engine
    travel verbatim — the frame decodes to the same bytes plus the
    producing plan's activation scale."""
    from repro.cluster.stream import LinkSpec as StreamLinkSpec
    from repro.cluster.stream import StreamRouter
    from repro.cluster.wire import decode_frame_info

    router = StreamRouter(
        default_spec=StreamLinkSpec(src="*", dst="*"), int8_activations=True
    )
    tensor = np.arange(-64, 64, dtype=np.int8).reshape(4, 32)
    delivery, frame = router.send_tensor("a", "b", tensor, 0.0, scale=0.03125)
    assert delivery > 0.0
    decoded, consumed, info = decode_frame_info(frame)
    assert consumed == len(frame)
    assert info.int8 and info.scale == pytest.approx(np.float32(0.03125))
    np.testing.assert_array_equal(decoded, tensor)


def test_int8_cluster_streams_fewer_bytes_same_service():
    runtime = _runtime()
    runtime.cluster = _deploy(runtime, default_topology(3))
    baseline = runtime.run()
    assert runtime.cluster.plan.split_tasks > 0
    fp32_bytes = runtime.executor.qos.bytes_streamed
    assert fp32_bytes > 0

    quantized = _runtime()
    quantized.cluster = _deploy(
        quantized, default_topology(3, int8_activations=True)
    )
    metrics = quantized.run()
    int8_bytes = quantized.executor.qos.bytes_streamed
    assert metrics.offered == baseline.offered
    assert metrics.completed > 0
    # payloads quarter; headers keep the ratio just above 1/4
    assert 0 < int8_bytes < 0.3 * fp32_bytes


# -- fault injection: bounded retry and the two drop reasons ---------------


def test_dispatch_failure_retries_on_second_node_without_drops():
    runtime = _runtime()
    topology = ClusterTopology(
        nodes=(
            NodeSpec(node_id="flaky", failure_rate=0.5),
            NodeSpec(node_id="solid"),
        ),
        default_link=LinkSpec(src="*", dst="*"),
    )
    baseline = runtime.run()
    runtime.cluster = _deploy(runtime, topology)
    metrics = runtime.run()
    registry = runtime.cluster.registry
    assert registry.node("flaky").dispatch_failures > 0
    # the retry target never fails, so every request still completes
    assert metrics.completed == baseline.completed
    total_drops = sum(
        t.drops[DropReason.REMOTE_ERROR] + t.drops[DropReason.TRANSFER_TIMEOUT]
        for t in metrics.tasks.values()
    )
    assert total_drops == 0


def test_remote_error_drops_when_retry_also_fails():
    runtime = _runtime()
    topology = ClusterTopology(
        nodes=(
            NodeSpec(node_id="a", failure_rate=0.9),
            NodeSpec(node_id="b", failure_rate=0.9),
        ),
        default_link=LinkSpec(src="*", dst="*"),
    )
    runtime.cluster = _deploy(runtime, topology)
    metrics = runtime.run()
    remote = sum(
        t.drops[DropReason.REMOTE_ERROR] for t in metrics.tasks.values()
    )
    assert remote > 0
    # dropped requests never complete and never linger as outstanding
    assert metrics.completed + remote + sum(
        t.drops[DropReason.ADMISSION]
        + t.drops[DropReason.QUEUE_FULL]
        + t.drops[DropReason.DEADLINE]
        + t.drops[DropReason.TRANSFER_TIMEOUT]
        for t in metrics.tasks.values()
    ) == metrics.offered


def test_transfer_timeout_drops_when_link_keeps_stalling():
    runtime = _runtime()
    topology = ClusterTopology(
        nodes=(NodeSpec(node_id="a"), NodeSpec(node_id="b")),
        default_link=LinkSpec(
            src="*", dst="*", stall_rate=0.9, stall_factor=1000.0
        ),
    )
    runtime.cluster = _deploy(runtime, topology, transfer_timeout_s=0.01)
    assert runtime.cluster.plan.split_tasks > 0  # transfers do happen
    metrics = runtime.run()
    timeouts = sum(
        t.drops[DropReason.TRANSFER_TIMEOUT] for t in metrics.tasks.values()
    )
    assert timeouts > 0
    # the QoS monitor saw the sender-side retries
    assert runtime.executor.qos.hop_counts.get("retry", 0) > 0


def test_single_node_runtime_unaffected_by_new_fields():
    """Non-cluster runs keep NaN service_done_at and no hops."""
    runtime = _runtime(duration_s=1.0)
    metrics = runtime.run()
    assert metrics.completed > 0
    for row in metrics.summary_rows():
        assert row[-1] == 0  # net-drop column exists and is zero


# -- CLI -------------------------------------------------------------------


def test_cli_serve_cluster(capsys):
    from repro.cli import main

    assert main(["serve-cluster", "2", "--duration", "1"]) == 0
    out = capsys.readouterr().out
    assert "cluster: 2 nodes" in out
    assert "edge0" in out and "edge1" in out


def test_cli_serve_sim_cluster_topology_file(tmp_path, capsys):
    from repro.cli import main

    nodes = tmp_path / "nodes.json"
    default_topology(2, cloud=True).save(nodes)
    assert main(["serve-sim", "--cluster", str(nodes), "--duration", "1"]) == 0
    out = capsys.readouterr().out
    assert "cluster: 3 nodes" in out
    assert "cloud0" in out
