"""Tests for detection-head training (targets, loss, trainer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.detection import (
    BoundingBox,
    Detection,
    build_detector,
    make_detection_dataset,
)
from repro.dnn.detection_train import (
    DetectorTrainer,
    detection_loss_and_grad,
    encode_targets,
)
from repro.dnn.resnet import build_resnet18


def _objects(label: int, x0: float, y0: float, x1: float, y1: float):
    return [Detection(BoundingBox(x0, y0, x1, y1), label=label)]


class TestEncodeTargets:
    def test_positive_cell_is_object_center(self):
        annotations = [_objects(1, 8, 8, 16, 16)]  # center (12, 12)
        targets, positive = encode_targets(annotations, 4, 4, 32, num_classes=2)
        # cell size 8 -> center cell (1, 1)
        assert positive[0, 1, 1]
        assert positive.sum() == 1
        assert targets[0, 0, 1, 1] == 1.0
        assert targets[0, 5 + 1, 1, 1] == 1.0

    def test_offsets_invert_decoder(self):
        """Encoding then decoding the offsets recovers the box."""
        annotations = [_objects(0, 6, 10, 18, 22)]
        targets, positive = encode_targets(annotations, 4, 4, 32, num_classes=1)
        i, j = np.argwhere(positive[0])[0]
        dx = np.tanh(targets[0, 1, i, j])
        dy = np.tanh(targets[0, 2, i, j])
        width = 8 * np.exp(targets[0, 3, i, j])
        height = 8 * np.exp(targets[0, 4, i, j])
        center_x = (j + 0.5 + dx) * 8
        center_y = (i + 0.5 + dy) * 8
        assert center_x == pytest.approx(12.0, abs=0.2)
        assert center_y == pytest.approx(16.0, abs=0.2)
        assert width == pytest.approx(12.0, abs=0.2)
        assert height == pytest.approx(12.0, abs=0.2)

    def test_edge_object_clamped_to_grid(self):
        annotations = [_objects(0, 28, 28, 32, 32)]  # center (30, 30)
        _, positive = encode_targets(annotations, 4, 4, 32, num_classes=1)
        assert positive[0, 3, 3]

    def test_empty_image_all_negative(self):
        targets, positive = encode_targets([[]], 4, 4, 32, num_classes=1)
        assert not positive.any()
        assert targets.sum() == 0.0


class TestDetectionLoss:
    def _setup(self):
        annotations = [_objects(0, 8, 8, 16, 16)]
        targets, positive = encode_targets(annotations, 4, 4, 32, num_classes=2)
        return targets, positive

    def test_perfect_prediction_low_loss(self):
        targets, positive = self._setup()
        raw = targets.copy()
        raw[:, 0] = np.where(targets[:, 0] > 0, 20.0, -20.0)  # saturated objectness
        raw[:, 5:] = np.where(targets[:, 5:] > 0, 20.0, -20.0)
        loss, _ = detection_loss_and_grad(raw, targets, positive)
        assert loss < 1e-3

    def test_gradient_matches_finite_differences(self):
        targets, positive = self._setup()
        rng = np.random.default_rng(0)
        raw = rng.normal(0.0, 0.5, targets.shape)
        _, grad = detection_loss_and_grad(raw, targets, positive)
        eps = 1e-5
        for index in [(0, 0, 1, 1), (0, 2, 1, 1), (0, 5, 1, 1), (0, 6, 0, 0)]:
            raw[index] += eps
            up, _ = detection_loss_and_grad(raw, targets, positive)
            raw[index] -= 2 * eps
            down, _ = detection_loss_and_grad(raw, targets, positive)
            raw[index] += eps
            numeric = (up - down) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-7)

    def test_box_loss_only_on_positive_cells(self):
        targets, positive = self._setup()
        raw = np.zeros_like(targets)
        raw[:, 1:5] += 5.0  # wrong boxes everywhere
        _, grad = detection_loss_and_grad(raw, targets, positive)
        negative_box_grad = grad[:, 1:5][~np.broadcast_to(
            positive[:, None], grad[:, 1:5].shape
        )]
        assert np.allclose(negative_box_grad, 0.0)


class TestDetectorTrainer:
    @pytest.fixture(scope="class")
    def trained(self):
        dataset = make_detection_dataset(num_images=24, image_size=32,
                                         num_classes=2, max_objects=1, seed=0)
        backbone = build_resnet18(num_classes=10, input_size=32, width=8, seed=0)
        _, head = build_detector(backbone, num_classes=2, hidden_channels=32)
        trainer = DetectorTrainer(backbone, head, image_size=32, lr=0.01,
                                  batch_size=8, seed=0)
        before = trainer.evaluate_map(dataset)
        run = trainer.fit(dataset, epochs=50)
        return dataset, trainer, run, before

    def test_loss_decreases(self, trained):
        _, _, run, _ = trained
        assert run.loss[-1] < 0.5 * run.loss[0]

    def test_map_improves_substantially(self, trained):
        dataset, trainer, run, before = trained
        final = run.map_history[-1]
        assert final > before + 0.2
        assert final > 0.2

    def test_objectness_prior_initialized_negative(self):
        backbone = build_resnet18(num_classes=10, input_size=16, width=8)
        _, head = build_detector(backbone, num_classes=2)
        bias = head.module.layers[-1].bias
        assert bias[0] == pytest.approx(-2.0)

    def test_invalid_epochs(self):
        dataset = make_detection_dataset(num_images=2, image_size=16, num_classes=1)
        backbone = build_resnet18(num_classes=10, input_size=16, width=8)
        _, head = build_detector(backbone, num_classes=1)
        trainer = DetectorTrainer(backbone, head, image_size=16)
        with pytest.raises(ValueError):
            trainer.fit(dataset, epochs=0)
