"""Serving queues: ordering, backpressure and deadline-aware dropping."""

from __future__ import annotations

import pytest

from repro.core.catalog import Block, Path
from repro.core.task import QualityLevel
from repro.serving.queueing import DropReason, ServingQueue, ServingRequest

QUALITY = QualityLevel(name="full", bits_per_image=350_000.0)


def make_path(compute_time_s: float = 0.01) -> Path:
    block = Block("b", "d", compute_time_s=compute_time_s, memory_gb=0.1)
    return Path("p", "d", 1, (block,), accuracy=0.9, quality=QUALITY)


def make_request(request_id: int, deadline_at: float, created_at: float = 0.0,
                 compute_time_s: float = 0.01) -> ServingRequest:
    return ServingRequest(
        task_id=1,
        request_id=request_id,
        path=make_path(compute_time_s),
        created_at=created_at,
        deadline_at=deadline_at,
        bits=350_000.0,
    )


class TestFifoQueue:
    def test_arrival_order(self):
        queue = ServingQueue(task_id=1, policy="fifo")
        for i, deadline in enumerate([0.9, 0.1, 0.5]):
            assert queue.push(make_request(i, deadline)) is None
        order = [queue.pop_ready(0.0)[0].request_id for _ in range(3)]
        assert order == [0, 1, 2]

    def test_full_queue_drops_newcomer(self):
        queue = ServingQueue(task_id=1, policy="fifo", max_depth=2)
        assert queue.push(make_request(0, 1.0)) is None
        assert queue.push(make_request(1, 1.0)) is None
        victim = queue.push(make_request(2, 1.0))
        assert victim is not None
        assert victim.request_id == 2
        assert victim.drop_reason is DropReason.QUEUE_FULL
        assert len(queue) == 2


class TestEdfQueue:
    def test_earliest_deadline_first(self):
        queue = ServingQueue(task_id=1, policy="edf")
        for i, deadline in enumerate([0.9, 0.1, 0.5]):
            queue.push(make_request(i, deadline))
        order = [queue.pop_ready(0.0)[0].request_id for _ in range(3)]
        assert order == [1, 2, 0]

    def test_deadline_ties_fifo(self):
        queue = ServingQueue(task_id=1, policy="edf")
        for i in range(3):
            queue.push(make_request(i, 0.5))
        order = [queue.pop_ready(0.0)[0].request_id for _ in range(3)]
        assert order == [0, 1, 2]

    def test_full_queue_drops_latest_deadline(self):
        queue = ServingQueue(task_id=1, policy="edf", max_depth=2)
        queue.push(make_request(0, 0.9))
        queue.push(make_request(1, 0.1))
        victim = queue.push(make_request(2, 0.5))
        assert victim is not None
        assert victim.request_id == 0  # the most relaxed deadline loses
        assert victim.drop_reason is DropReason.QUEUE_FULL
        assert len(queue) == 2

    def test_urgent_newcomer_displaces(self):
        queue = ServingQueue(task_id=1, policy="edf", max_depth=1)
        queue.push(make_request(0, 0.9))
        victim = queue.push(make_request(1, 0.1))
        assert victim.request_id == 0
        request, _ = queue.pop_ready(0.0)
        assert request.request_id == 1


class TestDeadlineDropping:
    @pytest.mark.parametrize("policy", ["fifo", "edf"])
    def test_expired_dropped_at_pop(self, policy):
        queue = ServingQueue(task_id=1, policy=policy)
        queue.push(make_request(0, deadline_at=0.1))
        queue.push(make_request(1, deadline_at=5.0))
        request, expired = queue.pop_ready(now=1.0)
        assert request.request_id == 1
        assert [r.request_id for r in expired] == [0]
        assert expired[0].drop_reason is DropReason.DEADLINE

    def test_unreachable_deadline_dropped(self):
        # deadline nominally in the future, but the path's compute time
        # alone cannot fit: now + Σc > deadline
        queue = ServingQueue(task_id=1, policy="fifo")
        queue.push(make_request(0, deadline_at=1.05, compute_time_s=0.2))
        request, expired = queue.pop_ready(now=1.0)
        assert request is None
        assert len(expired) == 1

    def test_empty_pop(self):
        request, expired = ServingQueue(task_id=1).pop_ready(0.0)
        assert request is None and expired == []


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            ServingQueue(task_id=1, policy="lifo")

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            ServingQueue(task_id=1, max_depth=0)


class TestServingRequest:
    def test_lifecycle_flags(self):
        request = make_request(0, deadline_at=0.5)
        assert not request.completed and not request.dropped
        request.completed_at = 0.4
        assert request.completed and not request.missed_deadline
        request.completed_at = 0.6
        assert request.missed_deadline
        assert request.latency_s == pytest.approx(0.6)

    def test_dropped_never_completed(self):
        request = make_request(0, deadline_at=0.5)
        request.drop_reason = DropReason.ADMISSION
        request.completed_at = 0.4
        assert request.dropped and not request.completed
