"""Exporter tests: Chrome trace schema, JSONL round-trip, flamegraph."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    flame_summary,
    jsonl_lines,
    load_records,
    phase_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _sample_tracers() -> tuple[Tracer, Tracer]:
    wall = Tracer(domain="wall")
    wall.record("solve", 100.0, 0.5, cat="solver", track="solver")
    wall.record("allocate", 100.1, 0.2, cat="solver", track="solver")
    virtual = Tracer(domain="virtual")
    virtual.record("request", 1.0, 0.3, cat="serving", track="req0")
    virtual.record("uplink", 1.0, 0.1, cat="serving", track="req0")
    virtual.record("execute", 1.1, 0.2, cat="serving", track="req0")
    virtual.event_at("drop", 2.0, cat="serving", track="task1", args={"request": 5})
    return wall, virtual


class TestChromeTrace:
    def test_valid_by_own_validator(self):
        wall, virtual = _sample_tracers()
        trace = chrome_trace([wall, virtual])
        assert validate_chrome_trace(trace) == []
        assert trace["displayTimeUnit"] == "ms"

    def test_domain_pids_and_wall_rebase(self):
        wall, virtual = _sample_tracers()
        trace = chrome_trace([wall, virtual])
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        wall_spans = {e["name"]: e for e in spans if e["pid"] == 1}
        virtual_spans = {e["name"]: e for e in spans if e["pid"] == 2}
        # wall timestamps rebase to the first span; µs, rounded
        assert wall_spans["solve"]["ts"] == 0.0
        assert wall_spans["allocate"]["ts"] == pytest.approx(0.1e6)
        # virtual timestamps stay absolute DES time
        assert virtual_spans["request"]["ts"] == pytest.approx(1.0e6)

    def test_parent_sorted_before_children(self):
        _, virtual = _sample_tracers()
        trace = chrome_trace([virtual])
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names.index("request") < names.index("uplink")

    def test_instant_events_marked(self):
        _, virtual = _sample_tracers()
        trace = chrome_trace([virtual])
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"request": 5}

    def test_track_thread_metadata(self):
        _, virtual = _sample_tracers()
        trace = chrome_trace([virtual])
        threads = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert threads == ["req0", "task1"]

    def test_gauge_series_become_counter_events(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").sample(0.5, 3.0)
        registry.gauge("queue.depth").sample(1.0, 1.0)
        trace = chrome_trace([], registry=registry)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counters] == [
            (0.5e6, 3.0),
            (1.0e6, 1.0),
        ]
        assert all(e["pid"] == 2 for e in counters)  # virtual by default


class TestValidator:
    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_negative_duration_flagged(self):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
            ]
        }
        assert any("bad dur" in p for p in validate_chrome_trace(trace))

    def test_non_monotonic_track_flagged(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 2.0, "dur": 1.0},
        ]
        assert any(
            "not monotonic" in p
            for p in validate_chrome_trace({"traceEvents": events})
        )

    def test_missing_keys_flagged(self):
        trace = {"traceEvents": [{"ph": "X", "ts": 0.0, "dur": 1.0}]}
        problems = validate_chrome_trace(trace)
        assert any("missing 'name'" in p for p in problems)
        assert any("missing 'pid'" in p for p in problems)


class TestRoundTrips:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        wall, virtual = _sample_tracers()
        path = tmp_path / "trace.jsonl"
        write_jsonl([wall, virtual], path)
        loaded = load_records(path)
        by_domain = {t.domain: t for t in loaded}
        assert by_domain["wall"].records == wall.records
        assert by_domain["virtual"].records == virtual.records

    def test_jsonl_deterministic_bytes(self, tmp_path):
        wall, virtual = _sample_tracers()
        assert jsonl_lines([wall, virtual]) == jsonl_lines([wall, virtual])

    def test_chrome_round_trip_preserves_structure(self, tmp_path):
        wall, virtual = _sample_tracers()
        path = tmp_path / "trace.json"
        write_chrome_trace([wall, virtual], path)
        loaded = {t.domain: t for t in load_records(path)}
        names = sorted(r.name for r in loaded["virtual"].records)
        assert names == ["drop", "execute", "request", "uplink"]
        request = next(
            r for r in loaded["virtual"].records if r.name == "request"
        )
        assert request.track == "req0"
        assert request.ts == pytest.approx(1.0, abs=1e-6)
        assert request.dur == pytest.approx(0.3, abs=1e-6)

    def test_load_rejects_invalid_chrome_trace(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(ValueError, match="invalid chrome trace"):
            load_records(path)


class TestSummaries:
    def test_flame_summary_nests_by_containment(self):
        _, virtual = _sample_tracers()
        text = flame_summary([virtual])
        lines = text.splitlines()
        request_line = next(l for l in lines if "request" in l)
        uplink_line = next(l for l in lines if "uplink" in l)
        # children are indented deeper than the parent
        parent_indent = len(request_line) - len(request_line.lstrip())
        child_indent = len(uplink_line) - len(uplink_line.lstrip())
        assert child_indent > parent_indent
        # parent self time = total - children = 0.3 - (0.1 + 0.2) = 0
        assert "0.000" in request_line.split()[-1]

    def test_phase_breakdown_totals(self):
        wall, virtual = _sample_tracers()
        phases = phase_breakdown([wall, virtual])
        assert phases["wall.solve"] == {"count": 1, "total_s": 0.5}
        assert phases["virtual.request"]["total_s"] == pytest.approx(0.3)
        # instants are excluded
        assert "virtual.drop" not in phases
