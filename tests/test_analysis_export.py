"""Tests for the CSV export of figure data."""

from __future__ import annotations

import csv

from repro.analysis.export import export_fig9, export_fig10, write_csv


class TestWriteCsv:
    def test_writes_headers_and_rows(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "nested" / "x.csv", ["a"], [[1]])
        assert path.exists()


class TestFigureExports:
    def test_fig9_long_format(self, tmp_path):
        path = export_fig9(tmp_path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3 * 20  # three rates x twenty tasks
        rates = {row["rate"] for row in rows}
        assert rates == {"low", "medium", "high"}
        low_task1 = next(
            r for r in rows if r["rate"] == "low" and r["task_id"] == "1"
        )
        assert float(low_task1["offloadnn"]) == 1.0

    def test_fig10_one_row_per_rate(self, tmp_path):
        path = export_fig10(tmp_path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert "offloadnn_memory_fraction" in rows[0]
