"""Unit tests for the weighted solution tree."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.tree import BranchState, Vertex, build_tree
from tests.conftest import make_block, make_path, make_task


def _problem_with_paths(paths_spec, budgets=None, tasks=None):
    """paths_spec: {task: [(path_id, blocks, accuracy)]}"""
    catalog = Catalog()
    for task, specs in paths_spec.items():
        for path_id, blocks, accuracy in specs:
            catalog.add_path(make_path(task, path_id, blocks, accuracy=accuracy))
    tasks = tasks or tuple(paths_spec)
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=budgets
        or Budgets(compute_time_s=2.5, training_budget_s=1000.0, memory_gb=8.0, radio_blocks=50),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


class TestBuildTree:
    def test_layers_in_priority_order(self, tiny_problem):
        tree = build_tree(tiny_problem)
        priorities = [c.task.priority for c in tree.cliques]
        assert priorities == sorted(priorities, reverse=True)

    def test_vertices_sorted_by_compute_time(self, tiny_problem):
        tree = build_tree(tiny_problem)
        for clique in tree.cliques:
            times = [v.compute_time_s for v in clique.vertices]
            assert times == sorted(times)

    def test_accuracy_filter_removes_vertices(self):
        task = make_task(1, min_accuracy=0.9)
        specs = {
            task: [
                ("good", (make_block("a"),), 0.95),
                ("bad", (make_block("b"),), 0.7),
            ]
        }
        tree = build_tree(_problem_with_paths(specs))
        assert len(tree.cliques[0]) == 1
        assert tree.filtered_out[1] == 1

    def test_latency_filter_removes_slow_vertices(self):
        task = make_task(1, max_latency_s=0.1)
        specs = {
            task: [
                ("fast", (make_block("a", compute_time_s=0.01),), 0.9),
                ("slow", (make_block("b", compute_time_s=0.5),), 0.9),
            ]
        }
        tree = build_tree(_problem_with_paths(specs))
        assert [v.path.path_id for v in tree.cliques[0].vertices] == ["fast"]

    def test_radio_capacity_filter(self):
        # latency slack so small that even all RBs cannot carry the image
        task = make_task(1, max_latency_s=0.011)
        specs = {task: [("p", (make_block("a", compute_time_s=0.01),), 0.9)]}
        budgets = Budgets(
            compute_time_s=2.5, training_budget_s=1000.0, memory_gb=8.0, radio_blocks=5
        )
        tree = build_tree(_problem_with_paths(specs, budgets=budgets))
        assert tree.tasks_without_options() == [task]

    def test_num_branches_product(self, tiny_problem):
        tree = build_tree(tiny_problem)
        assert tree.num_branches() == 2 * 2 * 2


class TestBranchState:
    def test_extend_accumulates_new_blocks_only(self):
        task = make_task(1)
        shared = make_block("shared", memory_gb=0.5, training_cost_s=100.0)
        own = make_block("own", memory_gb=0.2, training_cost_s=10.0)
        v1 = Vertex(task=task, path=make_path(task, "p1", (shared, own)), bits_per_rb=350_000.0)
        state = BranchState().extend(v1)
        assert state.memory_gb == pytest.approx(0.7)
        assert state.training_cost_s == pytest.approx(110.0)

        task2 = make_task(2)
        own2 = make_block("own2", memory_gb=0.3, training_cost_s=20.0)
        v2 = Vertex(task=task2, path=make_path(task2, "p2", (shared, own2)), bits_per_rb=350_000.0)
        state2 = state.extend(v2)
        # shared not double counted
        assert state2.memory_gb == pytest.approx(1.0)
        assert state2.training_cost_s == pytest.approx(130.0)

    def test_incremental_memory(self):
        task = make_task(1)
        shared = make_block("shared", memory_gb=0.5)
        own = make_block("own", memory_gb=0.2)
        v = Vertex(task=task, path=make_path(task, "p", (shared, own)), bits_per_rb=350_000.0)
        state = BranchState(used_block_ids=frozenset({"shared"}), memory_gb=0.5)
        assert state.incremental_memory(v) == pytest.approx(0.2)

    def test_immutable_extension(self):
        task = make_task(1)
        v = Vertex(
            task=task, path=make_path(task, "p", (make_block("b", memory_gb=0.1),)),
            bits_per_rb=350_000.0,
        )
        state = BranchState()
        state.extend(v)
        assert state.memory_gb == 0.0  # original unchanged


class TestVertex:
    def test_sort_key_orders_by_compute_then_memory(self):
        task = make_task(1)
        fast_small = Vertex(
            task=task,
            path=make_path(task, "a", (make_block("a", compute_time_s=0.01, memory_gb=0.1),)),
            bits_per_rb=350_000.0,
        )
        fast_big = Vertex(
            task=task,
            path=make_path(task, "b", (make_block("b", compute_time_s=0.01, memory_gb=0.9),)),
            bits_per_rb=350_000.0,
        )
        slow = Vertex(
            task=task,
            path=make_path(task, "c", (make_block("c", compute_time_s=0.09, memory_gb=0.1),)),
            bits_per_rb=350_000.0,
        )
        ordered = sorted([slow, fast_big, fast_small], key=Vertex.sort_key)
        assert [v.path.path_id for v in ordered] == ["a", "b", "c"]
