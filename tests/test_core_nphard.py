"""Unit tests for the knapsack machinery behind Proposition 1."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nphard import (
    KnapsackInstance,
    dot_solution_to_selection,
    knapsack_to_dot,
    solve_mdk,
)
from repro.core.optimal import OptimalSolver


def brute_force_mdk(instance: KnapsackInstance) -> float:
    best = 0.0
    n = instance.num_items
    for mask in itertools.product([0, 1], repeat=n):
        ok = all(
            sum(mask[i] * instance.weights[i][k] for i in range(n))
            <= instance.capacities[k] + 1e-12
            for k in range(instance.num_dims)
        )
        if ok:
            best = max(best, sum(mask[i] * instance.values[i] for i in range(n)))
    return best


class TestKnapsackInstance:
    def test_validation_mismatched_lengths(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=(1.0,), weights=(), capacities=(1.0,))

    def test_validation_dimension_mismatch(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=(1.0,), weights=((1.0, 2.0),), capacities=(1.0,))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=(-1.0,), weights=((1.0,),), capacities=(1.0,))


class TestSolveMdk:
    def test_classic_instance(self):
        instance = KnapsackInstance(
            values=(10.0, 7.0, 8.0, 3.0),
            weights=((5.0,), (4.0,), (4.0,), (1.0,)),
            capacities=(8.0,),
        )
        value, chosen = solve_mdk(instance)
        assert value == 15.0
        assert chosen == frozenset({1, 2})

    def test_two_dimensional(self):
        instance = KnapsackInstance(
            values=(6.0, 5.0, 4.0),
            weights=((3.0, 1.0), (2.0, 2.0), (1.0, 3.0)),
            capacities=(4.0, 4.0),
        )
        value, chosen = solve_mdk(instance)
        assert value == brute_force_mdk(instance)

    def test_nothing_fits(self):
        instance = KnapsackInstance(
            values=(5.0,), weights=((10.0,),), capacities=(1.0,)
        )
        value, chosen = solve_mdk(instance)
        assert value == 0.0
        assert chosen == frozenset()

    @given(
        n=st.integers(min_value=1, max_value=7),
        dims=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_property(self, n, dims, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        values = tuple(float(v) for v in rng.integers(1, 20, size=n))
        weights = tuple(
            tuple(float(w) for w in rng.integers(1, 10, size=dims)) for _ in range(n)
        )
        capacities = tuple(float(c) for c in rng.integers(5, 25, size=dims))
        instance = KnapsackInstance(values=values, weights=weights, capacities=capacities)
        value, chosen = solve_mdk(instance)
        assert value == pytest.approx(brute_force_mdk(instance))
        # the reported selection must be feasible and achieve the value
        for k in range(dims):
            assert sum(weights[i][k] for i in chosen) <= capacities[k] + 1e-9
        assert sum(values[i] for i in chosen) == pytest.approx(value)


class TestReduction:
    def test_reduction_structure(self):
        instance = KnapsackInstance(
            values=(10.0, 7.0), weights=((5.0,), (4.0,)), capacities=(8.0,)
        )
        problem = knapsack_to_dot(instance)
        assert len(problem.tasks) == 2
        assert problem.budgets.memory_gb == 8.0
        # one dedicated block per item, weight as memory
        blocks = problem.catalog.all_blocks()
        assert blocks["item0-block"].memory_gb == 5.0

    def test_multi_dim_not_supported_executable(self):
        instance = KnapsackInstance(
            values=(1.0,), weights=((1.0, 1.0),), capacities=(1.0, 1.0)
        )
        with pytest.raises(ValueError):
            knapsack_to_dot(instance)

    @pytest.mark.parametrize(
        "values,weights,capacity",
        [
            ((10.0, 7.0, 8.0, 3.0), (5.0, 4.0, 4.0, 1.0), 8.0),
            ((4.0, 4.0, 5.0), (2.0, 2.0, 3.0), 4.0),
            ((9.0, 1.0), (3.0, 3.0), 3.0),
        ],
    )
    def test_dot_optimum_recovers_knapsack_optimum(self, values, weights, capacity):
        instance = KnapsackInstance(
            values=values,
            weights=tuple((w,) for w in weights),
            capacities=(capacity,),
        )
        knap_value, _ = solve_mdk(instance)
        problem = knapsack_to_dot(instance)
        solution = OptimalSolver(allow_reject=True).solve(problem)
        chosen = dot_solution_to_selection(solution)
        dot_value = sum(values[i] for i in chosen)
        assert dot_value == pytest.approx(knap_value)
        assert sum(weights[i] for i in chosen) <= capacity + 1e-9
