"""Unit tests for the radio substrate: channel, PHY, slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.channel import ChannelModel, noise_power_dbm, path_loss_db, snr_db
from repro.radio.phy import (
    MCS_TABLE,
    RB_SYMBOL_RATE,
    bits_per_rb_from_sinr,
    cqi_from_sinr,
    spectral_efficiency,
)
from repro.radio.slicing import Slice, SliceManager


class TestPathLoss:
    def test_increases_with_distance(self):
        assert path_loss_db(100.0) > path_loss_db(10.0)

    def test_exponent_scaling(self):
        # 10x distance at exponent 3 adds 30 dB
        delta = path_loss_db(100.0, exponent=3.0) - path_loss_db(10.0, exponent=3.0)
        assert delta == pytest.approx(30.0)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            path_loss_db(0.0)

    def test_below_reference_clamped(self):
        assert path_loss_db(0.5) == path_loss_db(1.0)


class TestSnr:
    def test_noise_grows_with_bandwidth(self):
        assert noise_power_dbm(1e6) > noise_power_dbm(1e5)

    def test_snr_decreases_with_loss(self):
        assert snr_db(23.0, 100.0, 180e3) < snr_db(23.0, 80.0, 180e3)

    def test_channel_model_static_loss(self):
        model = ChannelModel(static_path_loss_db=0.0)
        # 23 dBm - 0 dB loss - (-114ish dBm noise) -> very high SNR
        assert model.mean_snr_db() > 100.0

    def test_channel_model_distance_loss(self):
        model = ChannelModel()
        assert model.mean_snr_db(10.0) > model.mean_snr_db(1000.0)

    def test_shadowing_sampling(self):
        model = ChannelModel(shadowing_std_db=8.0)
        rng = np.random.default_rng(0)
        samples = [model.sample_snr_db(50.0, rng) for _ in range(200)]
        assert np.std(samples) == pytest.approx(8.0, rel=0.25)

    def test_no_shadowing_deterministic(self):
        model = ChannelModel(shadowing_std_db=0.0)
        rng = np.random.default_rng(0)
        assert model.sample_snr_db(50.0, rng) == model.mean_snr_db(50.0)


class TestPhy:
    def test_cqi_monotone_in_sinr(self):
        cqis = [cqi_from_sinr(s).cqi for s in (0.5, 5.0, 12.0, 23.0)]
        assert cqis == sorted(cqis)

    def test_below_cqi1_unusable(self):
        assert cqi_from_sinr(-10.0) is None
        assert spectral_efficiency(-10.0) == 0.0

    def test_top_cqi_efficiency(self):
        assert spectral_efficiency(30.0) == MCS_TABLE[-1].efficiency_bps_hz

    def test_bits_per_rb_scales_with_symbol_rate(self):
        assert bits_per_rb_from_sinr(12.0) == pytest.approx(
            spectral_efficiency(12.0) * RB_SYMBOL_RATE
        )

    def test_table_iv_value_reachable(self):
        """The paper's 0.35 Mbps/RB corresponds to a mid-range CQI."""
        sinr_candidates = np.arange(-5, 25, 0.5)
        rates = [bits_per_rb_from_sinr(s) for s in sinr_candidates]
        assert min(rates) < 350_000.0 < max(rates)


class TestSlicing:
    def test_slice_throughput(self):
        s = Slice(task_id=1, radio_blocks=5, bits_per_rb=350_000.0)
        assert s.throughput_bps == pytest.approx(1.75e6)
        assert s.transmission_time(350_000.0) == pytest.approx(0.2)

    def test_zero_rb_slice_starves(self):
        s = Slice(task_id=1, radio_blocks=0, bits_per_rb=350_000.0)
        assert s.transmission_time(100.0) == float("inf")

    def test_manager_capacity_enforced(self):
        mgr = SliceManager(capacity_rbs=10)
        mgr.allocate(1, 6, 350_000.0)
        with pytest.raises(ValueError, match="cannot allocate"):
            mgr.allocate(2, 5, 350_000.0)
        assert mgr.free_rbs == 4

    def test_reallocation_replaces(self):
        mgr = SliceManager(capacity_rbs=10)
        mgr.allocate(1, 6, 350_000.0)
        mgr.allocate(1, 8, 350_000.0)  # resize within freed capacity
        assert mgr.allocated_rbs == 8

    def test_release(self):
        mgr = SliceManager(capacity_rbs=10)
        mgr.allocate(1, 6, 350_000.0)
        mgr.release(1)
        assert mgr.free_rbs == 10
        with pytest.raises(KeyError):
            mgr.slice_for(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SliceManager(capacity_rbs=0)
