"""Tests for multi-architecture DNN families in the workloads."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.workloads.generator import (
    DNNFamily,
    ScenarioCatalogBuilder,
    mobilenet_family_from_profiler,
)
from tests.conftest import make_task


@pytest.fixture(scope="module")
def mobilenet_family() -> DNNFamily:
    return mobilenet_family_from_profiler(repeats=1, input_size=16,
                                          width_multiplier=0.25)


class TestMobilenetFamily:
    def test_measured_scales_positive(self, mobilenet_family):
        assert mobilenet_family.compute_scale > 0
        assert mobilenet_family.memory_scale > 0

    def test_memory_lighter_than_resnet(self, mobilenet_family):
        """MobileNetV2's depthwise design is far lighter in parameters."""
        assert mobilenet_family.memory_scale < 0.6

    def test_accuracy_offset_negative(self, mobilenet_family):
        assert mobilenet_family.accuracy_offset < 0


class TestMixedArchitectureCatalog:
    def _problem(self, mobilenet_family):
        tasks = tuple(
            make_task(i, priority=0.9 - 0.2 * i, min_accuracy=0.75) for i in range(3)
        )
        builder = ScenarioCatalogBuilder(
            families=(DNNFamily("rn18"), mobilenet_family), seed=0
        )
        catalog = builder.build(tasks, tasks[0].qualities[0])
        return DOTProblem(
            tasks=tasks,
            catalog=catalog,
            budgets=Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                            memory_gb=8.0, radio_blocks=50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )

    def test_twenty_paths_per_task(self, mobilenet_family):
        problem = self._problem(mobilenet_family)
        assert len(problem.catalog.paths_for(0)) == 20  # 2 families x 10 configs

    def test_families_do_not_share_blocks(self, mobilenet_family):
        problem = self._problem(mobilenet_family)
        blocks = problem.catalog.all_blocks()
        rn_shared = {b for b in blocks if b.startswith("rn18:base:")}
        mn_shared = {b for b in blocks if b.startswith("mnv2:base:")}
        assert len(rn_shared) == 3
        assert len(mn_shared) == 3
        assert not rn_shared & mn_shared

    def test_solver_handles_mixed_catalog(self, mobilenet_family):
        problem = self._problem(mobilenet_family)
        solution = OffloaDNNSolver().solve(problem)
        assert check_constraints(problem, solution).feasible
        assert solution.admitted_task_count == 3


class TestHeuristicOrderingOptions:
    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            OffloaDNNSolver(ordering="alphabetical")

    def test_orderings_produce_feasible_solutions(self, tiny_problem):
        for ordering in ("compute", "memory", "accuracy"):
            solution = OffloaDNNSolver(ordering=ordering).solve(tiny_problem)
            assert check_constraints(tiny_problem, solution).feasible

    def test_accuracy_ordering_picks_richest_path(self, tiny_problem):
        solution = OffloaDNNSolver(ordering="accuracy").solve(tiny_problem)
        for task in tiny_problem.tasks:
            assert solution.assignment(task).path.path_id.endswith("rich")

    def test_compute_ordering_minimizes_inference(self, tiny_problem):
        compute = OffloaDNNSolver(ordering="compute").solve(tiny_problem)
        accuracy = OffloaDNNSolver(ordering="accuracy").solve(tiny_problem)
        assert (
            compute.total_inference_compute_s <= accuracy.total_inference_compute_s
        )
