"""Unit tests for the discrete-event emulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task import QualityLevel
from repro.emulator.lte import TTI_S, LteCell
from repro.emulator.metrics import LatencyTimeline, moving_average
from repro.emulator.nodes import EdgeServer, FrameRecord, UserEquipment
from repro.emulator.simulator import Simulator
from repro.edge.controller import AdmissionTicket
from repro.radio.slicing import SliceManager
from tests.conftest import make_block, make_path, make_task


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, lambda: log.append("c"))
        sim.schedule(0.1, lambda: log.append("a"))
        sim.schedule(0.2, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, lambda: log.append(1))
        sim.schedule(0.1, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_run_until_stops(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, lambda: log.append(1))
        sim.schedule(0.5, lambda: log.append(2))
        sim.run_until(0.2)
        assert log == [1]
        assert sim.now == pytest.approx(0.2)

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run_until(3.5)
        assert sim.now == pytest.approx(3.5)
        assert sim.events_processed == 0
        # events scheduled after the jump land relative to the new now
        log = []
        sim.schedule(0.5, lambda: log.append(sim.now))
        sim.run()
        assert log == [pytest.approx(4.0)]

    def test_run_until_past_time_keeps_clock(self):
        sim = Simulator()
        sim.run_until(2.0)
        sim.run_until(1.0)
        assert sim.now == pytest.approx(2.0)

    def test_run_until_drained_queue_still_reaches_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, lambda: log.append(1))
        sim.run_until(5.0)
        assert log == [1]
        assert sim.now == pytest.approx(5.0)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(0.1, lambda: log.append(1))
        event.cancel()
        sim.run()
        assert log == []

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        log = []

        def recur():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule(0.1, recur)

        sim.schedule(0.0, recur)
        sim.run()
        assert len(log) == 3
        assert log[-1] == pytest.approx(0.2)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)


class TestLteCell:
    def _cell(self, rbs: int = 5) -> LteCell:
        mgr = SliceManager(capacity_rbs=100)
        mgr.allocate(1, rbs, 350_000.0)
        return LteCell(slice_manager=mgr)

    def test_duration_tti_granular(self):
        cell = self._cell(rbs=5)
        # 350 kb over 1.75 Mbps = 200 ms = 200 TTIs exactly
        assert cell.transmission_duration(1, 350_000.0) == pytest.approx(0.2)

    def test_duration_rounds_up_to_tti(self):
        cell = self._cell(rbs=5)
        duration = cell.transmission_duration(1, 100.0)
        assert duration == TTI_S

    def test_fifo_queueing_on_slice(self):
        cell = self._cell(rbs=5)
        first = cell.enqueue_frame(1, 350_000.0, now=0.0)
        second = cell.enqueue_frame(1, 350_000.0, now=0.0)
        assert second == pytest.approx(first + 0.2)

    def test_idle_slice_starts_immediately(self):
        cell = self._cell(rbs=5)
        cell.enqueue_frame(1, 350_000.0, now=0.0)
        later = cell.enqueue_frame(1, 350_000.0, now=1.0)
        assert later == pytest.approx(1.2)

    def test_reset_clears_queues(self):
        cell = self._cell(rbs=5)
        cell.enqueue_frame(1, 350_000.0, now=0.0)
        cell.reset()
        assert cell.enqueue_frame(1, 350_000.0, now=0.0) == pytest.approx(0.2)


class TestMovingAverage:
    def test_window_one_identity(self):
        x = np.array([1.0, 5.0, 3.0])
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_window_three(self):
        x = np.array([3.0, 6.0, 9.0, 12.0])
        np.testing.assert_allclose(moving_average(x, 3), [3.0, 4.5, 6.0, 9.0])

    def test_empty(self):
        assert len(moving_average(np.array([]), 3)) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)


class TestLatencyTimeline:
    def _records(self):
        return [
            FrameRecord(task_id=1, frame_id=0, created_at=0.0, completed_at=0.2),
            FrameRecord(task_id=1, frame_id=1, created_at=0.2, completed_at=0.5),
            FrameRecord(task_id=2, frame_id=0, created_at=0.0, completed_at=0.1),
        ]

    def test_grouping_and_series(self):
        timeline = LatencyTimeline.from_records(self._records())
        times, latencies = timeline.series(1, window=1)
        np.testing.assert_allclose(times, [0.2, 0.5])
        np.testing.assert_allclose(latencies, [0.2, 0.3])

    def test_max_and_mean(self):
        timeline = LatencyTimeline.from_records(self._records())
        assert timeline.max_latency(1) == pytest.approx(0.3)
        assert timeline.mean_latency(1) == pytest.approx(0.25)
        assert np.isnan(timeline.max_latency(99))

    def test_violation_fraction(self):
        timeline = LatencyTimeline.from_records(self._records())
        assert timeline.violation_fraction(1, limit_s=0.25, window=1) == pytest.approx(0.5)
        assert timeline.violation_fraction(1, limit_s=1.0, window=1) == 0.0


class TestNodes:
    def _setup(self, rate: float = 5.0, rbs: int = 5):
        sim = Simulator()
        mgr = SliceManager(capacity_rbs=100)
        mgr.allocate(1, rbs, 350_000.0)
        cell = LteCell(slice_manager=mgr)
        server = EdgeServer(simulator=sim, compute_jitter=0.0, result_return_s=0.0)
        quality = QualityLevel("full", 350_000.0)
        task = make_task(1, request_rate=rate, quality=quality)
        path = make_path(task, "p", (make_block("b", compute_time_s=0.01),))
        ticket = AdmissionTicket(
            task_id=1, admitted=True, admission_ratio=1.0,
            granted_rate=rate, radio_blocks=rbs, path_id="p",
        )
        ue = UserEquipment(simulator=sim, cell=cell, server=server, ticket=ticket, path=path)
        return sim, server, ue

    def test_frame_count_matches_rate(self):
        sim, server, ue = self._setup(rate=5.0)
        ue.start(until=2.0)
        sim.run()
        # frames at t = 0, 0.2, ..., 2.0 -> 11 frames
        assert ue.frames_sent == 11
        assert len(server.completed) == 11

    def test_latency_composition(self):
        sim, server, ue = self._setup(rate=1.0, rbs=5)
        ue.start(until=0.0)  # single frame
        sim.run()
        record = server.completed[0]
        # 0.2 s uplink + 0.01 s compute
        assert record.end_to_end_latency == pytest.approx(0.21, abs=1e-6)

    def test_rejected_ticket_sends_nothing(self):
        sim, server, ue = self._setup()
        ue.ticket = AdmissionTicket(
            task_id=1, admitted=False, admission_ratio=0.0,
            granted_rate=0.0, radio_blocks=0, path_id=None,
        )
        ue.start(until=2.0)
        sim.run()
        assert ue.frames_sent == 0

    def test_server_fifo_queueing(self):
        sim = Simulator()
        server = EdgeServer(simulator=sim, compute_jitter=0.0, result_return_s=0.0)
        quality = QualityLevel("full", 350_000.0)
        task = make_task(1, quality=quality)
        path = make_path(task, "p", (make_block("b", compute_time_s=0.1),))
        r1 = FrameRecord(task_id=1, frame_id=0, created_at=0.0)
        r2 = FrameRecord(task_id=1, frame_id=1, created_at=0.0)
        server.submit(r1, path)
        server.submit(r2, path)
        sim.run()
        assert r2.compute_done_at == pytest.approx(r1.compute_done_at + 0.1)
