"""Wire-protocol properties: round-trips, error paths, TCP loopback."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import wire
from repro.cluster.stream import send_tensor, serve_tensors
from repro.cluster.wire import (
    WIRE_VERSION,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
    decode_frame,
    encode_frame,
    frame_nbytes,
    header_nbytes,
)

DTYPES = st.sampled_from(
    [
        np.dtype("float16"),
        np.dtype("float32"),
        np.dtype("float64"),
        np.dtype("int8"),
        np.dtype("int16"),
        np.dtype("int32"),
        np.dtype("int64"),
        np.dtype("uint8"),
        np.dtype("uint32"),
        np.dtype("bool"),
    ]
)
SHAPES = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=4).map(
    tuple
)


def _array(dtype: np.dtype, shape: tuple[int, ...], seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if dtype.kind == "f":
        return rng.normal(scale=10.0, size=shape).astype(dtype)
    if dtype.kind == "b":
        return rng.integers(0, 2, size=shape).astype(dtype)
    info = np.iinfo(dtype)
    # stay well inside the range so int64 sampling doesn't overflow
    lo, hi = max(info.min, -(2**31)), min(info.max, 2**31 - 1)
    return rng.integers(lo, hi, size=shape, endpoint=True).astype(dtype)


@given(dtype=DTYPES, shape=SHAPES, seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_roundtrip_exact(dtype, shape, seed):
    array = _array(dtype, shape, seed)
    frame = encode_frame(array)
    decoded, consumed = decode_frame(frame)
    assert consumed == len(frame)
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    np.testing.assert_array_equal(decoded, array)
    assert len(frame) == frame_nbytes(array.shape, array.dtype.itemsize)


@given(dtype=DTYPES, shape=SHAPES, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_roundtrip_noncontiguous(dtype, shape, seed):
    """Strided views (transposes, slices) encode like their copies."""
    array = _array(dtype, shape, seed)
    views = [array.T]
    if array.ndim >= 1 and array.shape[0] > 1:
        views.append(array[::-1])
        views.append(array[::2])
    for view in views:
        decoded, _ = decode_frame(encode_frame(view))
        np.testing.assert_array_equal(decoded, view)


@given(
    shape=st.lists(st.integers(1, 5), min_size=1, max_size=3).map(tuple),
    seed=st.integers(0, 2**16),
    dtype=st.sampled_from([np.dtype("float32"), np.dtype("float64")]),
)
@settings(max_examples=60, deadline=None)
def test_fp16_roundtrip_tolerance(shape, seed, dtype):
    array = _array(dtype, shape, seed)
    frame = encode_frame(array, downcast_fp16=True)
    assert len(frame) == frame_nbytes(array.shape, array.dtype.itemsize, True)
    decoded, _ = decode_frame(frame)
    assert decoded.dtype == array.dtype  # logical dtype restored
    # fp16 relative error bound for values inside fp16 range
    np.testing.assert_allclose(decoded, array, rtol=2**-10, atol=2**-23)


def test_fp16_ignored_for_integers():
    array = np.arange(12, dtype=np.int32).reshape(3, 4)
    assert encode_frame(array, downcast_fp16=True) == encode_frame(array)


def test_determinism_byte_identical():
    array = np.linspace(-3, 3, 24, dtype=np.float32).reshape(2, 3, 4)
    assert encode_frame(array) == encode_frame(array.copy())


def test_concatenated_frames_decode_sequentially():
    a = np.arange(6, dtype=np.float32).reshape(2, 3)
    b = np.array([True, False])
    buffer = encode_frame(a) + encode_frame(b)
    first, consumed = decode_frame(buffer)
    second, consumed2 = decode_frame(buffer[consumed:])
    np.testing.assert_array_equal(first, a)
    np.testing.assert_array_equal(second, b)
    assert consumed + consumed2 == len(buffer)


@given(seed=st.integers(0, 2**16), cut=st.floats(0.0, 0.999))
@settings(max_examples=60, deadline=None)
def test_truncated_frame_raises_at_any_cut(seed, cut):
    array = _array(np.dtype("float32"), (3, 4), seed)
    frame = encode_frame(array)
    with pytest.raises(TruncatedFrameError):
        decode_frame(frame[: int(len(frame) * cut)])


def test_version_mismatch():
    frame = bytearray(encode_frame(np.zeros(2, dtype=np.float32)))
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(VersionMismatchError):
        decode_frame(bytes(frame))


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(np.zeros(2, dtype=np.float32)))
    frame[0:2] = b"XX"
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_inconsistent_payload_length_rejected():
    array = np.zeros((2, 2), dtype=np.float32)
    frame = bytearray(encode_frame(array))
    # corrupt the announced payload length (last 8 header bytes)
    offset = header_nbytes(array.ndim) - 8
    frame[offset : offset + 8] = struct.pack("<Q", 7)
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_header_nbytes_validates_ndim():
    with pytest.raises(WireError):
        header_nbytes(-1)
    with pytest.raises(WireError):
        header_nbytes(wire._MAX_DIMS + 1)


def test_decoded_tensor_is_decoupled_from_buffer():
    array = np.ones(4, dtype=np.float32)
    frame = bytearray(encode_frame(array))
    decoded, _ = decode_frame(frame)
    frame[-4:] = b"\x00\x00\x00\x00"  # clobber the source buffer
    np.testing.assert_array_equal(decoded, array)


def test_tcp_loopback_roundtrip():
    """The asyncio transport speaks the same frames end to end."""

    async def run() -> None:
        server = await serve_tensors(lambda t: t * 2.0, fp16=False)
        port = server.sockets[0].getsockname()[1]
        try:
            sent = np.linspace(0, 1, 12, dtype=np.float32).reshape(3, 4)
            reply = await send_tensor(sent, "127.0.0.1", port)
            np.testing.assert_array_equal(reply, sent * 2.0)
            # a second request on a fresh connection also works
            reply2 = await send_tensor(sent + 1.0, "127.0.0.1", port)
            np.testing.assert_array_equal(reply2, (sent + 1.0) * 2.0)
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(run())
