"""Wire-protocol properties: round-trips, error paths, TCP loopback."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import wire
from repro.cluster.stream import send_tensor, serve_tensors
from repro.cluster.wire import (
    WIRE_VERSION,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
    decode_frame,
    decode_frame_info,
    encode_frame,
    frame_nbytes,
    header_nbytes,
)

DTYPES = st.sampled_from(
    [
        np.dtype("float16"),
        np.dtype("float32"),
        np.dtype("float64"),
        np.dtype("int8"),
        np.dtype("int16"),
        np.dtype("int32"),
        np.dtype("int64"),
        np.dtype("uint8"),
        np.dtype("uint32"),
        np.dtype("bool"),
    ]
)
SHAPES = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=4).map(
    tuple
)


def _array(dtype: np.dtype, shape: tuple[int, ...], seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if dtype.kind == "f":
        return rng.normal(scale=10.0, size=shape).astype(dtype)
    if dtype.kind == "b":
        return rng.integers(0, 2, size=shape).astype(dtype)
    info = np.iinfo(dtype)
    # stay well inside the range so int64 sampling doesn't overflow
    lo, hi = max(info.min, -(2**31)), min(info.max, 2**31 - 1)
    return rng.integers(lo, hi, size=shape, endpoint=True).astype(dtype)


@given(dtype=DTYPES, shape=SHAPES, seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_roundtrip_exact(dtype, shape, seed):
    array = _array(dtype, shape, seed)
    frame = encode_frame(array)
    decoded, consumed = decode_frame(frame)
    assert consumed == len(frame)
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    np.testing.assert_array_equal(decoded, array)
    assert len(frame) == frame_nbytes(array.shape, array.dtype.itemsize)


@given(dtype=DTYPES, shape=SHAPES, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_roundtrip_noncontiguous(dtype, shape, seed):
    """Strided views (transposes, slices) encode like their copies."""
    array = _array(dtype, shape, seed)
    views = [array.T]
    if array.ndim >= 1 and array.shape[0] > 1:
        views.append(array[::-1])
        views.append(array[::2])
    for view in views:
        decoded, _ = decode_frame(encode_frame(view))
        np.testing.assert_array_equal(decoded, view)


@given(
    shape=st.lists(st.integers(1, 5), min_size=1, max_size=3).map(tuple),
    seed=st.integers(0, 2**16),
    dtype=st.sampled_from([np.dtype("float32"), np.dtype("float64")]),
)
@settings(max_examples=60, deadline=None)
def test_fp16_roundtrip_tolerance(shape, seed, dtype):
    array = _array(dtype, shape, seed)
    frame = encode_frame(array, downcast_fp16=True)
    assert len(frame) == frame_nbytes(array.shape, array.dtype.itemsize, True)
    decoded, _ = decode_frame(frame)
    assert decoded.dtype == array.dtype  # logical dtype restored
    # fp16 relative error bound for values inside fp16 range
    np.testing.assert_allclose(decoded, array, rtol=2**-10, atol=2**-23)


def test_fp16_ignored_for_integers():
    array = np.arange(12, dtype=np.int32).reshape(3, 4)
    assert encode_frame(array, downcast_fp16=True) == encode_frame(array)


def test_determinism_byte_identical():
    array = np.linspace(-3, 3, 24, dtype=np.float32).reshape(2, 3, 4)
    assert encode_frame(array) == encode_frame(array.copy())


def test_concatenated_frames_decode_sequentially():
    a = np.arange(6, dtype=np.float32).reshape(2, 3)
    b = np.array([True, False])
    buffer = encode_frame(a) + encode_frame(b)
    first, consumed = decode_frame(buffer)
    second, consumed2 = decode_frame(buffer[consumed:])
    np.testing.assert_array_equal(first, a)
    np.testing.assert_array_equal(second, b)
    assert consumed + consumed2 == len(buffer)


@given(seed=st.integers(0, 2**16), cut=st.floats(0.0, 0.999))
@settings(max_examples=60, deadline=None)
def test_truncated_frame_raises_at_any_cut(seed, cut):
    array = _array(np.dtype("float32"), (3, 4), seed)
    frame = encode_frame(array)
    with pytest.raises(TruncatedFrameError):
        decode_frame(frame[: int(len(frame) * cut)])


def test_version_mismatch():
    frame = bytearray(encode_frame(np.zeros(2, dtype=np.float32)))
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(VersionMismatchError):
        decode_frame(bytes(frame))


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(np.zeros(2, dtype=np.float32)))
    frame[0:2] = b"XX"
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_inconsistent_payload_length_rejected():
    array = np.zeros((2, 2), dtype=np.float32)
    frame = bytearray(encode_frame(array))
    # corrupt the announced payload length (last 8 header bytes)
    offset = header_nbytes(array.ndim) - 8
    frame[offset : offset + 8] = struct.pack("<Q", 7)
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_header_nbytes_validates_ndim():
    with pytest.raises(WireError):
        header_nbytes(-1)
    with pytest.raises(WireError):
        header_nbytes(wire._MAX_DIMS + 1)


def test_decoded_tensor_is_decoupled_from_buffer():
    array = np.ones(4, dtype=np.float32)
    frame = bytearray(encode_frame(array))
    decoded, _ = decode_frame(frame)
    frame[-4:] = b"\x00\x00\x00\x00"  # clobber the source buffer
    np.testing.assert_array_equal(decoded, array)


# -- int8 + scale frames (wire version 2) ----------------------------------


@given(
    shape=st.lists(st.integers(0, 5), min_size=0, max_size=4).map(tuple),
    seed=st.integers(0, 2**16),
    scale=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=80, deadline=None)
def test_int8_payload_roundtrips_losslessly_with_scale(shape, seed, scale):
    """Already-int8 activations (quantized engine outputs) ship verbatim."""
    array = _array(np.dtype("int8"), shape, seed)
    frame = encode_frame(array, quantize_int8=True, scale=scale)
    assert len(frame) == frame_nbytes(array.shape, 1, quantize_int8=True)
    decoded, consumed, info = decode_frame_info(frame)
    assert consumed == len(frame)
    assert info.int8 and not info.fp16
    assert info.version == WIRE_VERSION
    assert info.scale == pytest.approx(np.float32(scale))
    assert decoded.dtype == np.int8
    np.testing.assert_array_equal(decoded, array)


@given(
    shape=st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_int8_strided_views_roundtrip(shape, seed):
    array = _array(np.dtype("int8"), shape, seed)
    views = [array.T]
    if array.shape[0] > 1:
        views.append(array[::-1])
        views.append(array[::2])
    for view in views:
        decoded, _, info = decode_frame_info(
            encode_frame(view, quantize_int8=True, scale=0.5)
        )
        assert info.int8
        np.testing.assert_array_equal(decoded, view)


@given(
    shape=st.lists(st.integers(1, 5), min_size=1, max_size=3).map(tuple),
    seed=st.integers(0, 2**16),
    dtype=st.sampled_from([np.dtype("float32"), np.dtype("float64")]),
)
@settings(max_examples=60, deadline=None)
def test_float_int8_quantization_error_bounded(shape, seed, dtype):
    """Float payloads quantized on the wire come back within scale/2."""
    array = _array(dtype, shape, seed)
    frame = encode_frame(array, quantize_int8=True)
    assert len(frame) == frame_nbytes(array.shape, dtype.itemsize, quantize_int8=True)
    decoded, _, info = decode_frame_info(frame)
    assert decoded.dtype == dtype  # logical dtype restored
    # symmetric round-to-nearest: |x - q*scale| <= scale/2 (+ f32 eps slack)
    bound = info.scale * 0.5 + 1e-5 * max(1.0, info.scale)
    assert float(np.max(np.abs(decoded - array))) <= bound


@given(seed=st.integers(0, 2**16), cut=st.floats(0.0, 0.999))
@settings(max_examples=60, deadline=None)
def test_truncated_int8_frame_raises_at_any_cut(seed, cut):
    array = _array(np.dtype("int8"), (3, 4), seed)
    frame = encode_frame(array, quantize_int8=True, scale=0.25)
    with pytest.raises(TruncatedFrameError):
        decode_frame(frame[: int(len(frame) * cut)])


def test_int8_frames_byte_deterministic():
    array = np.linspace(-3, 3, 24, dtype=np.float32).reshape(2, 3, 4)
    assert encode_frame(array, quantize_int8=True) == encode_frame(
        array.copy(), quantize_int8=True
    )


def test_fp16_and_int8_mutually_exclusive():
    array = np.zeros((2, 2), dtype=np.float32)
    with pytest.raises(WireError):
        encode_frame(array, downcast_fp16=True, quantize_int8=True)
    with pytest.raises(WireError):
        frame_nbytes((2, 2), 4, downcast_fp16=True, quantize_int8=True)


def test_int8_quantize_rejects_integer_payloads():
    with pytest.raises(WireError):
        encode_frame(np.zeros(3, dtype=np.int32), quantize_int8=True)


def _v1_frame(array: np.ndarray, flags: int = 0) -> bytes:
    """Hand-build a version-1 frame (no scale field ever)."""
    payload = np.ascontiguousarray(array).tobytes()
    parts = [
        wire._PREFIX.pack(
            wire._MAGIC, 1, flags, array.dtype.str.encode("ascii"), array.ndim
        )
    ]
    parts.extend(wire._DIM.pack(dim) for dim in array.shape)
    parts.append(wire._PAYLOAD_LEN.pack(len(payload)))
    parts.append(payload)
    return b"".join(parts)


def test_version1_frames_still_decode():
    array = np.linspace(-2, 2, 12, dtype=np.float32).reshape(3, 4)
    decoded, consumed, info = decode_frame_info(_v1_frame(array))
    assert consumed == len(_v1_frame(array))
    assert info.version == 1
    assert not info.int8
    np.testing.assert_array_equal(decoded, array)


def test_int8_flag_on_version1_frame_rejected():
    array = np.zeros((2, 2), dtype=np.int8)
    with pytest.raises(WireError):
        decode_frame(_v1_frame(array, flags=wire._FLAG_INT8))


def test_encoded_frames_carry_current_version():
    frame = encode_frame(np.zeros(2, dtype=np.float32))
    assert frame[2] == WIRE_VERSION == 2


def test_tcp_loopback_roundtrip():
    """The asyncio transport speaks the same frames end to end."""

    async def run() -> None:
        server = await serve_tensors(lambda t: t * 2.0, fp16=False)
        port = server.sockets[0].getsockname()[1]
        try:
            sent = np.linspace(0, 1, 12, dtype=np.float32).reshape(3, 4)
            reply = await send_tensor(sent, "127.0.0.1", port)
            np.testing.assert_array_equal(reply, sent * 2.0)
            # a second request on a fresh connection also works
            reply2 = await send_tensor(sent + 1.0, "127.0.0.1", port)
            np.testing.assert_array_equal(reply2, (sent + 1.0) * 2.0)
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(run())
