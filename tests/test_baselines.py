"""Unit tests for SEM-O-RAN and the auxiliary baselines."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import GreedyNoSharingSolver
from repro.baselines.random_policy import RandomPathSolver
from repro.baselines.semoran import SemORANSolver
from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.workloads.largescale import RequestRate, large_scale_problem
from tests.conftest import make_block, make_path, make_task


class TestSemORANSolver:
    def test_binary_admission_only(self):
        problem = large_scale_problem(RequestRate.HIGH)
        solution = SemORANSolver().solve(problem)
        ratios = {a.admission_ratio for a in solution.assignments.values()}
        assert ratios <= {0.0, 1.0}

    def test_no_block_sharing(self):
        problem = large_scale_problem(RequestRate.LOW)
        solution = SemORANSolver().solve(problem)
        block_ids = set()
        for assignment in solution.admitted_assignments():
            ids = assignment.path.block_ids()
            assert not (ids & block_ids), "blocks shared between tasks"
            block_ids |= ids

    def test_memory_counted_in_full(self):
        problem = large_scale_problem(RequestRate.LOW)
        solution = SemORANSolver().solve(problem)
        # each dedicated full DNN ~1 GB; admitted count * 1 GB expected
        admitted = solution.admitted_task_count
        assert solution.total_memory_gb == pytest.approx(admitted * 1.0, rel=0.1)

    def test_admits_by_value_order(self):
        problem = large_scale_problem(RequestRate.LOW)
        solution = SemORANSolver().solve(problem)
        admitted_ids = {
            a.task.task_id for a in solution.admitted_assignments()
        }
        # greedy by priority: the admitted set is a prefix of the
        # priority order (task ids 1..k)
        assert admitted_ids == set(range(1, len(admitted_ids) + 1))

    def test_feasible(self):
        for rate in RequestRate:
            problem = large_scale_problem(rate)
            solution = SemORANSolver().solve(problem)
            report = check_constraints(problem, solution)
            assert report.feasible, report.violations

    def test_semantic_compression_picks_cheaper_quality(self):
        q_low = QualityLevel("low", 100_000.0, accuracy_factor=0.95)
        q_high = QualityLevel("high", 350_000.0, accuracy_factor=1.0)
        task = Task(
            task_id=1, name="t", method="cls", priority=0.9, request_rate=5.0,
            min_accuracy=0.7, max_latency_s=0.5, qualities=(q_low, q_high),
        )
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.9))
        problem = DOTProblem(
            tasks=(task,), catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        solution = SemORANSolver().solve(problem)
        assignment = solution.assignment(task)
        # 0.9 * 0.95 = 0.855 >= 0.7, so the low-bits quality suffices
        assert assignment.path.quality.name == "low"

    def test_quality_respects_accuracy_requirement(self):
        q_low = QualityLevel("low", 100_000.0, accuracy_factor=0.5)
        q_high = QualityLevel("high", 350_000.0, accuracy_factor=1.0)
        task = Task(
            task_id=1, name="t", method="cls", priority=0.9, request_rate=5.0,
            min_accuracy=0.8, max_latency_s=0.5, qualities=(q_low, q_high),
        )
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.9))
        problem = DOTProblem(
            tasks=(task,), catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        solution = SemORANSolver().solve(problem)
        assert solution.assignment(task).path.quality.name == "high"

    def test_leftover_rbs_spread(self):
        problem = large_scale_problem(RequestRate.LOW)
        spread = SemORANSolver(spread_leftover_rbs=True).solve(problem)
        tight = SemORANSolver(spread_leftover_rbs=False).solve(problem)
        assert spread.total_radio_blocks > tight.total_radio_blocks
        assert spread.total_radio_blocks <= problem.budgets.radio_blocks + 1e-9

    def test_admits_fewer_than_offloadnn(self):
        """The headline comparison: OffloaDNN admits more tasks."""
        for rate in RequestRate:
            problem = large_scale_problem(rate)
            semoran = SemORANSolver().solve(problem)
            offloadnn = OffloaDNNSolver().solve(problem)
            assert offloadnn.admitted_task_count > semoran.admitted_task_count


class TestGreedyNoSharing:
    def test_feasible_on_large_scale(self):
        problem = large_scale_problem(RequestRate.MEDIUM)
        solution = GreedyNoSharingSolver().solve(problem)
        assert check_constraints(problem, solution).feasible

    def test_uses_more_memory_than_offloadnn_with_sharing(self):
        """Ablation: removing sharing can only increase memory use."""
        problem = large_scale_problem(RequestRate.LOW)
        with_sharing = OffloaDNNSolver().solve(problem)
        without = GreedyNoSharingSolver().solve(problem)
        assert without.total_memory_gb >= with_sharing.total_memory_gb - 1e-9


class TestRandomPathSolver:
    def test_feasible(self, tiny_problem):
        solution = RandomPathSolver(seed=1).solve(tiny_problem)
        assert check_constraints(tiny_problem, solution).feasible

    def test_deterministic_given_seed(self, tiny_problem):
        a = RandomPathSolver(seed=3).solve(tiny_problem)
        b = RandomPathSolver(seed=3).solve(tiny_problem)
        for task in tiny_problem.tasks:
            assert (
                a.assignment(task).path.path_id == b.assignment(task).path.path_id
            )

    def test_no_worse_than_rejecting_everything(self, tiny_problem):
        solution = RandomPathSolver(seed=0).solve(tiny_problem)
        assert solution.admitted_task_count >= 1
