"""Tests for multi-method (classification + detection) workloads."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.workloads.generator import (
    METHOD_PROFILES,
    MethodProfile,
    ScenarioCatalogBuilder,
)


def _task(task_id: int, method: str, min_accuracy: float, priority: float = 0.8) -> Task:
    return Task(
        task_id=task_id,
        name=f"{method}-{task_id}",
        method=method,
        priority=priority,
        request_rate=4.0,
        min_accuracy=min_accuracy,
        max_latency_s=0.4,
        qualities=(QualityLevel("full", 350_000.0),),
    )


@pytest.fixture()
def mixed_problem() -> DOTProblem:
    tasks = (
        _task(1, "classification", 0.8, priority=0.9),
        _task(2, "detection", 0.5, priority=0.8),  # the Fig. 4 example: 0.5 mAP
        _task(3, "classification", 0.7, priority=0.7),
    )
    builder = ScenarioCatalogBuilder(seed=0)
    catalog = builder.build(tasks, tasks[0].qualities[0])
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                        memory_gb=8.0, radio_blocks=50),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


class TestMethodProfiles:
    def test_builtin_profiles(self):
        assert METHOD_PROFILES["classification"].metric == "top-1"
        assert METHOD_PROFILES["detection"].metric == "mAP"
        assert METHOD_PROFILES["detection"].accuracy_offset < 0

    def test_detection_paths_cost_more_compute(self, mixed_problem):
        cls_paths = mixed_problem.catalog.paths_for(1)
        det_paths = mixed_problem.catalog.paths_for(2)
        by_id = lambda paths: {p.path_id.split(":")[-1]: p for p in paths}
        cls_by, det_by = by_id(cls_paths), by_id(det_paths)
        # CONFIG A is fully task specific -> the whole path carries the
        # detection compute overhead
        assert (
            det_by["CONFIG A"].compute_time_s > cls_by["CONFIG A"].compute_time_s
        )

    def test_detection_accuracy_on_map_scale(self, mixed_problem):
        det_paths = mixed_problem.catalog.paths_for(2)
        assert all(p.accuracy < 0.75 for p in det_paths)
        assert any(p.accuracy > 0.5 for p in det_paths)

    def test_backbone_shared_across_methods(self, mixed_problem):
        """Low-level features transfer across CV methods: detection and
        classification paths with shared stages use the same base
        blocks (the cross-method sharing the paper's innovation 1
        enables)."""
        cls_shared = {
            b.block_id
            for p in mixed_problem.catalog.paths_for(1)
            for b in p.blocks
            if ":base:" in b.block_id
        }
        det_shared = {
            b.block_id
            for p in mixed_problem.catalog.paths_for(2)
            for b in p.blocks
            if ":base:" in b.block_id
        }
        assert cls_shared == det_shared != set()

    def test_unknown_method_falls_back_to_classification(self):
        tasks = (_task(1, "segmentation", 0.6),)
        builder = ScenarioCatalogBuilder(seed=0)
        catalog = builder.build(tasks, tasks[0].qualities[0])
        reference = ScenarioCatalogBuilder(seed=0).build(
            (_task(1, "classification", 0.6),), tasks[0].qualities[0]
        )
        a = catalog.paths_for(1)[0]
        b = reference.paths_for(1)[0]
        assert a.compute_time_s == b.compute_time_s

    def test_custom_profile(self):
        tasks = (_task(1, "ocr", 0.6),)
        builder = ScenarioCatalogBuilder(
            seed=0,
            method_profiles={
                "ocr": MethodProfile(method="ocr", compute_scale=2.0, metric="cer"),
            },
        )
        catalog = builder.build(tasks, tasks[0].qualities[0])
        reference = ScenarioCatalogBuilder(seed=0).build(
            (_task(1, "classification", 0.6),), tasks[0].qualities[0]
        )
        # CONFIG A (fully task specific) doubles in compute
        ocr = {p.path_id.split(":")[-1]: p for p in catalog.paths_for(1)}
        cls = {p.path_id.split(":")[-1]: p for p in reference.paths_for(1)}
        assert ocr["CONFIG A"].compute_time_s == pytest.approx(
            2.0 * cls["CONFIG A"].compute_time_s
        )


class TestMixedMethodSolving:
    def test_all_methods_admitted(self, mixed_problem):
        solution = OffloaDNNSolver().solve(mixed_problem)
        assert solution.admitted_task_count == 3
        assert check_constraints(mixed_problem, solution).feasible

    def test_detection_requirement_met_on_map_scale(self, mixed_problem):
        solution = OffloaDNNSolver().solve(mixed_problem)
        detection = solution.assignment(2)
        assert detection.path.effective_accuracy >= 0.5  # the 0.5 mAP bar

    def test_sharing_spans_methods_in_solution(self, mixed_problem):
        """If two tasks of different methods pick shared-trunk paths,
        the trunk is deployed once."""
        from repro.baselines.greedy import GreedyNoSharingSolver

        shared = OffloaDNNSolver(ordering="memory").solve(mixed_problem)
        dedicated = GreedyNoSharingSolver().solve(mixed_problem)
        assert shared.total_memory_gb <= dedicated.total_memory_gb + 1e-9
