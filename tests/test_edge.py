"""Unit tests for the edge platform: pools, VIM and controller."""

from __future__ import annotations

import pytest

from repro.core.problem import RadioModel
from repro.edge.controller import OffloaDNNController
from repro.edge.resources import ComputePool, Gpu, MemoryPool
from repro.edge.vim import VirtualInfrastructureManager
from repro.radio.slicing import SliceManager
from tests.conftest import make_block


class TestPools:
    def test_memory_reserve_release(self):
        pool = MemoryPool(capacity_gb=4.0)
        pool.reserve("a", 1.5)
        assert pool.free_gb == pytest.approx(2.5)
        pool.release("a")
        assert pool.free_gb == pytest.approx(4.0)

    def test_memory_overcommit_rejected(self):
        pool = MemoryPool(capacity_gb=1.0)
        with pytest.raises(MemoryError):
            pool.reserve("a", 2.0)

    def test_memory_duplicate_key_rejected(self):
        pool = MemoryPool(capacity_gb=4.0)
        pool.reserve("a", 1.0)
        with pytest.raises(KeyError):
            pool.reserve("a", 1.0)

    def test_compute_commit_release(self):
        pool = ComputePool(capacity_s=2.0)
        pool.commit("t1", 1.5)
        assert pool.free_s == pytest.approx(0.5)
        with pytest.raises(RuntimeError):
            pool.commit("t2", 1.0)
        pool.release("t1")
        assert pool.free_s == pytest.approx(2.0)

    def test_gpu_validation(self):
        with pytest.raises(ValueError):
            Gpu(gpu_id=0, vram_gb=0.0)


class TestVim:
    def _vim(self) -> VirtualInfrastructureManager:
        return VirtualInfrastructureManager(
            gpus=(Gpu(0, vram_gb=4.0, compute_share=1.0), Gpu(1, vram_gb=4.0, compute_share=1.5))
        )

    def test_pools_aggregate_gpus(self):
        vim = self._vim()
        assert vim.memory.capacity_gb == pytest.approx(8.0)
        assert vim.compute.capacity_s == pytest.approx(2.5)

    def test_shared_block_loaded_once(self):
        vim = self._vim()
        block = make_block("shared", memory_gb=1.0)
        vim.deploy_block(block, task_id=1)
        vim.deploy_block(block, task_id=2)
        assert vim.deployed_memory_gb() == pytest.approx(1.0)
        assert vim.deployments["shared"].reference_count == 2

    def test_release_task_unloads_orphans(self):
        vim = self._vim()
        shared = make_block("shared", memory_gb=1.0)
        own = make_block("own", memory_gb=0.5)
        vim.deploy_block(shared, 1)
        vim.deploy_block(shared, 2)
        vim.deploy_block(own, 1)
        unloaded = vim.release_task(1)
        assert unloaded == ["own"]
        assert vim.is_deployed("shared")
        vim.release_task(2)
        assert not vim.is_deployed("shared")

    def test_computing_status_snapshot(self):
        vim = self._vim()
        status = vim.computing_status()
        assert status["memory_free_gb"] == pytest.approx(8.0)
        vim.deploy_block(make_block("b", memory_gb=2.0), 1)
        assert vim.computing_status()["memory_free_gb"] == pytest.approx(6.0)

    def test_no_gpus_rejected(self):
        with pytest.raises(ValueError):
            VirtualInfrastructureManager(gpus=())


class TestController:
    def _controller(self, problem) -> OffloaDNNController:
        vim = VirtualInfrastructureManager(
            gpus=(
                Gpu(0, vram_gb=problem.budgets.memory_gb,
                    compute_share=problem.budgets.compute_time_s),
            )
        )
        return OffloaDNNController(
            vim=vim,
            slice_manager=SliceManager(capacity_rbs=problem.budgets.radio_blocks),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )

    def test_workflow_admits_and_deploys(self, tiny_problem):
        controller = self._controller(tiny_problem)
        tickets = controller.handle_admission_requests(
            tiny_problem.tasks, tiny_problem.catalog
        )
        assert all(t.admitted for t in tickets.values())
        # the shared block is deployed once
        assert controller.vim.is_deployed("shared")
        assert controller.vim.deployments["shared"].reference_count == 3
        # slices allocated per task
        assert len(controller.slice_manager.slices) == 3

    def test_tickets_carry_granted_rates(self, tiny_problem):
        controller = self._controller(tiny_problem)
        tickets = controller.handle_admission_requests(
            tiny_problem.tasks, tiny_problem.catalog
        )
        for task in tiny_problem.tasks:
            ticket = tickets[task.task_id]
            assert ticket.granted_rate == pytest.approx(
                ticket.admission_ratio * task.request_rate
            )
            assert ticket.path_id is not None

    def test_evict_task_frees_resources(self, tiny_problem):
        controller = self._controller(tiny_problem)
        controller.handle_admission_requests(tiny_problem.tasks, tiny_problem.catalog)
        before = controller.vim.deployed_memory_gb()
        controller.evict_task(0)
        assert controller.vim.deployed_memory_gb() < before
        assert 0 not in controller.slice_manager.slices

    def test_consistency_with_solver_solution(self, tiny_problem):
        controller = self._controller(tiny_problem)
        tickets = controller.handle_admission_requests(
            tiny_problem.tasks, tiny_problem.catalog
        )
        solution = controller.last_solution
        assert solution is not None
        for task in tiny_problem.tasks:
            assert tickets[task.task_id].admission_ratio == pytest.approx(
                solution.assignment(task).admission_ratio
            )
